//! Cross-crate integration tests through the `nectar` facade: whole
//! systems, mixed workloads, fault injection, and determinism.

use nectar::core::nectarine::Nectarine;
use nectar::core::topology::{Topology, TopologyBuilder};
use nectar::core::world::{SwitchingMode, World};
use nectar::core::{NectarSystem, SystemConfig};
use nectar::hub::id::PortId;
use nectar::prelude::*;

#[test]
fn facade_prelude_reaches_every_layer() {
    // One expression from each crate through the re-exports.
    let _time = Time::from_nanos(700);
    let _bw = Bandwidth::from_mbit_per_sec(100);
    let cfg = SystemConfig::default();
    assert_eq!(cfg.hub.ports, 16);
    assert_eq!(cfg.cab.thread_switch.as_micros_f64(), 12.0);
    let _ = nectar::proto::header::HEADER_BYTES;
    let _ = nectar::cab::checksum::fletcher16(b"x");
    let _ = nectar::kernel::mailbox::Message::new(1, 0, vec![1u8]);
}

#[test]
fn mixed_workload_on_a_mesh_with_faults_stays_correct() {
    let mut sys = NectarSystem::mesh(2, 2, 3, SystemConfig::default());
    sys.world_mut().inject_faults(0.05, 0.05, 2026);
    let n = sys.world().topology().cab_count();
    let payloads: Vec<Vec<u8>> =
        (0..n).map(|i| (0..3000).map(|j| ((i * 7 + j) % 251) as u8).collect()).collect();
    for (i, p) in payloads.iter().enumerate() {
        let dst = (i + n / 2) % n;
        if dst != i {
            sys.world_mut().send_stream_now(i, dst, 1, 2, p);
        }
    }
    sys.world_mut().run_until(Time::from_millis(500));
    assert!(sys.world().faults_injected > 0, "faults actually fired");
    // Every message arrived intact despite drops and corruption.
    for (i, p) in payloads.iter().enumerate() {
        let dst = (i + n / 2) % n;
        if dst == i {
            continue;
        }
        let msg = sys
            .world_mut()
            .mailbox_take(dst, 2)
            .unwrap_or_else(|| panic!("message {i} -> {dst} missing"));
        assert_eq!(msg.data(), &p[..], "payload {i} corrupted end-to-end");
    }
}

#[test]
fn deliveries_are_deterministic_across_runs() {
    let run = || {
        let mut sys = NectarSystem::single_hub(6, SystemConfig::default());
        sys.world_mut().inject_faults(0.1, 0.0, 99);
        for i in 0..5usize {
            sys.world_mut().send_stream_now(i, (i + 1) % 6, 1, 2, &vec![i as u8; 2500]);
        }
        sys.world_mut().run_until(Time::from_millis(300));
        sys.world().deliveries.iter().map(|d| (d.cab, d.msg_id, d.len, d.at)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed, same world, same timeline");
}

#[test]
fn fig7_multicast_delivers_to_both_leaves() {
    // The §4.2.2 example, end to end: CAB2 multicasts to CAB4 and CAB5.
    let mut b = TopologyBuilder::new(4, 16);
    let _cab1 = b.add_cab(0, PortId::new(1)).unwrap();
    let cab2 = b.add_cab(0, PortId::new(2)).unwrap();
    let _cab3 = b.add_cab(1, PortId::new(4)).unwrap();
    let cab4 = b.add_cab(3, PortId::new(5)).unwrap();
    let cab5 = b.add_cab(2, PortId::new(6)).unwrap();
    b.link_hubs(1, PortId::new(8), 0, PortId::new(3)).unwrap();
    b.link_hubs(0, PortId::new(6), 3, PortId::new(7)).unwrap();
    b.link_hubs(3, PortId::new(3), 2, PortId::new(9)).unwrap();
    let mut world = World::new(b.build().unwrap(), SystemConfig::default());
    world.send_multicast_now(cab2, &[cab4, cab5], 1, 2, b"fig7 multicast");
    world.run_until(Time::from_millis(10));
    let mut got = Vec::new();
    for cab in [cab4, cab5] {
        let msg = world.mailbox_take(cab, 2).expect("leaf received the packet");
        assert_eq!(msg.data(), b"fig7 multicast");
        got.push(cab);
    }
    assert_eq!(got.len(), 2);
    // One packet left CAB2, fanned out in hardware.
    assert_eq!(world.cab_counters(cab2).packets_tx, 1);
}

#[test]
fn nectarine_tasks_span_a_mesh() {
    let mut app = Nectarine::mesh(1, 3, 2, SystemConfig::default());
    let a = app.create_task("left", 0);
    let b = app.create_task("right", 5); // farthest hub
    app.send(a, b, b"across the mesh");
    let msg = app.receive_blocking(b, Dur::from_millis(10)).expect("delivered");
    assert_eq!(msg.data(), b"across the mesh");
}

#[test]
fn switching_modes_agree_on_delivered_bytes_under_load() {
    for mode in [SwitchingMode::PacketSwitched, SwitchingMode::CircuitCached] {
        let cfg = SystemConfig { switching: mode, ..SystemConfig::default() };
        let mut sys = NectarSystem::single_hub(4, cfg);
        for _ in 0..10 {
            sys.world_mut().send_stream_now(0, 1, 1, 2, &[1u8; 800]);
            sys.world_mut().send_stream_now(2, 3, 1, 2, &[2u8; 800]);
        }
        sys.world_mut().run_until(Time::from_millis(100));
        assert_eq!(sys.world().deliveries.len(), 20, "{mode:?}");
        let bytes: usize = sys.world().deliveries.iter().map(|d| d.len).sum();
        assert_eq!(bytes, 20 * 800, "{mode:?}");
    }
}

#[test]
fn conservation_under_sustained_load() {
    // 12 CABs, 8 messages each: every payload byte sent is delivered
    // exactly once (flow control never loses, transport never dups).
    let mut sys = NectarSystem::single_hub(12, SystemConfig::default());
    let msgs = 8usize;
    for src in 0..12usize {
        for m in 0..msgs {
            let dst = (src + 1 + m) % 12;
            if dst != src {
                sys.world_mut().send_stream_now(src, dst, 1, 2, &vec![src as u8; 1200]);
            }
        }
    }
    let expected = (0..12usize)
        .map(|src| (0..msgs).filter(|m| (src + 1 + m) % 12 != src).count())
        .sum::<usize>();
    sys.world_mut().run_until(Time::from_millis(400));
    assert_eq!(sys.world().deliveries.len(), expected);
    // No overruns, no mailbox rejects, no corruption on a clean net.
    for cab in 0..12 {
        let c = sys.world().cab_counters(cab);
        assert_eq!(c.overruns, 0);
        assert_eq!(c.corrupted_rx, 0);
        assert_eq!(c.mailbox_rejects, 0);
    }
}

#[test]
fn lan_and_nectar_probes_share_one_story() {
    use nectar::lan::lan::{LanConfig, LanSystem};
    let mut lan = LanSystem::new(4, LanConfig::default());
    let mut nec = NectarSystem::single_hub(4, SystemConfig::default());
    let lan_lat = lan.measure_latency(0, 1, 64);
    let nec_lat =
        nec.measure_node_to_node(0, 1, 64, nectar::core::node::NodeInterface::SharedMemory).latency;
    assert!(
        lan_lat.nanos() >= 10 * nec_lat.nanos(),
        "order-of-magnitude claim: LAN {lan_lat} vs Nectar {nec_lat}"
    );
}

#[test]
fn topology_scales_to_hundreds_of_nodes() {
    // "Nectar should scale up to a network of hundreds of
    // supercomputer-class machines" (§2.2): an 8x8 mesh of clusters
    // with 10 CABs each = 640 CABs, all mutually routable.
    let topo = Topology::mesh2d(8, 8, 10, 16);
    assert_eq!(topo.cab_count(), 640);
    assert!(topo.route(0, 639).is_ok());
    let mut sys = NectarSystem::custom(topo, SystemConfig::default());
    let r = sys.measure_cab_to_cab(0, 639, 64);
    assert!(
        r.latency.as_micros_f64() < 45.0,
        "cross-system latency {} stays in the same order as one hop",
        r.latency
    );
}
