//! Integration tests for the paper's implemented future work, driven
//! through the `nectar` facade: IP over Nectar (§6.2.2), the VLSI
//! projection (§3.2), automatic task mapping (§6.3), and the node
//! service path (§6.1).

use nectar::core::mapping::{map_annealed, map_round_robin, predicted_cost, TaskGraph};
use nectar::core::topology::Topology;
use nectar::core::{NectarSystem, SystemConfig};
use nectar::kernel::services::{NodeService, ServiceCosts, ServiceProxy};
use nectar::proto::inet::{AddressMap, IpHeader, IpProto};
use nectar::sim::time::{Dur, Time};
use std::net::Ipv4Addr;

#[test]
fn ip_datagrams_ride_nectar_end_to_end() {
    let mut arp = AddressMap::new();
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
    arp.bind(src_ip, nectar::cab::board::CabId::new(0));
    arp.bind(dst_ip, nectar::cab::board::CabId::new(1));

    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let payload: Vec<u8> = (0..700u32).map(|i| (i % 256) as u8).collect();
    let header = IpHeader {
        src: src_ip,
        dst: dst_ip,
        proto: IpProto::Udp,
        ttl: 16,
        ident: 42,
        payload_len: payload.len() as u16,
    };
    let wire = header.encode_with(&payload);
    let dst = arp.resolve(dst_ip).unwrap().index();
    sys.world_mut().send_datagram_now(0, dst, 1, 2, &wire);
    sys.world_mut().run_until(Time::from_millis(5));
    let msg = sys.world_mut().mailbox_take(dst, 2).expect("IP datagram delivered");
    let (h, body) = IpHeader::decode(msg.data()).expect("valid at the far end");
    assert_eq!(h.src, src_ip);
    assert_eq!(h.ttl, 16, "no IP routers in a single-HUB path");
    assert_eq!(body, &payload[..]);
}

#[test]
fn vlsi_projection_runs_a_wider_faster_system() {
    let cfg =
        SystemConfig { hub: nectar::hub::config::HubConfig::vlsi(), ..SystemConfig::default() };
    let mut sys = NectarSystem::single_hub(32, cfg);
    // Latency improves (wire + hub are faster); software still rules.
    let r = sys.measure_cab_to_cab(0, 31, 64);
    assert!(r.latency.as_micros_f64() < 25.0, "VLSI latency {}", r.latency);
    // 32 concurrent streams on one crossbar. At 200 Mbit/s links the
    // unchanged CAB software costs eat a larger share per packet, so
    // delivered payload sits near half the 6.4 Gbit/s raw fabric — the
    // projection's own lesson: past the prototype, the CAB becomes the
    // bottleneck.
    let agg = sys.measure_ring_aggregate(32 * 1024, 8192);
    assert!(
        agg.rate.as_mbit_per_sec_f64() > 2_500.0,
        "32 x 200 Mbit/s crossbar should deliver >2.5 Gbit/s, got {}",
        agg.rate
    );
}

#[test]
fn mapping_decisions_survive_a_real_traffic_check() {
    // A ring-of-pipelines graph on a ring of clusters: the annealed
    // placement must beat round-robin in *measured* traffic, not just
    // in the predictor.
    let topo = Topology::ring(4, 3, 16);
    let mut g = TaskGraph::new();
    let tasks: Vec<usize> = (0..12).map(|i| g.add_task(format!("t{i}"))).collect();
    for chunk in tasks.chunks(3) {
        g.add_flow(chunk[0], chunk[1], 30);
        g.add_flow(chunk[1], chunk[2], 30);
    }
    g.add_flow(tasks[0], tasks[6], 3);
    let rr = map_round_robin(&g, &topo);
    let ann = map_annealed(&g, &topo, 3, 4000, 5);
    assert!(predicted_cost(&g, &topo, &ann) < predicted_cost(&g, &topo, &rr));

    let measure = |placement: &nectar::core::mapping::Placement| -> Dur {
        let mut world = nectar::core::world::World::new(topo.clone(), SystemConfig::default());
        let t0 = world.now();
        let mut expected = 0usize;
        for &(a, b, w) in g.flows() {
            let (ca, cb) = (placement.cab_of[a], placement.cab_of[b]);
            if ca == cb {
                continue;
            }
            for _ in 0..w {
                world.send_datagram_now(ca, cb, 1, 2, &[0u8; 600]);
            }
            expected += w as usize;
        }
        while world.deliveries.len() < expected {
            let next = world.next_event_time().expect("progress");
            world.run_until(next);
        }
        world.deliveries.last().map_or(Dur::ZERO, |d| d.at.saturating_since(t0))
    };
    let rr_span = measure(&rr);
    let ann_span = measure(&ann);
    assert!(
        ann_span < rr_span,
        "annealed {ann_span} must beat round-robin {rr_span} in measured traffic"
    );
}

#[test]
fn node_services_stay_off_the_fast_path() {
    // §6.1: a file read through the VME service path costs ~1000x a
    // CAB-to-CAB message — the design reason the kernel splits
    // time-critical from heavyweight operations.
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let msg = sys.measure_cab_to_cab(0, 1, 64).latency;
    let mut proxy = ServiceProxy::new(ServiceCosts::sun_1989());
    let file = proxy
        .request(Time::ZERO, NodeService::FileRead { bytes: 4096 })
        .saturating_since(Time::ZERO);
    assert!(file.nanos() > 500 * msg.nanos(), "file {file} vs message {msg}");
}
