//! A vendored, offline subset of the `criterion` API.
//!
//! The build environment for this repository has no access to
//! crates.io, so the real `criterion` crate cannot be fetched. This
//! crate implements the slice of its surface that the workspace's
//! benches use — `Criterion::bench_function`, benchmark groups with
//! `throughput`/`sample_size`/`bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! over a simple wall-clock measurement loop.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! batches of iterations until a time budget is spent, and reports the
//! mean time per iteration (plus derived throughput when configured).
//! There are no statistical confidence intervals; for this repo's
//! purposes (tracking order-of-magnitude perf and before/after ratios)
//! the mean over a fixed budget is sufficient and keeps the harness
//! dependency-free.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so the suite doubles as a smoke
//! test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(30);

/// Throughput annotation for a benchmark group; scales the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Names one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs the timed closure; handed to benchmark bodies.
pub struct Bencher {
    /// `true` when running under `--test`: execute once, skip timing.
    test_mode: bool,
    /// Mean duration of one iteration, filled by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean wall-clock time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean = Duration::ZERO;
            self.iters = 1;
            return;
        }
        // Warm-up: also estimates the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        // Batch size targeting ~1ms per batch so Instant overhead stays
        // out of the numbers.
        let batch = (1_000_000 / est.max(1)).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.mean = total / iters.max(1) as u32;
        self.iters = iters;
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark path (`group/id` or bare name).
    pub name: String,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Iterations measured.
    pub iters: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    /// Everything measured so far, in execution order.
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` invokes bench binaries with `--bench`; anything
        // else (notably `cargo test`, which runs them bare) gets the
        // run-once smoke mode. Matches the real crate's behaviour.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
        Criterion { test_mode, measurements: Vec::new() }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn report(m: &Measurement) {
    let rate = match m.throughput {
        Some(Throughput::Bytes(bytes)) if !m.mean.is_zero() => {
            let per_sec = bytes as f64 / m.mean.as_secs_f64();
            format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if !m.mean.is_zero() => {
            let per_sec = n as f64 / m.mean.as_secs_f64();
            format!("  ({per_sec:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("{:<44} time: {:>12}/iter{}  [{} iters]", m.name, fmt_duration(m.mean), rate, m.iters);
}

impl Criterion {
    fn run_one(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher { test_mode: self.test_mode, mean: Duration::ZERO, iters: 0 };
        f(&mut b);
        let m = Measurement { name, mean: b.mean, iters: b.iters, throughput };
        if !self.test_mode {
            report(&m);
        }
        self.measurements.push(m);
    }

    /// Measures a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// The mean of the named measurement, if it has run.
    pub fn mean_of(&self, name: &str) -> Option<Duration> {
        self.measurements.iter().find(|m| m.name == name).map(|m| m.mean)
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.c.run_one(full, throughput, &mut f);
        self
    }

    /// Measures one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.c.run_one(full, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_test_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher { test_mode: true, mean: Duration::ZERO, iters: 0 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("packet").id, "packet");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
    }
}
