//! A unified metrics registry: named counters, gauges, and
//! log-bucketed latency histograms.
//!
//! Every hardware model in the workspace keeps private counters (the
//! HUB's command counters, the CAB's packet counters, the kernel's
//! switch count). [`MetricsRegistry`] is the single sink they all
//! register into so the harness reports from one structure instead of
//! per-crate structs, and it serialises to JSON for `BENCH_sim.json`.
//!
//! [`Histogram`] records value distributions in logarithmically spaced
//! buckets (64 sub-buckets per octave, ≤ ~1.6 % relative error) so
//! p50/p90/p99/max survive without storing raw samples — the same
//! trade HdrHistogram makes.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("hub0.packets_forwarded", 12);
//! reg.observe("latency.flight_ns", 30_000);
//! reg.observe("latency.flight_ns", 31_000);
//! assert_eq!(reg.counter("hub0.packets_forwarded"), 12);
//! let h = reg.histogram("latency.flight_ns").unwrap();
//! assert_eq!(h.count(), 2);
//! assert!(reg.to_json().contains("\"p99\""));
//! ```

use crate::json::json_escape;
use std::collections::BTreeMap;

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// Maps a value to its bucket index. Values below `SUB` get exact
/// (width-1) buckets; above that, each octave is split into `SUB`
/// linear sub-buckets, bounding relative error by `1/SUB`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // position of the top bit, >= SUB_BITS
        let octave = (e - SUB_BITS + 1) as usize;
        let sub = ((v >> (e - SUB_BITS)) & (SUB - 1)) as usize;
        (octave << SUB_BITS) + sub
    }
}

/// Lowest value falling into bucket `idx` (inverse of
/// [`bucket_index`]).
fn bucket_low(idx: usize) -> u64 {
    let octave = idx >> SUB_BITS;
    let sub = (idx & (SUB as usize - 1)) as u64;
    if octave == 0 {
        sub
    } else {
        (SUB + sub) << (octave - 1)
    }
}

/// Width (number of distinct values) of bucket `idx`.
fn bucket_width(idx: usize) -> u64 {
    let octave = idx >> SUB_BITS;
    if octave == 0 {
        1
    } else {
        1 << (octave - 1)
    }
}

/// A log-linear histogram over `u64` values (latencies in
/// nanoseconds, sizes in bytes, …).
///
/// Memory is bounded: at most ~3.8 k buckets for the full `u64` range,
/// grown on demand. Exact `min`/`max`/`sum`/`count` are kept on the
/// side so the extremes and the mean are not quantised.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`, matching
    /// [`Samples::quantile`](crate::stats::Samples::quantile) up to
    /// bucket resolution (≤ ~1.6 % relative error). Returns the
    /// midpoint of the bucket holding the ranked observation, clamped
    /// to the exact `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen > rank {
                let low = bucket_low(idx);
                let mid = low + bucket_width(idx) / 2;
                return (mid.clamp(self.min, self.max)) as f64;
            }
        }
        self.max as f64
    }

    /// Folds another histogram into this one (bucket-wise add; exact
    /// extremes and sums combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &n) in other.buckets.iter().enumerate() {
            self.buckets[idx] += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serialises summary statistics (not raw buckets) as one JSON
    /// object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \
             \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}}}",
            self.count,
            self.min,
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

/// Named counters, gauges, and histograms from every layer of the
/// stack, keyed by dotted names (`hub0.packets_forwarded`,
/// `cab1.dma.bytes_moved`, `latency.flight_ns`).
///
/// `BTreeMap`s keep iteration — and therefore JSON output — in a
/// deterministic order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the named gauge to `max(current, v)` — high-water
    /// semantics, which is what depth/occupancy gauges want here.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        *g = g.max(v);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Folds a whole histogram into the named slot.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation reached it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the max, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.counter_add(k, v);
        }
        for (k, &v) in &other.gauges {
            self.gauge_max(k, v);
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k, h);
        }
    }

    /// Serialises the registry as one JSON object with `counters`,
    /// `gauges`, and `histograms` members, deterministically ordered.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", json_escape(k)));
        }
        s.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v:.1}", json_escape(k)));
        }
        s.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", json_escape(k), h.to_json()));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.observe(v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), (SUB - 1) as f64);
    }

    #[test]
    fn bucket_round_trip() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 70_000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            let width = bucket_width(idx);
            assert!(low <= v, "low {low} > v {v}");
            assert!(v - low < width, "v {v} outside bucket [{low}, {low}+{width})");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.observe(v);
        }
        for &(q, exact) in &[(0.5, 50_000.5), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.02, "q={q}: approx {approx} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 900, 70_000] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2u64, 2_000_000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 2);
        a.gauge_max("g", 3.0);
        a.observe("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 5);
        b.gauge_max("g", 1.0);
        b.observe("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.gauge("g"), Some(3.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn json_has_all_sections() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.gauge_max("g", 2.5);
        reg.observe("lat", 700);
        let j = reg.to_json();
        for needle in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"p50\"", "\"p99\""] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
