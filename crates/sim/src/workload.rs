//! Workload programs: seeded, deterministic, replayable traffic
//! generators.
//!
//! The paper's evaluation (§6) ran hand-coded traffic; this module
//! gives traffic the same treatment chaos fault programs got. A
//! [`WorkloadSpec`] is a small program of traffic [`ClassSpec`]s —
//! open-loop classes fire flows from an arrival process
//! ([`Arrival`]: Poisson, deterministic, Pareto-bursty on/off);
//! closed-loop classes circulate a fixed token population, re-arming
//! a token whenever its message is delivered. Each class draws flow
//! sizes from a [`SizeDist`] and destinations from a communication
//! [`Matrix`] (uniform, hotspot, incast, nearest-neighbor over the
//! topology's clusters, all-reduce ring), and carries its traffic
//! over one of the three transports.
//!
//! The same three properties chaos programs guarantee are contractual
//! here:
//!
//! * **Determinism** — every `(class, source CAB)` pair draws from its
//!   own RNG stream derived from the spec seed, so a draw is a
//!   function of that CAB's own flow sequence alone. A sharded run
//!   interleaves *different* CABs differently but never reorders one
//!   CAB's sequence, so it consumes identical streams and produces
//!   bit-identical traffic.
//! * **Replayability** — a spec round-trips through its textual
//!   [`spec`](WorkloadSpec::spec) (the `--workload` grammar), and
//!   [`WorkloadSpec::random`] regenerates bit-for-bit from a seed.
//! * **Shrinkability** — [`shrink`] reduces a violating workload to a
//!   locally minimal program while the violation persists.
//!
//! # Grammar
//!
//! Classes joined by `;`, each with an optional `[from..until]`
//! window (omitted = all time; an empty `until` = forever):
//!
//! ```text
//! open(ARRIVAL,SIZE,MATRIX,TRANSPORT)[from..until]
//! closed(TOKENS,THINK,SIZE,MATRIX,TRANSPORT)[from..until]
//!
//! ARRIVAL   := poisson(MEAN) | det(EVERY) | bursty(MEAN,ON,OFF)
//! SIZE      := fixed(BYTES) | uniform(LO,HI) | pareto(MEAN,SHAPE)
//! MATRIX    := uniform | hotspot(P,cabN) | incast(cabN) | neighbor | ring
//! TRANSPORT := datagram | stream | rpc
//! ```
//!
//! Durations take `ns`/`us`/`ms`/`s` suffixes; probabilities must lie
//! in `[0, 1]` (the hardened [`crate::spec`] helpers reject NaN,
//! negatives, and overflow).
//!
//! # Examples
//!
//! ```
//! use nectar_sim::workload::WorkloadSpec;
//!
//! let spec = WorkloadSpec::parse(7, "closed(8,0ns,fixed(64),ring,datagram)[0ns..1ms]").unwrap();
//! assert_eq!(WorkloadSpec::parse(7, &spec.spec()).unwrap(), spec);
//! ```

use crate::rng::Rng;
use crate::spec::{fmt_dur, parse_call, parse_dur, parse_prob};
use crate::time::{Dur, Time};
use std::collections::HashMap;
use std::fmt;

/// Largest flow the grammar accepts, in bytes. Wire headers carry a
/// `u16` payload length; staying under it keeps every flow a single
/// datagram-transport message.
pub const MAX_FLOW_BYTES: u32 = 60_000;

/// Most token population a single closed class may give one source.
pub const MAX_TOKENS: u32 = 65_536;

/// Most classes one spec may hold (bounds the mailbox id range the
/// world reserves for workload traffic).
pub const MAX_CLASSES: usize = 256;

/// Which transport a class drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Unreliable datagrams (fire and forget).
    Datagram,
    /// The reliable byte stream.
    Stream,
    /// Request–response: the receiver answers, and a closed-loop
    /// token re-arms only when the *reply* lands back at the caller.
    Rpc,
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transport::Datagram => "datagram",
            Transport::Stream => "stream",
            Transport::Rpc => "rpc",
        })
    }
}

/// An open-loop arrival process (inter-arrival times per source CAB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Poisson arrivals: exponential inter-arrival times.
    Poisson {
        /// Mean inter-arrival time.
        mean: Dur,
    },
    /// Deterministic arrivals.
    Det {
        /// Fixed inter-arrival time.
        every: Dur,
    },
    /// Pareto-bursty on/off: Poisson arrivals during heavy-tailed ON
    /// phases, silence during heavy-tailed OFF phases.
    Bursty {
        /// Mean inter-arrival time while ON.
        mean: Dur,
        /// Mean ON-phase length (Pareto, shape 1.5).
        on: Dur,
        /// Mean OFF-phase length (Pareto, shape 1.5).
        off: Dur,
    },
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrival::Poisson { mean } => write!(f, "poisson({})", fmt_dur(*mean)),
            Arrival::Det { every } => write!(f, "det({})", fmt_dur(*every)),
            Arrival::Bursty { mean, on, off } => {
                write!(f, "bursty({},{},{})", fmt_dur(*mean), fmt_dur(*on), fmt_dur(*off))
            }
        }
    }
}

/// A flow-size distribution, in bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeDist {
    /// Every flow the same size.
    Fixed(u32),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Smallest flow.
        lo: u32,
        /// Largest flow.
        hi: u32,
    },
    /// Heavy-tailed (bounded Pareto, clamped to
    /// `[1, MAX_FLOW_BYTES]`).
    Pareto {
        /// Mean flow size.
        mean: u32,
        /// Tail index; must exceed 1 for the mean to exist.
        shape: f64,
    },
}

impl fmt::Display for SizeDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeDist::Fixed(b) => write!(f, "fixed({b})"),
            SizeDist::Uniform { lo, hi } => write!(f, "uniform({lo},{hi})"),
            SizeDist::Pareto { mean, shape } => write!(f, "pareto({mean},{shape})"),
        }
    }
}

/// A communication matrix: which destination each flow picks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Matrix {
    /// Uniform over every other CAB.
    Uniform,
    /// With probability `p`, the hot CAB; otherwise uniform. The hot
    /// CAB itself always draws uniform.
    Hotspot {
        /// Probability of aiming at the hot CAB.
        p: f64,
        /// The hot CAB.
        target: u16,
    },
    /// Everyone sends to one sink (the sink returns traffic
    /// uniformly, so closed-loop tokens keep circulating).
    Incast {
        /// The sink CAB.
        target: u16,
    },
    /// Uniform over the CABs sharing the source's HUB cluster
    /// (falling back to the index-ring neighbors for lone CABs) —
    /// QCDSP-style lattice nearest-neighbor exchange.
    Neighbor,
    /// The next CAB in index order — an all-reduce ring step.
    Ring,
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Matrix::Uniform => f.write_str("uniform"),
            Matrix::Hotspot { p, target } => write!(f, "hotspot({p},cab{target})"),
            Matrix::Incast { target } => write!(f, "incast(cab{target})"),
            Matrix::Neighbor => f.write_str("neighbor"),
            Matrix::Ring => f.write_str("ring"),
        }
    }
}

/// Whether a class is open- or closed-loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Flows arrive from an [`Arrival`] process regardless of
    /// completions.
    Open {
        /// The arrival process.
        arrival: Arrival,
    },
    /// A fixed population of `tokens` flows per source CAB; each
    /// delivery re-arms its token after `think`.
    Closed {
        /// Tokens per source CAB.
        tokens: u32,
        /// Pause between a delivery and the token's next flow.
        think: Dur,
    },
}

/// One traffic class: shape, size, matrix, transport, live window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassSpec {
    /// Open- or closed-loop.
    pub shape: Shape,
    /// Flow-size distribution.
    pub size: SizeDist,
    /// Destination matrix.
    pub matrix: Matrix,
    /// Transport the flows ride.
    pub transport: Transport,
    /// First instant the class offers traffic.
    pub from: Time,
    /// First instant it no longer does (`Time::MAX` = forever).
    pub until: Time,
}

impl ClassSpec {
    /// An always-on class; scope it with [`between`](ClassSpec::between).
    pub fn new(shape: Shape, size: SizeDist, matrix: Matrix, transport: Transport) -> ClassSpec {
        ClassSpec { shape, size, matrix, transport, from: Time::ZERO, until: Time::MAX }
    }

    /// Restricts the class to `[from, until)`.
    pub fn between(mut self, from: Time, until: Time) -> ClassSpec {
        self.from = from;
        self.until = until;
        self
    }
}

impl fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            Shape::Open { arrival } => {
                write!(f, "open({arrival},{},{},{})", self.size, self.matrix, self.transport)?
            }
            Shape::Closed { tokens, think } => write!(
                f,
                "closed({tokens},{},{},{},{})",
                fmt_dur(think),
                self.size,
                self.matrix,
                self.transport
            )?,
        }
        if self.from != Time::ZERO || self.until != Time::MAX {
            write!(f, "[{}..", fmt_dur(Dur::from_nanos(self.from.nanos())))?;
            if self.until != Time::MAX {
                write!(f, "{}", fmt_dur(Dur::from_nanos(self.until.nanos())))?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// A workload program: a seed and the traffic classes it drives.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Master seed every `(class, CAB)` RNG stream derives from.
    pub seed: u64,
    /// The traffic classes, applied together.
    pub classes: Vec<ClassSpec>,
}

impl WorkloadSpec {
    /// An empty program under `seed`.
    pub fn new(seed: u64) -> WorkloadSpec {
        WorkloadSpec { seed, classes: Vec::new() }
    }

    /// Builder: appends a class.
    pub fn with(mut self, class: ClassSpec) -> WorkloadSpec {
        self.classes.push(class);
        self
    }

    /// A random small workload — the proptest generator. Regenerates
    /// bit-for-bit from `seed`; every spec it produces is valid.
    pub fn random(seed: u64, cabs: u16) -> WorkloadSpec {
        let mut rng = Rng::seed_from(seed ^ 0x57_4C_4F_41_44);
        let mut spec = WorkloadSpec::new(seed);
        let n = 1 + rng.range(0..=2);
        for _ in 0..n {
            let arrival = match rng.range(0..=2) {
                0 => Arrival::Poisson { mean: Dur::from_micros(1 + rng.range(0..=200)) },
                1 => Arrival::Det { every: Dur::from_micros(1 + rng.range(0..=100)) },
                _ => Arrival::Bursty {
                    mean: Dur::from_micros(1 + rng.range(0..=50)),
                    on: Dur::from_micros(10 + rng.range(0..=500)),
                    off: Dur::from_micros(10 + rng.range(0..=2_000)),
                },
            };
            let shape = if rng.chance(0.5) {
                Shape::Open { arrival }
            } else {
                Shape::Closed {
                    tokens: 1 + rng.range(0..=63) as u32,
                    think: Dur::from_nanos(rng.range(0..=2_000)),
                }
            };
            let size = match rng.range(0..=2) {
                0 => SizeDist::Fixed(1 + rng.range(0..=4_095) as u32),
                1 => {
                    let lo = 1 + rng.range(0..=1_023) as u32;
                    SizeDist::Uniform { lo, hi: lo + rng.range(0..=4_096) as u32 }
                }
                _ => SizeDist::Pareto {
                    mean: 16 + rng.range(0..=2_048) as u32,
                    shape: 1.0 + (1 + rng.range(0..=40)) as f64 / 16.0,
                },
            };
            let any_cab = || 0u16; // fixed hot/sink keeps random specs valid on tiny topologies
            let matrix = match rng.range(0..=4) {
                0 => Matrix::Uniform,
                1 => Matrix::Hotspot { p: (rng.range(1..=100) as f64) / 100.0, target: any_cab() },
                2 => Matrix::Incast { target: any_cab() },
                3 => Matrix::Neighbor,
                _ => Matrix::Ring,
            };
            let transport = match rng.range(0..=2) {
                0 => Transport::Datagram,
                1 => Transport::Stream,
                _ => Transport::Rpc,
            };
            let mut class = ClassSpec::new(shape, size, matrix, transport);
            if rng.chance(0.4) {
                let from = Time::from_micros(rng.range(0..=500));
                class = class.between(from, from + Dur::from_micros(100 + rng.range(0..=2_000)));
            }
            spec.classes.push(class);
        }
        let _ = cabs;
        spec
    }

    /// The textual form (the `--workload` grammar): classes joined by
    /// `;`. Round-trips exactly through [`parse`](WorkloadSpec::parse).
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self.classes.iter().map(|c| c.to_string()).collect();
        parts.join(";")
    }

    /// Parses the [`spec`](WorkloadSpec::spec) grammar. The seed
    /// travels separately (like `--chaos-seed` for fault programs).
    pub fn parse(seed: u64, spec: &str) -> Result<WorkloadSpec, String> {
        let mut out = WorkloadSpec::new(seed);
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            out.classes.push(parse_class(raw)?);
        }
        if out.classes.len() > MAX_CLASSES {
            return Err(format!("at most {MAX_CLASSES} classes per workload"));
        }
        Ok(out)
    }

    /// Compiles the spec into a stateful generator over a topology
    /// with `cluster_of[cab]` naming each CAB's HUB cluster.
    pub fn compile(&self, cluster_of: Vec<u16>) -> Result<WorkloadGen, String> {
        WorkloadGen::new(self.clone(), cluster_of)
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} {}", self.seed, self.spec())
    }
}

fn parse_size(s: &str) -> Result<SizeDist, String> {
    let (kind, args) = parse_call(s)?;
    let need = |n: usize| {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("`{kind}` takes {n} argument(s), got {}", args.len()))
        }
    };
    let bytes = |a: &str| -> Result<u32, String> {
        let b: u32 = a.trim().parse().map_err(|_| format!("bad byte count `{a}`"))?;
        if b == 0 || b > MAX_FLOW_BYTES {
            return Err(format!("flow size `{a}` must be within [1, {MAX_FLOW_BYTES}]"));
        }
        Ok(b)
    };
    match kind {
        "fixed" => {
            need(1)?;
            Ok(SizeDist::Fixed(bytes(args[0])?))
        }
        "uniform" => {
            need(2)?;
            let (lo, hi) = (bytes(args[0])?, bytes(args[1])?);
            if lo > hi {
                return Err(format!("uniform({lo},{hi}) needs lo <= hi"));
            }
            Ok(SizeDist::Uniform { lo, hi })
        }
        "pareto" => {
            need(2)?;
            let mean = bytes(args[0])?;
            let shape = crate::spec::parse_f64(args[1])?;
            if shape <= 1.0 {
                return Err(format!("pareto shape `{shape}` must exceed 1"));
            }
            Ok(SizeDist::Pareto { mean, shape })
        }
        other => Err(format!("unknown size distribution `{other}`")),
    }
}

fn parse_cab(s: &str) -> Result<u16, String> {
    s.trim()
        .strip_prefix("cab")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad CAB `{s}` (want `cabN`)"))
}

fn parse_matrix(s: &str) -> Result<Matrix, String> {
    let (kind, args) = parse_call(s)?;
    match (kind, args.len()) {
        ("uniform", 0) => Ok(Matrix::Uniform),
        ("neighbor", 0) => Ok(Matrix::Neighbor),
        ("ring", 0) => Ok(Matrix::Ring),
        ("hotspot", 2) => {
            Ok(Matrix::Hotspot { p: parse_prob(args[0])?, target: parse_cab(args[1])? })
        }
        ("incast", 1) => Ok(Matrix::Incast { target: parse_cab(args[0])? }),
        (other, n) => Err(format!("unknown matrix `{other}` with {n} argument(s)")),
    }
}

fn parse_arrival(s: &str) -> Result<Arrival, String> {
    let (kind, args) = parse_call(s)?;
    let pos_dur = |a: &str| -> Result<Dur, String> {
        let d = parse_dur(a)?;
        if d.is_zero() {
            return Err(format!("duration `{}` must be positive", a.trim()));
        }
        Ok(d)
    };
    match (kind, args.len()) {
        ("poisson", 1) => Ok(Arrival::Poisson { mean: pos_dur(args[0])? }),
        ("det", 1) => Ok(Arrival::Det { every: pos_dur(args[0])? }),
        ("bursty", 3) => Ok(Arrival::Bursty {
            mean: pos_dur(args[0])?,
            on: pos_dur(args[1])?,
            off: pos_dur(args[2])?,
        }),
        (other, n) => Err(format!("unknown arrival `{other}` with {n} argument(s)")),
    }
}

fn parse_class(raw: &str) -> Result<ClassSpec, String> {
    // Split off the window suffix `[from..until]`. The head always
    // ends with `)`, so the first `[` (if any) starts the window.
    let (head, window) = match raw.find('[') {
        Some(i) => {
            let w = raw[i..]
                .strip_prefix('[')
                .and_then(|w| w.strip_suffix(']'))
                .ok_or_else(|| format!("unterminated window in `{raw}`"))?;
            (&raw[..i], Some(w))
        }
        None => (raw, None),
    };
    let (kind, args) = parse_call(head)?;
    let (shape, rest) = match kind {
        "open" => {
            if args.len() != 4 {
                return Err(format!("`open` takes 4 arguments, got {}", args.len()));
            }
            (Shape::Open { arrival: parse_arrival(args[0])? }, &args[1..])
        }
        "closed" => {
            if args.len() != 5 {
                return Err(format!("`closed` takes 5 arguments, got {}", args.len()));
            }
            let tokens: u32 =
                args[0].trim().parse().map_err(|_| format!("bad token count `{}`", args[0]))?;
            if tokens == 0 || tokens > MAX_TOKENS {
                return Err(format!("tokens `{tokens}` must be within [1, {MAX_TOKENS}]"));
            }
            (Shape::Closed { tokens, think: parse_dur(args[1])? }, &args[2..])
        }
        other => return Err(format!("unknown class kind `{other}`")),
    };
    let mut class = ClassSpec::new(
        shape,
        parse_size(rest[0])?,
        parse_matrix(rest[1])?,
        match rest[2].trim() {
            "datagram" => Transport::Datagram,
            "stream" => Transport::Stream,
            "rpc" => Transport::Rpc,
            other => return Err(format!("unknown transport `{other}`")),
        },
    );
    if let Some(w) = window {
        let (from, until) = w.split_once("..").ok_or_else(|| format!("bad window `[{w}]`"))?;
        class.from = Time::from_nanos(parse_dur(from)?.nanos());
        class.until = if until.trim().is_empty() {
            Time::MAX
        } else {
            Time::from_nanos(parse_dur(until)?.nanos())
        };
        if class.until <= class.from {
            return Err(format!("empty window `[{w}]`"));
        }
    }
    Ok(class)
}

// ---------------------------------------------------------------
// Presets
// ---------------------------------------------------------------

/// A named scenario from the preset registry.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Registry name (`--workload NAME`).
    pub name: &'static str,
    /// Fixed seed, so the scenario replays bit-for-bit.
    pub seed: u64,
    /// The spec-grammar program.
    pub spec: &'static str,
    /// One-line description.
    pub about: &'static str,
}

/// The scenario presets: QCDSP-style lattice collectives,
/// BrainScaleS/Extoll-style spike streams, and a datacenter RPC
/// fan-out profile (see PAPERS.md).
pub const PRESETS: &[Preset] = &[
    Preset {
        name: "lattice",
        seed: 0x1A77_1CE0,
        spec: "closed(96,0ns,fixed(960),neighbor,datagram)[0ns..2ms];\
               closed(16,500ns,fixed(8192),ring,stream)[0ns..2ms]",
        about: "lattice-collective: nearest-neighbor exchange + all-reduce ring",
    },
    Preset {
        name: "spike",
        seed: 0x5B1C_E500,
        spec: "closed(1600,0ns,fixed(32),uniform,datagram)[0ns..4ms]",
        about: "spike-stream: massive small-packet fan-out (10^5 concurrent flows on 64 CABs)",
    },
    Preset {
        name: "rpc-fanout",
        seed: 0xFA_4007,
        spec: "closed(1,400us,uniform(64,256),hotspot(0.1,cab0),rpc)[0ns..2ms];\
               open(poisson(2ms),uniform(64,512),uniform,datagram)[0ns..2ms]",
        about: "datacenter RPC fan-out with a hot service + background datagrams",
    },
];

/// Looks up a preset by name and parses it. `None` for unknown names;
/// the registry's own specs always parse (covered by tests).
pub fn preset(name: &str) -> Option<WorkloadSpec> {
    let p = PRESETS.iter().find(|p| p.name == name)?;
    Some(WorkloadSpec::parse(p.seed, p.spec).expect("preset specs are valid"))
}

// ---------------------------------------------------------------
// Generator
// ---------------------------------------------------------------

/// One flow the generator asks the world to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Destination CAB (never the source).
    pub dst: u16,
    /// Payload bytes.
    pub bytes: u32,
}

/// Per-`(class, source)` generator state. The RNG stream is the
/// determinism contract: created lazily from `(spec seed, class
/// position, CAB)`, it advances only on this CAB's own draws.
#[derive(Clone, Debug)]
struct SrcState {
    rng: Rng,
    /// Bursty arrivals: ON-phase budget still unspent.
    on_left: Dur,
}

/// One class's compiled state.
#[derive(Clone, Debug)]
struct ClassState {
    spec: ClassSpec,
    /// Seed root for this class's per-CAB streams.
    seed: u64,
    streams: HashMap<u16, SrcState>,
}

/// A compiled, stateful [`WorkloadSpec`]: the world asks it for each
/// CAB's next flow and arrival delay.
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    classes: Vec<ClassState>,
    /// `cluster_of[cab]` = the CAB's HUB cluster (for `neighbor`).
    cluster_of: Vec<u16>,
}

/// Per-`(class, CAB)` state in transit between two shards' generators
/// when a cluster migrates (adaptive rebalancing); see
/// [`WorkloadGen::extract_component_state`].
#[derive(Debug)]
pub struct WorkloadMigration {
    /// Parallel to the generator's class list.
    per_class: Vec<Vec<(u16, SrcState)>>,
}

impl WorkloadGen {
    fn new(spec: WorkloadSpec, cluster_of: Vec<u16>) -> Result<WorkloadGen, String> {
        let cabs = cluster_of.len();
        if cabs < 2 {
            return Err("workloads need at least 2 CABs".into());
        }
        for class in &spec.classes {
            let target = match class.matrix {
                Matrix::Hotspot { target, .. } | Matrix::Incast { target } => target,
                _ => continue,
            };
            if target as usize >= cabs {
                return Err(format!("matrix target cab{target} outside topology ({cabs} CABs)"));
            }
        }
        let classes = spec
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| ClassState {
                spec: *c,
                seed: spec.seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                streams: HashMap::new(),
            })
            .collect();
        Ok(WorkloadGen { spec, classes, cluster_of })
    }

    /// The spec this generator was compiled from (for replay lines).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Class `c`'s spec.
    pub fn class(&self, c: usize) -> &ClassSpec {
        &self.classes[c].spec
    }

    /// Total closed-loop tokens per source CAB, across classes — the
    /// standing concurrent-flow population each CAB contributes.
    pub fn tokens_per_source(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| match c.spec.shape {
                Shape::Closed { tokens, .. } => tokens as u64,
                Shape::Open { .. } => 0,
            })
            .sum()
    }

    /// The delay from a class's window start to CAB `cab`'s first
    /// open-loop arrival (one arrival draw, so sources desynchronize).
    pub fn first_delay(&mut self, class: usize, cab: u16) -> Dur {
        let cs = &mut self.classes[class];
        let Shape::Open { arrival } = cs.spec.shape else {
            unreachable!("first_delay is open-loop only")
        };
        let st = stream(&mut cs.streams, cs.seed, cab);
        next_arrival(st, arrival)
    }

    /// CAB `cab`'s next open-loop flow and the delay to the arrival
    /// after it.
    pub fn next_open(&mut self, class: usize, cab: u16) -> (Flow, Dur) {
        let cs = &mut self.classes[class];
        let Shape::Open { arrival } = cs.spec.shape else {
            unreachable!("next_open is open-loop only")
        };
        let (size, matrix) = (cs.spec.size, cs.spec.matrix);
        let st = stream(&mut cs.streams, cs.seed, cab);
        let flow = draw_flow(st, size, matrix, cab, &self.cluster_of);
        let dt = next_arrival(st, arrival);
        (flow, dt)
    }

    /// A closed-loop flow for a token launching from (or re-arming
    /// at) CAB `cab`.
    pub fn closed_flow(&mut self, class: usize, cab: u16) -> Flow {
        let cs = &mut self.classes[class];
        let (size, matrix) = (cs.spec.size, cs.spec.matrix);
        let st = stream(&mut cs.streams, cs.seed, cab);
        draw_flow(st, size, matrix, cab, &self.cluster_of)
    }

    /// A reply size for an RPC class's auto-responder on CAB `cab`.
    pub fn reply_bytes(&mut self, class: usize, cab: u16) -> u32 {
        let cs = &mut self.classes[class];
        let size = cs.spec.size;
        let st = stream(&mut cs.streams, cs.seed, cab);
        draw_size(&mut st.rng, size)
    }

    /// Lifts the per-CAB RNG streams for the given CABs out of this
    /// generator, for transplant into another shard's generator when
    /// the CABs' cluster migrates. Both generators must be compiled
    /// from the same spec: stream seeds derive from (spec seed, class
    /// position, CAB), so never-started streams move implicitly.
    pub fn extract_component_state(&mut self, cabs: &[u16]) -> WorkloadMigration {
        let per_class = self
            .classes
            .iter_mut()
            .map(|cs| cabs.iter().filter_map(|c| cs.streams.remove(c).map(|st| (*c, st))).collect())
            .collect();
        WorkloadMigration { per_class }
    }

    /// Installs state previously lifted with
    /// [`extract_component_state`](WorkloadGen::extract_component_state).
    ///
    /// # Panics
    ///
    /// Panics if the two generators were compiled from specs with
    /// different class counts.
    pub fn absorb_component_state(&mut self, migration: WorkloadMigration) {
        assert_eq!(
            migration.per_class.len(),
            self.classes.len(),
            "workload migration between generators compiled from different specs"
        );
        for (cs, moved) in self.classes.iter_mut().zip(migration.per_class) {
            cs.streams.extend(moved);
        }
    }
}

/// The RNG stream for CAB `cab` under a class rooted at `seed`,
/// created on first use (the same lazy-stream discipline as chaos
/// clause streams).
fn stream(streams: &mut HashMap<u16, SrcState>, seed: u64, cab: u16) -> &mut SrcState {
    streams.entry(cab).or_insert_with(|| SrcState {
        rng: Rng::seed_from(
            seed.wrapping_add((cab as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)),
        ),
        on_left: Dur::ZERO,
    })
}

/// An exponential draw with mean `mean`, floored at 1 ns.
fn exp_dur(rng: &mut Rng, mean: Dur) -> Dur {
    Dur::from_nanos((rng.exp(mean.nanos() as f64) as u64).max(1))
}

/// A bounded Pareto draw (shape 1.5) with the given mean, capped at
/// 100x to keep phase lengths sane.
fn pareto_dur(rng: &mut Rng, mean: Dur) -> Dur {
    let scale = mean.nanos() as f64 / 3.0; // mean = scale * a/(a-1) with a = 1.5
    let u = 1.0 - rng.f64(); // (0, 1]
    let v = scale / u.powf(1.0 / 1.5);
    Dur::from_nanos((v as u64).clamp(1, mean.nanos().saturating_mul(100)))
}

fn next_arrival(st: &mut SrcState, arrival: Arrival) -> Dur {
    match arrival {
        Arrival::Poisson { mean } => exp_dur(&mut st.rng, mean),
        Arrival::Det { every } => every,
        Arrival::Bursty { mean, on, off } => {
            let dt = exp_dur(&mut st.rng, mean);
            if st.on_left >= dt {
                st.on_left -= dt;
                return dt;
            }
            // The ON budget ran out: insert an OFF gap and start a
            // fresh heavy-tailed ON phase.
            let gap = pareto_dur(&mut st.rng, off);
            st.on_left = pareto_dur(&mut st.rng, on);
            dt + gap
        }
    }
}

fn draw_size(rng: &mut Rng, size: SizeDist) -> u32 {
    match size {
        SizeDist::Fixed(b) => b,
        SizeDist::Uniform { lo, hi } => rng.range(lo as u64..=hi as u64) as u32,
        SizeDist::Pareto { mean, shape } => {
            let scale = mean as f64 * (shape - 1.0) / shape;
            let u = 1.0 - rng.f64();
            ((scale / u.powf(1.0 / shape)) as u32).clamp(1, MAX_FLOW_BYTES)
        }
    }
}

/// A destination draw that never picks `src` itself.
fn uniform_other(rng: &mut Rng, cabs: usize, src: u16) -> u16 {
    let r = rng.range(0..=(cabs as u64 - 2)) as u16;
    if r >= src {
        r + 1
    } else {
        r
    }
}

fn draw_flow(
    st: &mut SrcState,
    size: SizeDist,
    matrix: Matrix,
    src: u16,
    cluster_of: &[u16],
) -> Flow {
    let cabs = cluster_of.len();
    let rng = &mut st.rng;
    let dst = match matrix {
        Matrix::Uniform => uniform_other(rng, cabs, src),
        Matrix::Hotspot { p, target } => {
            if src != target && rng.chance(p) {
                target
            } else {
                uniform_other(rng, cabs, src)
            }
        }
        Matrix::Incast { target } => {
            if src != target {
                target
            } else {
                uniform_other(rng, cabs, src)
            }
        }
        Matrix::Neighbor => {
            // Uniform over same-cluster peers; a lone CAB falls back
            // to its index-ring neighbors.
            let cluster = cluster_of[src as usize];
            let peers = cluster_of.iter().filter(|&&cl| cl == cluster).count() - 1;
            if peers == 0 {
                let step = if rng.chance(0.5) { 1 } else { cabs - 1 };
                ((src as usize + step) % cabs) as u16
            } else {
                let mut pick = rng.range(0..=(peers as u64 - 1)) as usize;
                let mut dst = src;
                for (c, &cl) in cluster_of.iter().enumerate() {
                    if cl == cluster && c != src as usize {
                        if pick == 0 {
                            dst = c as u16;
                            break;
                        }
                        pick -= 1;
                    }
                }
                dst
            }
        }
        Matrix::Ring => ((src as usize + 1) % cabs) as u16,
    };
    Flow { dst, bytes: draw_size(rng, size) }
}

// ---------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------

/// Greedily shrinks a violating workload: classes are removed and
/// token populations halved while `still_fails` keeps returning
/// `true`. Locally minimal on exit; rounds are capped so a flaky
/// predicate cannot loop forever.
pub fn shrink(
    spec: &WorkloadSpec,
    mut still_fails: impl FnMut(&WorkloadSpec) -> bool,
) -> WorkloadSpec {
    let mut cur = spec.clone();
    for _round in 0..32 {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.classes.len() {
            if cur.classes.len() > 1 {
                let mut cand = cur.clone();
                cand.classes.remove(i);
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                    continue;
                }
            }
            if let Shape::Closed { tokens, think } = cur.classes[i].shape {
                if tokens > 1 {
                    let mut cand = cur.clone();
                    cand.classes[i].shape = Shape::Closed { tokens: tokens / 2, think };
                    if still_fails(&cand) {
                        cur = cand;
                        progressed = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
        if !progressed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_specs_round_trip() {
        for s in [
            "open(poisson(50us),fixed(256),uniform,datagram)",
            "open(det(10us),uniform(64,1024),hotspot(0.25,cab3),stream)[1us..2ms]",
            "open(bursty(5us,200us,800us),pareto(512,1.4),incast(cab0),datagram)[0ns..]",
            "closed(1600,0ns,fixed(32),uniform,datagram)[0ns..4ms]",
            "closed(96,500ns,fixed(2048),neighbor,datagram);closed(16,0ns,fixed(8192),ring,stream)",
            "closed(48,1us,pareto(512,1.4),hotspot(0.15,cab0),rpc)[0ns..2ms]",
        ] {
            let spec = WorkloadSpec::parse(7, s).expect(s);
            assert_eq!(WorkloadSpec::parse(7, &spec.spec()).unwrap(), spec, "`{s}`");
        }
    }

    proptest! {
        #[test]
        fn random_specs_round_trip(seed in any::<u64>()) {
            let spec = WorkloadSpec::random(seed, 8);
            let back = WorkloadSpec::parse(seed, &spec.spec())
                .unwrap_or_else(|e| panic!("`{}`: {e}", spec.spec()));
            prop_assert_eq!(back, spec);
        }
    }

    #[test]
    fn presets_parse_and_spike_sustains_1e5_flows() {
        for p in PRESETS {
            let spec = preset(p.name).expect("registered");
            assert!(!spec.classes.is_empty(), "{}", p.name);
            assert_eq!(WorkloadSpec::parse(p.seed, &spec.spec()).unwrap(), spec);
        }
        let spike = preset("spike").unwrap();
        let compiled = spike.compile((0..64u16).map(|i| i / 4).collect()).unwrap();
        assert!(compiled.tokens_per_source() * 64 >= 100_000, "spike must stand 1e5 flows");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nonsense(1)",
            "open(poisson(50us),fixed(256),uniform)", // missing transport
            "open(poisson(0ns),fixed(256),uniform,datagram)", // zero mean
            "open(poisson(50us),fixed(0),uniform,datagram)", // zero bytes
            "open(poisson(50us),fixed(99999),uniform,datagram)", // oversize
            "open(poisson(50us),uniform(9,3),uniform,datagram)", // lo > hi
            "open(poisson(50us),pareto(512,0.9),uniform,datagram)", // shape <= 1
            "open(poisson(50us),pareto(512,NaN),uniform,datagram)",
            "closed(0,0ns,fixed(64),uniform,datagram)", // zero tokens
            "closed(8,0ns,fixed(64),hotspot(1.5,cab0),datagram)", // p > 1
            "closed(8,0ns,fixed(64),hotspot(0.5,hub0),datagram)", // bad target
            "closed(8,0ns,fixed(64),uniform,telepathy)", // bad transport
            "closed(8,99999999999999s,fixed(64),uniform,datagram)", // overflow think
            "closed(8,0ns,fixed(64),uniform,datagram)[2ms..1ms]", // empty window
            "closed(8,0ns,fixed(64),uniform,datagram)[1ms..", // unterminated
        ] {
            assert!(WorkloadSpec::parse(0, bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn compile_validates_targets_against_topology() {
        let spec = WorkloadSpec::parse(1, "closed(4,0ns,fixed(64),incast(cab9),datagram)").unwrap();
        assert!(spec.compile(vec![0, 0, 1, 1]).is_err(), "cab9 outside a 4-CAB topology");
        assert!(spec.compile(vec![0; 1]).is_err(), "one CAB cannot exchange traffic");
    }

    #[test]
    fn draws_are_deterministic_and_per_cab_independent() {
        let spec = WorkloadSpec::parse(
            42,
            "open(bursty(5us,100us,400us),pareto(300,1.3),hotspot(0.3,cab1),datagram)",
        )
        .unwrap();
        let cluster: Vec<u16> = (0..8).map(|i| i / 2).collect();
        let mut a = spec.compile(cluster.clone()).unwrap();
        let mut b = spec.compile(cluster.clone()).unwrap();
        // Interleave queries differently: cab 2's draws must not move.
        let from_a: Vec<(Flow, Dur)> = (0..50).map(|_| a.next_open(0, 2)).collect();
        let mut from_b = Vec::new();
        for i in 0..50 {
            let _ = b.next_open(0, (i % 3) * 2 + 1); // other CABs' traffic
            from_b.push(b.next_open(0, 2));
        }
        assert_eq!(from_a, from_b, "per-CAB streams must be query-order independent");
    }

    #[test]
    fn migration_preserves_streams() {
        let spec =
            WorkloadSpec::parse(9, "closed(8,0ns,uniform(32,512),uniform,datagram)").unwrap();
        let cluster: Vec<u16> = (0..6).map(|i| i / 3).collect();
        let mut whole = spec.compile(cluster.clone()).unwrap();
        let mut left = spec.compile(cluster.clone()).unwrap();
        let mut right = spec.compile(cluster).unwrap();
        for _ in 0..20 {
            let w = whole.closed_flow(0, 4);
            assert_eq!(left.closed_flow(0, 4), w);
        }
        right.absorb_component_state(left.extract_component_state(&[3, 4, 5]));
        for _ in 0..20 {
            assert_eq!(right.closed_flow(0, 4), whole.closed_flow(0, 4), "stream must travel");
        }
    }

    #[test]
    fn matrices_never_pick_self_and_respect_structure() {
        let spec = WorkloadSpec::parse(
            3,
            "closed(1,0ns,fixed(8),uniform,datagram);\
             closed(1,0ns,fixed(8),incast(cab2),datagram);\
             closed(1,0ns,fixed(8),neighbor,datagram);\
             closed(1,0ns,fixed(8),ring,datagram)",
        )
        .unwrap();
        let cluster: Vec<u16> = (0..8).map(|i| i / 4).collect();
        let mut gen = spec.compile(cluster.clone()).unwrap();
        for cab in 0..8u16 {
            for class in 0..4 {
                for _ in 0..20 {
                    let f = gen.closed_flow(class, cab);
                    assert_ne!(f.dst, cab, "class {class} picked self");
                    match class {
                        1 if cab != 2 => assert_eq!(f.dst, 2, "incast aims at the sink"),
                        2 => assert_eq!(
                            cluster[f.dst as usize], cluster[cab as usize],
                            "neighbor stays in-cluster"
                        ),
                        3 => assert_eq!(f.dst, (cab + 1) % 8, "ring steps once"),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn shrink_reaches_a_minimal_program() {
        // The "violation": any workload with a closed class of > 16
        // tokens fails.
        let fails = |s: &WorkloadSpec| {
            s.classes.iter().any(|c| matches!(c.shape, Shape::Closed { tokens, .. } if tokens > 16))
        };
        let spec = WorkloadSpec::parse(
            5,
            "open(poisson(10us),fixed(64),uniform,datagram);\
             closed(640,0ns,fixed(32),uniform,datagram)",
        )
        .unwrap();
        assert!(fails(&spec));
        let min = shrink(&spec, fails);
        assert!(fails(&min), "shrinking must preserve the violation");
        assert_eq!(min.classes.len(), 1, "irrelevant classes removed: {}", min.spec());
        match min.classes[0].shape {
            Shape::Closed { tokens, .. } => {
                assert!(tokens > 16 && tokens <= 32, "tokens weakened to the boundary: {tokens}")
            }
            ref s => panic!("wrong surviving class: {s:?}"),
        }
    }
}
