//! Exporters: Chrome trace-event JSON from telemetry events.
//!
//! [`chrome_trace`] renders a slice of
//! [`TelemetryEvent`](crate::telemetry::TelemetryEvent)s in the Chrome
//! trace-event format, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`:
//!
//! * one *process* per HUB and per CAB, one *thread* (track) per HUB
//!   port / controller and per CAB engine (DMA, kernel, transport, app);
//! * paired DMA start/complete events become duration (`"X"`) slices;
//! * every event of a flight is linked by flow arrows (`"s"`/`"t"`/`"f"`
//!   phases keyed by the flight id), so a message can be followed
//!   visually from `app_send` through each `crossbar_forward` to
//!   `app_recv`.
//!
//! Timestamps (`ts`) are microseconds with fractional nanoseconds, per
//! the format; `displayTimeUnit` is `"ns"`.
//!
//! [`chrome_trace_with_host`] additionally renders a host-time
//! [`HostProfile`](crate::profile::HostProfile) into the same document
//! under its own process ([`HOST_PID`]): one track per shard worker
//! plus one for the runner's main thread, phase slices named after
//! [`Phase::label`](crate::profile::Phase::label), and per-window
//! instant markers on a dedicated track. Simulated-time and host-time
//! tracks share one file but not one timebase — the simulated tracks
//! are nanoseconds of modeled hardware, the host tracks nanoseconds of
//! wall clock (both normalized to start near zero).

use crate::json::json_escape;
use crate::profile::HostProfile;
use crate::telemetry::{EventKind, TelemetryEvent};
use std::collections::BTreeMap;

/// `pid` under which all host-time profiler tracks render — far above
/// any HUB (1..) or CAB (1000..) pid.
pub const HOST_PID: u32 = 5000;

/// Nominal duration (µs) given to point events so flow arrows have a
/// slice to bind to.
const POINT_DUR_US: f64 = 0.05;

/// `pid` assigned to HUB `h`.
fn hub_pid(hub: u8) -> u32 {
    1 + hub as u32
}

/// `pid` assigned to CAB `c` (offset clear of any HUB pid).
fn cab_pid(cab: u16) -> u32 {
    1000 + cab as u32
}

/// Track (tid) layout within a CAB process.
const TID_DMA: u32 = 1;
const TID_KERNEL: u32 = 2;
const TID_TRANSPORT: u32 = 3;
const TID_APP: u32 = 4;

/// (pid, tid, args) for one event. HUB events land on the controller
/// track (tid 0) or the output-port track (tid = port + 1).
fn placement(kind: &EventKind) -> (u32, u32, String) {
    match *kind {
        EventKind::ConnectionOpen { hub, input, output }
        | EventKind::ConnectionClose { hub, input, output } => {
            (hub_pid(hub), 0, format!("\"input\": {input}, \"output\": {output}"))
        }
        EventKind::CrossbarForward { hub, input, output, bytes } => (
            hub_pid(hub),
            1 + output as u32,
            format!("\"input\": {input}, \"output\": {output}, \"bytes\": {bytes}"),
        ),
        EventKind::CrossbarEnqueue { hub, input, bytes } => {
            (hub_pid(hub), 200 + input as u32, format!("\"input\": {input}, \"bytes\": {bytes}"))
        }
        EventKind::DmaStart { cab, channel, bytes }
        | EventKind::DmaComplete { cab, channel, bytes } => {
            (cab_pid(cab), TID_DMA, format!("\"channel\": {channel}, \"bytes\": {bytes}"))
        }
        EventKind::ThreadSwitch { cab, from, to } => {
            (cab_pid(cab), TID_KERNEL, format!("\"from\": {from}, \"to\": {to}"))
        }
        EventKind::DatalinkRetry { cab } => (cab_pid(cab), TID_TRANSPORT, String::new()),
        EventKind::FiberTx { cab, bytes } => {
            (cab_pid(cab), TID_TRANSPORT, format!("\"bytes\": {bytes}"))
        }
        EventKind::TransportSend { cab, peer, seq, bytes, retransmit } => (
            cab_pid(cab),
            TID_TRANSPORT,
            format!(
                "\"peer\": {peer}, \"seq\": {seq}, \"bytes\": {bytes}, \
                 \"retransmit\": {retransmit}"
            ),
        ),
        EventKind::TransportAck { cab, peer, ack } => {
            (cab_pid(cab), TID_TRANSPORT, format!("\"peer\": {peer}, \"ack\": {ack}"))
        }
        EventKind::TransportTimeout { cab, peer } => {
            (cab_pid(cab), TID_TRANSPORT, format!("\"peer\": {peer}"))
        }
        EventKind::AppSend { cab, dst, bytes } => {
            (cab_pid(cab), TID_APP, format!("\"dst\": {dst}, \"bytes\": {bytes}"))
        }
        EventKind::AppRecv { cab, mailbox, bytes } => {
            (cab_pid(cab), TID_APP, format!("\"mailbox\": {mailbox}, \"bytes\": {bytes}"))
        }
    }
}

/// Human-readable names for the process/thread metadata events.
fn track_names(kind: &EventKind) -> (String, String) {
    let (pid_name, tid_name): (String, String) = match *kind {
        EventKind::ConnectionOpen { hub, .. } | EventKind::ConnectionClose { hub, .. } => {
            (format!("HUB {hub}"), "controller".to_string())
        }
        EventKind::CrossbarForward { hub, output, .. } => {
            (format!("HUB {hub}"), format!("port {output} out"))
        }
        EventKind::CrossbarEnqueue { hub, input, .. } => {
            (format!("HUB {hub}"), format!("port {input} in"))
        }
        EventKind::DmaStart { cab, .. } | EventKind::DmaComplete { cab, .. } => {
            (format!("CAB {cab}"), "dma".to_string())
        }
        EventKind::ThreadSwitch { cab, .. } => (format!("CAB {cab}"), "kernel".to_string()),
        EventKind::DatalinkRetry { cab }
        | EventKind::FiberTx { cab, .. }
        | EventKind::TransportSend { cab, .. }
        | EventKind::TransportAck { cab, .. }
        | EventKind::TransportTimeout { cab, .. } => {
            (format!("CAB {cab}"), "transport".to_string())
        }
        EventKind::AppSend { cab, .. } | EventKind::AppRecv { cab, .. } => {
            (format!("CAB {cab}"), "app".to_string())
        }
    };
    (pid_name, tid_name)
}

fn push_event(out: &mut Vec<String>, body: String) {
    out.push(format!("    {{{body}}}"));
}

/// Renders telemetry events as a Chrome trace-event JSON document.
///
/// The input need not be sorted; events are ordered by timestamp in
/// the output. DMA `start`/`complete` pairs (matched per CAB and
/// channel, FIFO) merge into one duration slice; everything else
/// becomes a short slice so Perfetto draws flow arrows through it.
pub fn chrome_trace(events: &[TelemetryEvent]) -> String {
    chrome_trace_with_host(events, None)
}

/// [`chrome_trace`] plus host-time profiler tracks: phase slices for
/// every span in `host` (one thread per shard worker, one for the
/// runner main thread) and instant window markers, all under
/// [`HOST_PID`]. With `host` `None` this is exactly [`chrome_trace`].
pub fn chrome_trace_with_host(events: &[TelemetryEvent], host: Option<&HostProfile>) -> String {
    let mut sorted: Vec<&TelemetryEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);

    let mut lines: Vec<String> = Vec::new();
    // Track metadata discovered along the way: pid -> name, (pid, tid) -> name.
    let mut processes: BTreeMap<u32, String> = BTreeMap::new();
    let mut threads: BTreeMap<(u32, u32), String> = BTreeMap::new();
    // Open DMA transfers: (cab, channel) -> FIFO of start timestamps (µs).
    let mut dma_open: BTreeMap<(u16, u8), Vec<f64>> = BTreeMap::new();
    // Events per flight for flow arrows: flight -> [(ts, pid, tid)].
    let mut flights: BTreeMap<u64, Vec<(f64, u32, u32)>> = BTreeMap::new();

    for ev in &sorted {
        let ts = ev.at.nanos() as f64 / 1000.0;
        let (pid, tid, args) = placement(&ev.kind);
        let (pname, tname) = track_names(&ev.kind);
        processes.entry(pid).or_insert(pname);
        threads.entry((pid, tid)).or_insert(tname);
        if ev.flight.is_some() {
            flights.entry(ev.flight.0).or_default().push((ts, pid, tid));
        }

        let mut full_args = args;
        if ev.flight.is_some() {
            if !full_args.is_empty() {
                full_args.push_str(", ");
            }
            full_args.push_str(&format!("\"flight\": {}", ev.flight.0));
        }
        let name = json_escape(ev.kind.label());

        match ev.kind {
            EventKind::DmaStart { cab, channel, .. } => {
                dma_open.entry((cab, channel)).or_default().push(ts);
            }
            EventKind::DmaComplete { cab, channel, .. } => {
                let start = dma_open
                    .get_mut(&(cab, channel))
                    .and_then(|q| (!q.is_empty()).then(|| q.remove(0)));
                let (t0, dur) = match start {
                    Some(t0) => (t0, (ts - t0).max(POINT_DUR_US)),
                    None => (ts, POINT_DUR_US),
                };
                push_event(
                    &mut lines,
                    format!(
                        "\"name\": \"dma\", \"ph\": \"X\", \"ts\": {t0:.3}, \"dur\": {dur:.3}, \
                         \"pid\": {pid}, \"tid\": {tid}, \"args\": {{{full_args}}}"
                    ),
                );
            }
            _ => {
                push_event(
                    &mut lines,
                    format!(
                        "\"name\": \"{name}\", \"ph\": \"X\", \"ts\": {ts:.3}, \
                         \"dur\": {POINT_DUR_US:.3}, \"pid\": {pid}, \"tid\": {tid}, \
                         \"args\": {{{full_args}}}"
                    ),
                );
            }
        }
    }

    // A DMA transfer still open at the end of the capture renders as a
    // point slice so nothing is silently lost.
    for ((cab, channel), starts) in &dma_open {
        let (pid, tid, _) =
            placement(&EventKind::DmaStart { cab: *cab, channel: *channel, bytes: 0 });
        for t0 in starts {
            push_event(
                &mut lines,
                format!(
                    "\"name\": \"dma (unfinished)\", \"ph\": \"X\", \"ts\": {t0:.3}, \
                     \"dur\": {POINT_DUR_US:.3}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{}}"
                ),
            );
        }
    }

    // Flow arrows: start at the flight's first event, step through the
    // middles, finish at the last.
    for (flight, hops) in &flights {
        if hops.len() < 2 {
            continue;
        }
        for (i, &(ts, pid, tid)) in hops.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i + 1 == hops.len() {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "f" { ", \"bp\": \"e\"" } else { "" };
            push_event(
                &mut lines,
                format!(
                    "\"name\": \"flight\", \"cat\": \"flight\", \"ph\": \"{ph}\", \
                     \"id\": {flight}, \"ts\": {ts:.3}, \"pid\": {pid}, \"tid\": {tid}{bp}"
                ),
            );
        }
    }

    // Metadata names so Perfetto labels the tracks.
    for (pid, name) in &processes {
        push_event(
            &mut lines,
            format!(
                "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{}\"}}",
                json_escape(name)
            ),
        );
    }
    for ((pid, tid), name) in &threads {
        push_event(
            &mut lines,
            format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}",
                json_escape(name)
            ),
        );
    }

    if let Some(profile) = host {
        host_lines(profile, &mut lines);
    }

    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders a [`HostProfile`] as trace-event lines under [`HOST_PID`]:
/// one `"X"` slice per recorded phase span (tid = shard index, the
/// main thread at tid = shard count), one `"i"` instant marker per
/// window on a dedicated marker track, and `"M"` metadata naming every
/// track. Timestamps are normalized so the earliest span starts at 0.
fn host_lines(profile: &HostProfile, lines: &mut Vec<String>) {
    let mut lo = u64::MAX;
    for track in &profile.tracks {
        for s in track {
            lo = lo.min(s.start_ns);
        }
    }
    if lo == u64::MAX {
        return;
    }
    // window -> earliest span start, for the marker track.
    let mut windows: BTreeMap<u64, u64> = BTreeMap::new();
    for (tid, track) in profile.tracks.iter().enumerate() {
        for s in track {
            let ts = (s.start_ns - lo) as f64 / 1000.0;
            let dur = (s.dur_ns as f64 / 1000.0).max(0.001);
            push_event(
                lines,
                format!(
                    "\"name\": \"{}\", \"cat\": \"host\", \"ph\": \"X\", \"ts\": {ts:.3}, \
                     \"dur\": {dur:.3}, \"pid\": {HOST_PID}, \"tid\": {tid}, \
                     \"args\": {{\"window\": {}}}",
                    s.phase.label(),
                    s.window
                ),
            );
            windows.entry(s.window).and_modify(|e| *e = (*e).min(s.start_ns)).or_insert(s.start_ns);
        }
    }
    let marker_tid = profile.tracks.len();
    for (w, start) in &windows {
        let ts = (start - lo) as f64 / 1000.0;
        push_event(
            lines,
            format!(
                "\"name\": \"window {w}\", \"cat\": \"host\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {ts:.3}, \"pid\": {HOST_PID}, \"tid\": {marker_tid}, \
                 \"args\": {{\"window\": {w}}}"
            ),
        );
    }
    push_event(
        lines,
        format!(
            "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {HOST_PID}, \"tid\": 0, \
             \"args\": {{\"name\": \"host: sharded runner\"}}"
        ),
    );
    for tid in 0..profile.tracks.len() + 1 {
        let name = if tid < profile.shards {
            format!("shard {tid} worker")
        } else if tid == profile.shards && tid < profile.tracks.len() {
            "runner main".to_string()
        } else {
            "window markers".to_string()
        };
        push_event(
            lines,
            format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {HOST_PID}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"{name}\"}}"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::telemetry::FlightId;
    use crate::time::Time;

    fn ev(ns: u64, flight: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: Time::from_nanos(ns), flight: FlightId(flight), kind }
    }

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            ev(0, 7, EventKind::AppSend { cab: 0, dst: 1, bytes: 100 }),
            ev(
                500,
                7,
                EventKind::TransportSend { cab: 0, peer: 1, seq: 0, bytes: 100, retransmit: false },
            ),
            ev(700, 7, EventKind::FiberTx { cab: 0, bytes: 102 }),
            ev(800, 7, EventKind::CrossbarEnqueue { hub: 0, input: 3, bytes: 102 }),
            ev(900, 7, EventKind::DmaStart { cab: 0, channel: 1, bytes: 100 }),
            ev(1700, 7, EventKind::DmaComplete { cab: 0, channel: 1, bytes: 100 }),
            ev(2400, 7, EventKind::CrossbarForward { hub: 0, input: 3, output: 8, bytes: 102 }),
            ev(3100, 7, EventKind::CrossbarForward { hub: 1, input: 0, output: 2, bytes: 102 }),
            ev(4000, 7, EventKind::AppRecv { cab: 1, mailbox: 5, bytes: 100 }),
        ]
    }

    #[test]
    fn output_is_valid_json_with_required_fields() {
        let doc = chrome_trace(&sample_events());
        let v = parse(&doc).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("ph").and_then(Json::as_str).is_some(), "missing ph: {e:?}");
            assert!(e.get("pid").and_then(Json::as_f64).is_some(), "missing pid: {e:?}");
            // ts is required on everything except metadata records.
            if e.get("ph").unwrap().as_str() != Some("M") {
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "missing ts: {e:?}");
            }
        }
    }

    #[test]
    fn dma_pair_becomes_duration_slice() {
        let doc = chrome_trace(&sample_events());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let dma = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("dma"))
            .expect("dma slice present");
        let dur = dma.get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 0.8).abs() < 1e-9, "900..1700 ns should be 0.8 µs, got {dur}");
    }

    #[test]
    fn flight_gets_flow_arrows() {
        let doc = chrome_trace(&sample_events());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("flight"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.first(), Some(&"s"));
        assert_eq!(phases.last(), Some(&"f"));
        assert!(phases.iter().filter(|&&p| p == "t").count() >= 1);
    }

    #[test]
    fn tracks_are_named() {
        let doc = chrome_trace(&sample_events());
        assert!(doc.contains("HUB 0") && doc.contains("HUB 1"));
        assert!(doc.contains("CAB 0") && doc.contains("CAB 1"));
        assert!(doc.contains("port 8 out"));
    }

    #[test]
    fn empty_input_is_still_valid() {
        let doc = chrome_trace(&[]);
        let v = parse(&doc).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn host_profile_composes_with_simulated_tracks() {
        use crate::profile::{Phase, PhaseSpan};
        let mk = |phase, window, start_ns, dur_ns| PhaseSpan { phase, window, start_ns, dur_ns };
        let profile = crate::profile::HostProfile {
            shards: 2,
            tracks: vec![
                vec![
                    mk(Phase::Step, 0, 1000, 900),
                    mk(Phase::BarrierWait, 0, 1900, 100),
                    mk(Phase::Step, 1, 2000, 800),
                ],
                vec![mk(Phase::Step, 0, 1000, 500), mk(Phase::Step, 1, 2000, 950)],
                vec![mk(Phase::StreamFold, 1, 3000, 400)],
            ],
            dropped: 0,
        };
        let doc = chrome_trace_with_host(&sample_events(), Some(&profile));
        let v = parse(&doc).expect("composed trace must stay valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // Host phase slices land under HOST_PID with normalized ts.
        let host_slices: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("pid").unwrap().as_f64() == Some(HOST_PID as f64)
                    && e.get("ph").unwrap().as_str() == Some("X")
            })
            .collect();
        assert_eq!(host_slices.len(), 6);
        let first_ts = host_slices
            .iter()
            .filter_map(|e| e.get("ts").unwrap().as_f64())
            .fold(f64::MAX, f64::min);
        assert_eq!(first_ts, 0.0, "host timeline is normalized to start at 0");
        assert!(host_slices.iter().any(|e| e.get("name").unwrap().as_str() == Some("step")));
        assert!(host_slices.iter().any(|e| e.get("name").unwrap().as_str() == Some("stream_fold")));
        // One window marker per distinct window.
        let markers = events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("i")).count();
        assert_eq!(markers, 2);
        // Track names present for workers, main thread, and markers.
        assert!(doc.contains("shard 0 worker") && doc.contains("shard 1 worker"));
        assert!(doc.contains("runner main") && doc.contains("window markers"));
        // Simulated tracks are untouched by the composition.
        assert!(doc.contains("HUB 0") && doc.contains("CAB 1"));
    }
}
