//! Measurement collection: counters, sample distributions, rates.
//!
//! Every experiment in the harness reports through these types so that
//! tables are produced uniformly. [`Samples`] stores raw observations
//! (latencies, sizes) and answers mean/min/max/quantiles; [`Counter`]
//! counts events; [`Throughput`] converts byte counts over an interval
//! into a [`Bandwidth`].
//!
//! # Examples
//!
//! ```
//! use nectar_sim::stats::Samples;
//! use nectar_sim::time::Dur;
//!
//! let mut lat = Samples::new("latency");
//! for us in [28, 29, 31, 30] {
//!     lat.record_dur(Dur::from_micros(us));
//! }
//! assert_eq!(lat.len(), 4);
//! assert_eq!(lat.mean(), 29_500.0); // nanoseconds
//! ```

use crate::time::{Dur, Time};
use crate::units::Bandwidth;
use core::fmt;

/// A named monotonically increasing event counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter { name: name.into(), value: 0 }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A named collection of `f64` observations with summary statistics.
///
/// Observations are kept verbatim; quantiles sort a copy on demand.
/// Simulation experiment sizes (10^3–10^6 samples) make this the
/// simplest correct choice.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Samples {
    name: String,
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>) -> Samples {
        Samples { name: name.into(), values: Vec::new() }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN; a NaN observation poisons every summary.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "cannot record NaN");
        self.values.push(v);
    }

    /// Records a duration as nanoseconds.
    pub fn record_dur(&mut self, d: Dur) {
        self.record(d.nanos() as f64);
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min).finite_or_zero()
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max).finite_or_zero()
    }

    /// Sample standard deviation, or 0.0 with fewer than two observations.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean expressed as a [`Dur`] for collections recorded via
    /// [`record_dur`](Samples::record_dur).
    pub fn mean_dur(&self) -> Dur {
        Dur::from_nanos(self.mean().round() as u64)
    }

    /// Iterates over raw observations.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

trait FiniteOrZero {
    fn finite_or_zero(self) -> f64;
}
impl FiniteOrZero for f64 {
    fn finite_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl fmt::Display for Samples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} p50={:.1} p99={:.1} max={:.1}",
            self.name,
            self.len(),
            self.mean(),
            self.median(),
            self.quantile(0.99),
            self.max(),
        )
    }
}

/// Accumulates bytes delivered over simulated time and reports the
/// achieved rate.
///
/// # Examples
///
/// ```
/// use nectar_sim::stats::Throughput;
/// use nectar_sim::time::Time;
///
/// let mut tp = Throughput::starting_at(Time::ZERO);
/// tp.record(1_250_000); // 1.25 MB
/// let rate = tp.rate_at(Time::from_millis(100));
/// assert_eq!(rate.as_mbit_per_sec_f64(), 100.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Throughput {
    start: Time,
    bytes: u64,
}

impl Throughput {
    /// Begins measuring at `start`.
    pub fn starting_at(start: Time) -> Throughput {
        Throughput { start, bytes: 0 }
    }

    /// Records `bytes` delivered.
    pub fn record(&mut self, bytes: usize) {
        self.bytes += bytes as u64;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Achieved rate over `[start, now]`.
    ///
    /// Returns a 1 bit/s floor rate if no time has elapsed or nothing
    /// was transferred, so callers can always display a rate.
    pub fn rate_at(&self, now: Time) -> Bandwidth {
        let elapsed = now.saturating_since(self.start);
        if elapsed.is_zero() || self.bytes == 0 {
            return Bandwidth::from_bits_per_sec(1);
        }
        let bps = (self.bytes as u128 * 8 * 1_000_000_000 / elapsed.nanos() as u128) as u64;
        Bandwidth::from_bits_per_sec(bps.max(1))
    }
}

/// A gauge whose average is weighted by how long each value was held —
/// the right statistic for queue occupancy or link utilisation.
///
/// # Examples
///
/// ```
/// use nectar_sim::stats::TimeWeighted;
/// use nectar_sim::time::Time;
///
/// let mut occupancy = TimeWeighted::starting_at(Time::ZERO, 0.0);
/// occupancy.set(Time::from_micros(10), 4.0); // 0 for 10 us
/// occupancy.set(Time::from_micros(30), 0.0); // 4 for 20 us
/// // (0*10 + 4*20) / 30 = 2.67
/// assert!((occupancy.average_at(Time::from_micros(30)) - 8.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWeighted {
    start: Time,
    last_change: Time,
    current: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Begins tracking at `start` with an initial value.
    pub fn starting_at(start: Time, initial: f64) -> TimeWeighted {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Records that the value changed to `value` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change (time reversal).
    pub fn set(&mut self, now: Time, value: f64) {
        assert!(now >= self.last_change, "gauge updated in the past");
        let held = now.saturating_since(self.last_change);
        self.weighted_sum += self.current * held.as_secs_f64();
        self.last_change = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Adds `delta` to the current value at `now`.
    pub fn add(&mut self, now: Time, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The time-weighted average over `[start, now]`; the initial value
    /// at `start` if no time has passed.
    pub fn average_at(&self, now: Time) -> f64 {
        let total = now.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.current * tail) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new("packets");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "packets = 5");
    }

    #[test]
    fn samples_summaries() {
        let mut s = Samples::new("x");
        s.extend([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.stddev() - 1.5811).abs() < 1e-3);
    }

    #[test]
    fn empty_samples_are_safe() {
        let s = Samples::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Samples::new("q");
        s.extend((1..=100).map(|v| v as f64));
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.quantile(0.99), 99.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        Samples::new("bad").record(f64::NAN);
    }

    #[test]
    fn record_dur_stores_nanos() {
        let mut s = Samples::new("lat");
        s.record_dur(Dur::from_micros(30));
        assert_eq!(s.mean(), 30_000.0);
        assert_eq!(s.mean_dur(), Dur::from_micros(30));
    }

    #[test]
    fn throughput_rate() {
        let mut tp = Throughput::starting_at(Time::from_millis(10));
        tp.record(500);
        tp.record(750);
        assert_eq!(tp.bytes(), 1250);
        // 1250 B over 100 us = 100 Mbit/s.
        let r = tp.rate_at(Time::from_millis(10) + Dur::from_micros(100));
        assert_eq!(r.as_mbit_per_sec_f64(), 100.0);
    }

    #[test]
    fn throughput_degenerate_cases() {
        let tp = Throughput::starting_at(Time::ZERO);
        assert_eq!(tp.rate_at(Time::ZERO).bits_per_sec(), 1);
    }

    #[test]
    fn time_weighted_average_and_peak() {
        let mut g = TimeWeighted::starting_at(Time::ZERO, 1.0);
        g.set(Time::from_micros(10), 3.0);
        g.add(Time::from_micros(20), -2.0);
        assert_eq!(g.current(), 1.0);
        assert_eq!(g.peak(), 3.0);
        // 1 for 10us, 3 for 10us, 1 for 10us = avg 5/3 at t=30us.
        let avg = g.average_at(Time::from_micros(30));
        assert!((avg - 5.0 / 3.0).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn time_weighted_zero_span_returns_current() {
        let g = TimeWeighted::starting_at(Time::from_micros(5), 7.0);
        assert_eq!(g.average_at(Time::from_micros(5)), 7.0);
    }

    #[test]
    #[should_panic]
    fn time_weighted_rejects_time_reversal() {
        let mut g = TimeWeighted::starting_at(Time::from_micros(10), 0.0);
        g.set(Time::from_micros(5), 1.0);
    }
}
