//! Typed telemetry events — the flight recorder behind the trace ring.
//!
//! The HUB's plug-in instrumentation board "can monitor and record
//! events related to the crossbar and its controller" (paper §4.1).
//! [`Trace`](crate::trace::Trace) models that board with free-form
//! strings; this module is the structured counterpart: a fixed set of
//! [`EventKind`]s carrying component ids and a [`FlightId`], so a
//! message can be followed causally from the sending application
//! through CAB DMA, every HUB hop, and delivery on the far side.
//!
//! Events are `Copy` and recording while disabled costs exactly one
//! branch — no formatting, no allocation — so instrumentation can stay
//! compiled into the hot paths.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::telemetry::{EventKind, FlightId, Telemetry};
//! use nectar_sim::time::Time;
//!
//! let mut tel = Telemetry::with_capacity(16);
//! tel.record(
//!     Time::from_nanos(700),
//!     FlightId(42),
//!     EventKind::CrossbarForward { hub: 0, input: 3, output: 8, bytes: 96 },
//! );
//! assert_eq!(tel.len(), 1);
//! assert!(tel.events().next().unwrap().flight.is_some());
//! ```

use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// Identity of one message end-to-end: the packet id minted by the
/// sending CAB. Events not tied to any particular message carry
/// [`FlightId::NONE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlightId(pub u64);

impl FlightId {
    /// Sentinel for events with no associated flight.
    pub const NONE: FlightId = FlightId(u64::MAX);

    /// `true` unless this is the [`NONE`](FlightId::NONE) sentinel.
    pub fn is_some(self) -> bool {
        self != FlightId::NONE
    }
}

impl fmt::Display for FlightId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "f{}", self.0)
        } else {
            f.write_str("f-")
        }
    }
}

/// What happened. Component ids are raw indices (HUB number, CAB
/// number, port number) so the variants stay `Copy` and crate-neutral.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// HUB controller established an input→output circuit.
    ConnectionOpen {
        /// HUB number.
        hub: u8,
        /// Input port.
        input: u8,
        /// Output port.
        output: u8,
    },
    /// HUB controller tore an input→output circuit down.
    ConnectionClose {
        /// HUB number.
        hub: u8,
        /// Input port.
        input: u8,
        /// Output port.
        output: u8,
    },
    /// A packet's head byte entered a HUB input queue. Paired with the
    /// same flight's [`CrossbarForward`](EventKind::CrossbarForward) on
    /// the same HUB, the gap is that hop's **queue wait** — the edge
    /// the doctor's head-of-line detector measures.
    CrossbarEnqueue {
        /// HUB number.
        hub: u8,
        /// Input port.
        input: u8,
        /// Wire bytes queued.
        bytes: u32,
    },
    /// The crossbar moved an item from an input queue to an output
    /// queue (one HUB hop of a flight, or a command/reply).
    CrossbarForward {
        /// HUB number.
        hub: u8,
        /// Input port.
        input: u8,
        /// Output port.
        output: u8,
        /// Wire bytes forwarded.
        bytes: u32,
    },
    /// A CAB DMA channel began a transfer.
    DmaStart {
        /// CAB number.
        cab: u16,
        /// DMA channel index.
        channel: u8,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// A CAB DMA transfer finished.
    DmaComplete {
        /// CAB number.
        cab: u16,
        /// DMA channel index.
        channel: u8,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// The CAB kernel switched threads.
    ThreadSwitch {
        /// CAB number.
        cab: u16,
        /// Outgoing thread id (`u32::MAX` when none was running).
        from: u32,
        /// Incoming thread id.
        to: u32,
    },
    /// The datalink re-drove a transmission after a missed
    /// ready-signal (flow-control recovery).
    DatalinkRetry {
        /// CAB number.
        cab: u16,
    },
    /// A packet began serializing onto a CAB's outgoing fiber — the
    /// edge between datalink **transmit queueing** (flow-control and
    /// burst-FIFO wait after `transport_send`) and **fiber
    /// serialization**.
    FiberTx {
        /// Transmitting CAB.
        cab: u16,
        /// Wire bytes put on the fiber.
        bytes: u32,
    },
    /// A transport handed a packet to the datalink.
    TransportSend {
        /// Sending CAB.
        cab: u16,
        /// Destination CAB.
        peer: u16,
        /// Transport sequence number.
        seq: u32,
        /// Payload bytes (0 for control packets such as bare acks).
        bytes: u32,
        /// `true` when this is a retransmission.
        retransmit: bool,
    },
    /// A transport received an acknowledgment.
    TransportAck {
        /// Receiving CAB.
        cab: u16,
        /// The acknowledging peer.
        peer: u16,
        /// Cumulative ack value.
        ack: u32,
    },
    /// A transport retransmission/response timer fired.
    TransportTimeout {
        /// CAB whose timer expired.
        cab: u16,
        /// Peer the timed-out protocol instance talks to
        /// ([`u16::MAX`] when the protocol is not peer-scoped).
        peer: u16,
    },
    /// An application asked a transport to send a message.
    AppSend {
        /// Sending CAB.
        cab: u16,
        /// Destination CAB.
        dst: u16,
        /// Message size in bytes.
        bytes: u32,
    },
    /// A complete message was delivered into a mailbox.
    AppRecv {
        /// Receiving CAB.
        cab: u16,
        /// Destination mailbox.
        mailbox: u16,
        /// Message size in bytes.
        bytes: u32,
    },
}

impl EventKind {
    /// A total order over event content: the variant's rank followed by
    /// its fields in declaration order, packed into a fixed tuple. Used
    /// as the kind component of the canonical telemetry order (see
    /// `nectar-core`'s `canonical_telemetry_sort`), so same-instant
    /// events from different recorder rings compare identically no
    /// matter which ring — or which shard — recorded them. Cheap to
    /// compute on purpose: the streaming doctor sorts every fold batch
    /// with this key.
    pub fn canonical_key(&self) -> (u8, u64, u64, u64) {
        match *self {
            EventKind::AppRecv { cab, mailbox, bytes } => {
                (0, cab as u64, mailbox as u64, bytes as u64)
            }
            EventKind::AppSend { cab, dst, bytes } => (1, cab as u64, dst as u64, bytes as u64),
            EventKind::ConnectionClose { hub, input, output } => {
                (2, hub as u64, input as u64, output as u64)
            }
            EventKind::ConnectionOpen { hub, input, output } => {
                (3, hub as u64, input as u64, output as u64)
            }
            EventKind::CrossbarEnqueue { hub, input, bytes } => {
                (4, hub as u64, input as u64, bytes as u64)
            }
            EventKind::CrossbarForward { hub, input, output, bytes } => {
                (5, hub as u64, (input as u64) << 32 | output as u64, bytes as u64)
            }
            EventKind::DatalinkRetry { cab } => (6, cab as u64, 0, 0),
            EventKind::DmaComplete { cab, channel, bytes } => {
                (7, cab as u64, channel as u64, bytes as u64)
            }
            EventKind::DmaStart { cab, channel, bytes } => {
                (8, cab as u64, channel as u64, bytes as u64)
            }
            EventKind::FiberTx { cab, bytes } => (9, cab as u64, bytes as u64, 0),
            EventKind::ThreadSwitch { cab, from, to } => (10, cab as u64, from as u64, to as u64),
            EventKind::TransportAck { cab, peer, ack } => (11, cab as u64, peer as u64, ack as u64),
            EventKind::TransportSend { cab, peer, seq, bytes, retransmit } => (
                12,
                (cab as u64) << 32 | peer as u64,
                (seq as u64) << 1 | retransmit as u64,
                bytes as u64,
            ),
            EventKind::TransportTimeout { cab, peer } => (13, cab as u64, peer as u64, 0),
        }
    }

    /// Short stable name, used by exporters and trace dumps.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::ConnectionOpen { .. } => "connection_open",
            EventKind::ConnectionClose { .. } => "connection_close",
            EventKind::CrossbarEnqueue { .. } => "crossbar_enqueue",
            EventKind::CrossbarForward { .. } => "crossbar_forward",
            EventKind::FiberTx { .. } => "fiber_tx",
            EventKind::DmaStart { .. } => "dma_start",
            EventKind::DmaComplete { .. } => "dma_complete",
            EventKind::ThreadSwitch { .. } => "thread_switch",
            EventKind::DatalinkRetry { .. } => "datalink_retry",
            EventKind::TransportSend { .. } => "transport_send",
            EventKind::TransportAck { .. } => "transport_ack",
            EventKind::TransportTimeout { .. } => "transport_timeout",
            EventKind::AppSend { .. } => "app_send",
            EventKind::AppRecv { .. } => "app_recv",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Simulation time of the event.
    pub at: Time,
    /// The flight this event belongs to, or [`FlightId::NONE`].
    pub flight: FlightId,
    /// What happened.
    pub kind: EventKind,
}

impl TelemetryEvent {
    /// The canonical total order over events: `(at, flight, kind
    /// content)`. Merging per-ring (or per-shard) event streams and
    /// sorting by this key yields the same sequence regardless of how
    /// the run was partitioned — the property both the sharded
    /// determinism tests and the streaming doctor's fold batches rely
    /// on.
    pub fn canonical_key(&self) -> (Time, u64, (u8, u64, u64, u64)) {
        (self.at, self.flight.0, self.kind.canonical_key())
    }
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {} {:?}", self.at, self.flight, self.kind.label(), self.kind)
    }
}

/// A bounded ring of [`TelemetryEvent`]s, disabled by default.
///
/// Like the instrumentation board it is a plug-in: every component owns
/// one, and unless an experiment enables it, [`record`](Telemetry::record)
/// is a single branch. `subject` lets a shared component (the kernel
/// scheduler, say) be stamped with the CAB it belongs to without
/// threading ids through every call site.
#[derive(Clone, Debug)]
pub struct Telemetry {
    ring: VecDeque<TelemetryEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    hwm: usize,
    subject: u16,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            ring: VecDeque::new(),
            capacity: 1 << 16,
            enabled: false,
            dropped: 0,
            hwm: 0,
            subject: 0,
        }
    }
}

impl Telemetry {
    /// Creates an **enabled** recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Telemetry {
        assert!(capacity > 0, "telemetry capacity must be positive");
        Telemetry { capacity, enabled: true, ..Telemetry::default() }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if events are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The owner id stamped on events recorded through this instance
    /// (e.g. the CAB number for a kernel scheduler's recorder).
    pub fn subject(&self) -> u16 {
        self.subject
    }

    /// Sets the owner id (see [`subject`](Telemetry::subject)).
    pub fn set_subject(&mut self, subject: u16) {
        self.subject = subject;
    }

    /// Appends an event (dropping the oldest at capacity). One branch
    /// when disabled.
    #[inline]
    pub fn record(&mut self, at: Time, flight: FlightId, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TelemetryEvent { at, flight, kind });
        self.hwm = self.hwm.max(self.ring.len());
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events lost to capacity since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Most events ever resident at once (survives drains and clears).
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Resizes the ring. Shrinking below the current occupancy drops
    /// the oldest events (they count as dropped).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "telemetry capacity must be positive");
        while self.ring.len() > capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.capacity = capacity;
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-to-newest.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.ring.iter()
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TelemetryEvent> {
        self.ring.drain(..).collect()
    }

    /// Moves all retained events (oldest first) onto the end of `out`
    /// without allocating a fresh vector — the streaming drain path.
    pub fn drain_into(&mut self, out: &mut Vec<TelemetryEvent>) {
        out.extend(self.ring.drain(..));
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn fwd(hub: u8) -> EventKind {
        EventKind::CrossbarForward { hub, input: 0, output: 1, bytes: 8 }
    }

    #[test]
    fn disabled_by_default_and_costs_nothing() {
        let mut tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.record(t(1), FlightId(1), fwd(0));
        assert!(tel.is_empty());
        tel.set_enabled(true);
        tel.record(t(2), FlightId(1), fwd(0));
        assert_eq!(tel.len(), 1);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut tel = Telemetry::with_capacity(2);
        for i in 0..3 {
            tel.record(t(i), FlightId(i), fwd(0));
        }
        assert_eq!(tel.len(), 2);
        assert_eq!(tel.dropped(), 1);
        assert_eq!(tel.events().next().unwrap().flight, FlightId(1));
    }

    #[test]
    fn drain_empties_in_order() {
        let mut tel = Telemetry::with_capacity(8);
        tel.record(t(5), FlightId::NONE, fwd(1));
        tel.record(t(9), FlightId(3), fwd(2));
        let out = tel.drain();
        assert!(tel.is_empty());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].at, t(5));
        assert_eq!(out[1].flight, FlightId(3));
    }

    #[test]
    fn high_water_mark_survives_drain() {
        let mut tel = Telemetry::with_capacity(4);
        for i in 0..3 {
            tel.record(t(i), FlightId(i), fwd(0));
        }
        assert_eq!(tel.high_water_mark(), 3);
        let mut out = Vec::new();
        tel.drain_into(&mut out);
        assert_eq!(out.len(), 3);
        assert!(tel.is_empty());
        assert_eq!(tel.high_water_mark(), 3);
        tel.record(t(9), FlightId(9), fwd(0));
        assert_eq!(tel.high_water_mark(), 3);
    }

    #[test]
    fn set_capacity_shrink_drops_oldest() {
        let mut tel = Telemetry::with_capacity(4);
        for i in 0..4 {
            tel.record(t(i), FlightId(i), fwd(0));
        }
        tel.set_capacity(2);
        assert_eq!(tel.capacity(), 2);
        assert_eq!(tel.len(), 2);
        assert_eq!(tel.dropped(), 2);
        assert_eq!(tel.events().next().unwrap().flight, FlightId(2));
    }

    #[test]
    fn canonical_key_orders_by_content() {
        let a = TelemetryEvent { at: t(5), flight: FlightId(1), kind: fwd(0) };
        let b = TelemetryEvent { at: t(5), flight: FlightId(1), kind: fwd(1) };
        let c = TelemetryEvent { at: t(4), flight: FlightId(9), kind: fwd(7) };
        assert!(c.canonical_key() < a.canonical_key());
        assert!(a.canonical_key() < b.canonical_key());
        assert_eq!(a.canonical_key(), a.canonical_key());
    }

    #[test]
    fn flight_sentinel() {
        assert!(!FlightId::NONE.is_some());
        assert!(FlightId(0).is_some());
        assert_eq!(FlightId(7).to_string(), "f7");
        assert_eq!(FlightId::NONE.to_string(), "f-");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(fwd(0).label(), "crossbar_forward");
        assert_eq!(EventKind::DatalinkRetry { cab: 1 }.label(), "datalink_retry");
    }

    #[test]
    fn display_mentions_label() {
        let ev = TelemetryEvent { at: t(700), flight: FlightId(4), kind: fwd(2) };
        let s = ev.to_string();
        assert!(s.contains("crossbar_forward") && s.contains("f4"), "{s}");
    }
}
