//! Chaos schedules: seeded, deterministic, replayable fault programs.
//!
//! The paper's transport layer exists because real Nectar links lose
//! and corrupt packets (§6.2.2). A [`ChaosSchedule`] is a small program
//! of fault [`Clause`]s — i.i.d. loss, Gilbert–Elliott burst loss,
//! duplication, bounded reordering, corruption, link flaps, command
//! loss, and HUB input-port failure — each scoped to a link
//! ([`ChaosTarget`]) and a simulated-time window. Compiling it yields a
//! [`ChaosInjector`] the world consults on every wire arrival.
//!
//! Three properties are contractual:
//!
//! * **Determinism** — every clause draws from its own RNG stream
//!   derived from the schedule seed, and every matching clause is
//!   evaluated on every arrival (no short-circuiting), so the same seed
//!   and the same event sequence produce byte-identical verdicts.
//! * **Replayability** — a schedule round-trips through its textual
//!   [`spec`](ChaosSchedule::spec) (the `--chaos-spec` grammar), and
//!   [`ChaosSchedule::random`] regenerates bit-for-bit from
//!   `--chaos-seed`.
//! * **Shrinkability** — [`shrink`] reduces a violating schedule to a
//!   locally minimal fault program while the violation persists; the
//!   vendored proptest shim does not shrink, so this is the campaign's
//!   shrinker.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::chaos::{ChaosSchedule, Clause, Fault};
//! use nectar_sim::time::{Dur, Time};
//!
//! let sched = ChaosSchedule::new(7)
//!     .with(Clause::new(Fault::Loss { rate: 0.1 }))
//!     .with(Clause::new(Fault::Duplicate { rate: 0.05 }).cab(1));
//! let spec = sched.spec();
//! let back = ChaosSchedule::parse(7, &spec).unwrap();
//! assert_eq!(sched, back);
//! let mut inj = sched.compile();
//! let v = inj.on_cab_packet(Time::ZERO, 1, 64);
//! assert!(!v.drop || v.corrupt.is_none());
//! ```

use crate::rng::Rng;
use crate::time::{Dur, Time};
use std::collections::HashMap;
use std::fmt;

use crate::spec::{fmt_dur, parse_dur, parse_prob};

/// Where a clause applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosTarget {
    /// Every link in the system.
    All,
    /// The fiber feeding this CAB (faults hit at CAB arrival).
    Cab(u16),
    /// One HUB input port (faults hit items arriving at the HUB).
    HubPort {
        /// HUB index.
        hub: u8,
        /// Input-port index on that HUB.
        port: u8,
    },
}

impl ChaosTarget {
    fn matches_cab(self, cab: u16) -> bool {
        match self {
            ChaosTarget::All => true,
            ChaosTarget::Cab(c) => c == cab,
            ChaosTarget::HubPort { .. } => false,
        }
    }

    fn matches_hub(self, hub: u8, port: u8) -> bool {
        match self {
            ChaosTarget::All => true,
            ChaosTarget::Cab(_) => false,
            ChaosTarget::HubPort { hub: h, port: p } => h == hub && p == port,
        }
    }

    /// A stable key for per-link state (Gilbert–Elliott channel state).
    fn link_key(cab_or_port: u32) -> u32 {
        cab_or_port
    }
}

impl fmt::Display for ChaosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosTarget::All => f.write_str("all"),
            ChaosTarget::Cab(c) => write!(f, "cab{c}"),
            ChaosTarget::HubPort { hub, port } => write!(f, "hub{hub}.{port}"),
        }
    }
}

/// The fault a clause injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Independent per-packet loss.
    Loss {
        /// Drop probability per packet.
        rate: f64,
    },
    /// Gilbert–Elliott burst loss: a two-state Markov channel. The
    /// good state is lossless; the bad state drops with `loss`.
    Burst {
        /// Drop probability while the channel is in the bad state.
        loss: f64,
        /// Per-packet probability of entering the bad state.
        p_bad: f64,
        /// Per-packet probability of recovering to the good state.
        p_recover: f64,
    },
    /// The wire hands the receiver a second copy of the packet.
    Duplicate {
        /// Duplication probability per packet.
        rate: f64,
    },
    /// Bounded reordering: the packet is held back up to `max_delay`
    /// while later traffic overtakes it.
    Reorder {
        /// Probability a packet is delayed.
        rate: f64,
        /// Upper bound on the added delay.
        max_delay: Dur,
    },
    /// One random bit of the packet flips (checksum-detected at the
    /// receiver unless it strikes very unluckily).
    Corrupt {
        /// Corruption probability per packet.
        rate: f64,
    },
    /// Deterministic link flap: down for `down`, up for `up`,
    /// repeating from the clause's window start. Down windows drop
    /// everything on the link.
    Flap {
        /// Length of each down window.
        down: Dur,
        /// Length of each up window between outages.
        up: Dur,
    },
    /// HUB command symbols vanish in flight (§6.2.1's recovery paths
    /// must cope).
    CommandLoss {
        /// Drop probability per command.
        rate: f64,
    },
    /// A HUB input port dies: everything arriving on it is discarded
    /// for the clause's window.
    PortFail,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Loss { rate } => write!(f, "loss({rate})"),
            Fault::Burst { loss, p_bad, p_recover } => {
                write!(f, "burst({loss},{p_bad},{p_recover})")
            }
            Fault::Duplicate { rate } => write!(f, "dup({rate})"),
            Fault::Reorder { rate, max_delay } => {
                write!(f, "reorder({rate},{})", fmt_dur(*max_delay))
            }
            Fault::Corrupt { rate } => write!(f, "corrupt({rate})"),
            Fault::Flap { down, up } => write!(f, "flap({},{})", fmt_dur(*down), fmt_dur(*up)),
            Fault::CommandLoss { rate } => write!(f, "cmdloss({rate})"),
            Fault::PortFail => f.write_str("portfail"),
        }
    }
}

/// One fault clause: a [`Fault`], the link(s) it applies to, and the
/// simulated-time window in which it is live.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Clause {
    /// What goes wrong.
    pub fault: Fault,
    /// Where it goes wrong.
    pub target: ChaosTarget,
    /// First instant the clause is live.
    pub from: Time,
    /// First instant the clause is no longer live (`Time::MAX` =
    /// forever).
    pub until: Time,
}

impl Clause {
    /// A clause over every link for all time.
    pub fn new(fault: Fault) -> Clause {
        Clause { fault, target: ChaosTarget::All, from: Time::ZERO, until: Time::MAX }
    }

    /// Restricts the clause to the fiber feeding CAB `cab`.
    pub fn cab(mut self, cab: u16) -> Clause {
        self.target = ChaosTarget::Cab(cab);
        self
    }

    /// Restricts the clause to one HUB input port.
    pub fn hub_port(mut self, hub: u8, port: u8) -> Clause {
        self.target = ChaosTarget::HubPort { hub, port };
        self
    }

    /// Restricts the clause to `[from, until)`.
    pub fn between(mut self, from: Time, until: Time) -> Clause {
        self.from = from;
        self.until = until;
        self
    }

    fn live_at(&self, now: Time) -> bool {
        self.from <= now && now < self.until
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fault.fmt(f)?;
        if self.target != ChaosTarget::All {
            write!(f, "@{}", self.target)?;
        }
        if self.from != Time::ZERO || self.until != Time::MAX {
            write!(f, "[{}..", fmt_dur(Dur::from_nanos(self.from.nanos())))?;
            if self.until != Time::MAX {
                write!(f, "{}", fmt_dur(Dur::from_nanos(self.until.nanos())))?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// A seeded, replayable program of fault clauses.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    /// Master seed: every clause's RNG stream derives from it.
    pub seed: u64,
    /// The fault program, applied clause by clause on every arrival.
    pub clauses: Vec<Clause>,
}

impl ChaosSchedule {
    /// An empty schedule (no faults) with the given seed.
    pub fn new(seed: u64) -> ChaosSchedule {
        ChaosSchedule { seed, clauses: Vec::new() }
    }

    /// Appends a clause.
    #[must_use]
    pub fn with(mut self, clause: Clause) -> ChaosSchedule {
        self.clauses.push(clause);
        self
    }

    /// Generates a random schedule, bit-for-bit reproducible from
    /// `seed`. Clause parameters are bounded so that retransmission
    /// always converges: loss ≤ 25 %, burst outages recover, flap up
    /// windows exist, and reorder delays stay under 200 µs. `cabs`
    /// bounds the targets of link-scoped clauses.
    pub fn random(seed: u64, cabs: u16) -> ChaosSchedule {
        let mut rng = Rng::seed_from(seed ^ 0x00C4_A05C_4A05);
        let mut sched = ChaosSchedule::new(seed);
        let n = rng.range(1..=4);
        for _ in 0..n {
            let fault = match rng.range(0..=5) {
                0 => Fault::Loss { rate: 0.01 + 0.24 * rng.f64() },
                1 => Fault::Burst {
                    loss: 0.3 + 0.5 * rng.f64(),
                    p_bad: 0.002 + 0.02 * rng.f64(),
                    p_recover: 0.2 + 0.5 * rng.f64(),
                },
                2 => Fault::Duplicate { rate: 0.01 + 0.14 * rng.f64() },
                3 => Fault::Reorder {
                    rate: 0.01 + 0.19 * rng.f64(),
                    max_delay: Dur::from_micros(10 + rng.range(0..=190)),
                },
                4 => Fault::Corrupt { rate: 0.01 + 0.09 * rng.f64() },
                _ => Fault::Flap {
                    down: Dur::from_micros(100 * (1 + rng.range(0..=19))),
                    up: Dur::from_micros(500 * (1 + rng.range(0..=9))),
                },
            };
            let mut clause = Clause::new(fault);
            if cabs > 0 && rng.chance(0.3) {
                clause = clause.cab(rng.range(0..=(cabs as u64 - 1)) as u16);
            }
            if rng.chance(0.25) {
                let from = Time::from_micros(rng.range(0..=2_000));
                let until = from + Dur::from_micros(500 + rng.range(0..=5_000));
                clause = clause.between(from, until);
            }
            sched.clauses.push(clause);
        }
        sched
    }

    /// The textual form of the fault program (the `--chaos-spec`
    /// grammar): clauses joined by `;`, each
    /// `kind(args)[@target][[from..until]]`. Round-trips exactly
    /// through [`parse`](ChaosSchedule::parse).
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        parts.join(";")
    }

    /// Parses the [`spec`](ChaosSchedule::spec) grammar. The seed
    /// travels separately (`--chaos-seed`).
    pub fn parse(seed: u64, spec: &str) -> Result<ChaosSchedule, String> {
        let mut sched = ChaosSchedule::new(seed);
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            sched.clauses.push(parse_clause(raw)?);
        }
        Ok(sched)
    }

    /// Compiles the schedule into a stateful injector.
    pub fn compile(&self) -> ChaosInjector {
        ChaosInjector::new(self.clone())
    }
}

impl fmt::Display for ChaosSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} {}", self.seed, self.spec())
    }
}

fn parse_clause(raw: &str) -> Result<Clause, String> {
    // Split off the window suffix `[from..until]`.
    let (head, window) = match raw.find('[') {
        Some(i) => {
            let w = raw[i..]
                .strip_prefix('[')
                .and_then(|w| w.strip_suffix(']'))
                .ok_or_else(|| format!("unterminated window in `{raw}`"))?;
            (&raw[..i], Some(w))
        }
        None => (raw, None),
    };
    // Split off the target suffix `@target`.
    let (kind_args, target) = match head.find('@') {
        Some(i) => (&head[..i], parse_target(&head[i + 1..])?),
        None => (head, ChaosTarget::All),
    };
    let (kind, args) = match kind_args.find('(') {
        Some(i) => {
            let inner = kind_args[i..]
                .strip_prefix('(')
                .and_then(|a| a.strip_suffix(')'))
                .ok_or_else(|| format!("unterminated args in `{raw}`"))?;
            (&kind_args[..i], inner.split(',').collect::<Vec<_>>())
        }
        None => (kind_args, Vec::new()),
    };
    let need = |n: usize| {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("`{kind}` takes {n} argument(s), got {}", args.len()))
        }
    };
    let fault = match kind.trim() {
        "loss" => {
            need(1)?;
            Fault::Loss { rate: parse_prob(args[0])? }
        }
        "burst" => {
            need(3)?;
            Fault::Burst {
                loss: parse_prob(args[0])?,
                p_bad: parse_prob(args[1])?,
                p_recover: parse_prob(args[2])?,
            }
        }
        "dup" => {
            need(1)?;
            Fault::Duplicate { rate: parse_prob(args[0])? }
        }
        "reorder" => {
            need(2)?;
            Fault::Reorder { rate: parse_prob(args[0])?, max_delay: parse_dur(args[1])? }
        }
        "corrupt" => {
            need(1)?;
            Fault::Corrupt { rate: parse_prob(args[0])? }
        }
        "flap" => {
            need(2)?;
            Fault::Flap { down: parse_dur(args[0])?, up: parse_dur(args[1])? }
        }
        "cmdloss" => {
            need(1)?;
            Fault::CommandLoss { rate: parse_prob(args[0])? }
        }
        "portfail" => {
            need(0)?;
            Fault::PortFail
        }
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    let mut clause = Clause { fault, target, from: Time::ZERO, until: Time::MAX };
    if let Some(w) = window {
        let (from, until) = w.split_once("..").ok_or_else(|| format!("bad window `[{w}]`"))?;
        clause.from = Time::from_nanos(parse_dur(from)?.nanos());
        clause.until = if until.trim().is_empty() {
            Time::MAX
        } else {
            Time::from_nanos(parse_dur(until)?.nanos())
        };
    }
    Ok(clause)
}

fn parse_target(s: &str) -> Result<ChaosTarget, String> {
    let s = s.trim();
    if s == "all" {
        return Ok(ChaosTarget::All);
    }
    if let Some(c) = s.strip_prefix("cab") {
        return Ok(ChaosTarget::Cab(c.parse().map_err(|_| format!("bad target `{s}`"))?));
    }
    if let Some(rest) = s.strip_prefix("hub") {
        let (h, p) = rest.split_once('.').ok_or_else(|| format!("bad target `{s}`"))?;
        return Ok(ChaosTarget::HubPort {
            hub: h.parse().map_err(|_| format!("bad target `{s}`"))?,
            port: p.parse().map_err(|_| format!("bad target `{s}`"))?,
        });
    }
    Err(format!("bad target `{s}` (want all, cabN, or hubH.P)"))
}

/// What the injector decided for one arriving packet. `drop` excludes
/// every other effect; otherwise duplication, corruption, and delay
/// compose.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PacketVerdict {
    /// The packet vanishes.
    pub drop: bool,
    /// The receiver gets a second copy.
    pub duplicate: bool,
    /// `(byte index, bit)` to flip, bounded by the packet length.
    pub corrupt: Option<(usize, u8)>,
    /// Extra delay before the packet reaches the receiver (reordering:
    /// later traffic overtakes it).
    pub delay: Option<Dur>,
}

/// Applied-fault counters, by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Packets dropped by i.i.d. loss clauses.
    pub drops: u64,
    /// Packets dropped while a burst channel was in its bad state.
    pub burst_drops: u64,
    /// Packets dropped inside a flap down-window.
    pub flap_drops: u64,
    /// Packets the receiver saw twice.
    pub duplicates: u64,
    /// Packets delayed for reordering.
    pub reorders: u64,
    /// Packets with a flipped bit.
    pub corruptions: u64,
    /// HUB command symbols destroyed.
    pub cmd_drops: u64,
    /// Items destroyed by a failed HUB input port.
    pub port_drops: u64,
}

impl ChaosStats {
    /// Every packet-destroying application (drops of all kinds).
    pub fn total_drops(&self) -> u64 {
        self.drops + self.burst_drops + self.flap_drops + self.cmd_drops + self.port_drops
    }
}

struct ClauseState {
    clause: Clause,
    /// Seed root for this clause's per-component RNG streams.
    seed: u64,
    /// One RNG stream per component (CAB index, or a hub key from
    /// [`hub_stream_key`]). Splitting the stream per component makes
    /// every draw a function of that component's own arrival order
    /// alone, so a sharded run — which interleaves *different
    /// components* differently but never reorders one component's
    /// arrivals — consumes identical streams.
    rngs: HashMap<u32, Rng>,
    /// Gilbert–Elliott channel state per link key: `true` = bad.
    bad: HashMap<u32, bool>,
}

/// The RNG stream for component `comp` under a clause rooted at `seed`,
/// created on first use. A free function (not a method) so callers can
/// hold it alongside a borrow of the clause's other per-link state.
fn stream(rngs: &mut HashMap<u32, Rng>, seed: u64, comp: u32) -> &mut Rng {
    rngs.entry(comp).or_insert_with(|| {
        Rng::seed_from(seed.wrapping_add((comp as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)))
    })
}

/// Stream key for HUB-side draws, disjoint from the CAB index space.
fn hub_stream_key(hub: u8, port: u8) -> u32 {
    0x0100_0000 | ((hub as u32) << 8) | port as u32
}

/// A compiled, stateful [`ChaosSchedule`]: the world consults it on
/// every CAB packet arrival and every HUB item arrival.
pub struct ChaosInjector {
    schedule: ChaosSchedule,
    states: Vec<ClauseState>,
    stats: ChaosStats,
}

impl ChaosInjector {
    /// Compiles `schedule`. Each (clause, component) pair gets its own
    /// RNG stream derived from the master seed, the clause position,
    /// and the component id — adding a clause never perturbs the draws
    /// of the others, and traffic on one component never perturbs the
    /// draws made for another (the property sharded execution needs).
    pub fn new(schedule: ChaosSchedule) -> ChaosInjector {
        let states = schedule
            .clauses
            .iter()
            .enumerate()
            .map(|(i, c)| ClauseState {
                clause: *c,
                seed: schedule
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                rngs: HashMap::new(),
                bad: HashMap::new(),
            })
            .collect();
        ChaosInjector { schedule, states, stats: ChaosStats::default() }
    }

    /// The schedule this injector was compiled from (for replay lines).
    pub fn schedule(&self) -> &ChaosSchedule {
        &self.schedule
    }

    /// Applied-fault counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Decides the fate of a packet arriving on CAB `cab`'s fiber.
    /// Every matching clause is evaluated (its RNG advances) before the
    /// verdict is combined, so the draw sequence is independent of
    /// which fault wins; a drop then excludes the other effects.
    pub fn on_cab_packet(&mut self, now: Time, cab: u16, len: usize) -> PacketVerdict {
        let mut drop_iid = false;
        let mut drop_burst = false;
        let mut drop_flap = false;
        let mut v = PacketVerdict::default();
        for st in &mut self.states {
            if !st.clause.live_at(now) || !st.clause.target.matches_cab(cab) {
                continue;
            }
            let ClauseState { clause, seed, rngs, bad } = st;
            let rng = stream(rngs, *seed, cab as u32);
            match clause.fault {
                Fault::Loss { rate } => drop_iid |= rng.chance(rate),
                Fault::Burst { loss, p_bad, p_recover } => {
                    let bad = bad.entry(ChaosTarget::link_key(cab as u32)).or_insert(false);
                    if *bad {
                        if rng.chance(p_recover) {
                            *bad = false;
                        }
                    } else if rng.chance(p_bad) {
                        *bad = true;
                    }
                    if *bad && rng.chance(loss) {
                        drop_burst = true;
                    }
                }
                Fault::Duplicate { rate } => v.duplicate |= rng.chance(rate),
                Fault::Reorder { rate, max_delay } => {
                    if rng.chance(rate) {
                        let bound = max_delay.nanos().max(1);
                        v.delay = Some(Dur::from_nanos(rng.range(1..=bound)));
                    }
                }
                Fault::Corrupt { rate } => {
                    if len > 0 && rng.chance(rate) {
                        let idx = rng.range(0..=(len as u64 - 1)) as usize;
                        let bit = rng.range(0..=7) as u8;
                        v.corrupt = Some((idx, bit));
                    }
                }
                Fault::Flap { down, up } => drop_flap |= flap_down(now, clause.from, down, up),
                Fault::CommandLoss { .. } | Fault::PortFail => {}
            }
        }
        if drop_iid || drop_burst || drop_flap {
            v = PacketVerdict { drop: true, ..PacketVerdict::default() };
            if drop_iid {
                self.stats.drops += 1;
            } else if drop_burst {
                self.stats.burst_drops += 1;
            } else {
                self.stats.flap_drops += 1;
            }
        } else {
            self.stats.duplicates += u64::from(v.duplicate);
            self.stats.reorders += u64::from(v.delay.is_some());
            self.stats.corruptions += u64::from(v.corrupt.is_some());
        }
        v
    }

    /// Decides whether an item arriving at HUB `hub`, input `port` is
    /// destroyed (command loss, port failure, or a link flap).
    ///
    /// `edge` marks ports fed by a CAB, whose datalink ready-timeout
    /// recovers from a destroyed item. Trunk (HUB-to-HUB) ports have
    /// no such timer, so broad-target clauses (`all`, `cabN`) skip
    /// them; only a clause aimed at `hubH.P` explicitly kills a trunk
    /// port — and may partition the network, which is the point.
    pub fn on_hub_item(
        &mut self,
        now: Time,
        hub: u8,
        port: u8,
        is_command: bool,
        edge: bool,
    ) -> bool {
        let mut drop = false;
        for st in &mut self.states {
            if !st.clause.live_at(now) || !st.clause.target.matches_hub(hub, port) {
                continue;
            }
            if !edge && !matches!(st.clause.target, ChaosTarget::HubPort { .. }) {
                continue;
            }
            // Guard order matters: the RNG draw comes before the
            // `!drop` check so every matching clause consumes its
            // stream on every arrival (determinism contract).
            let ClauseState { clause, seed, rngs, .. } = st;
            match clause.fault {
                Fault::CommandLoss { rate }
                    if is_command
                        && stream(rngs, *seed, hub_stream_key(hub, port)).chance(rate)
                        && !drop =>
                {
                    drop = true;
                    self.stats.cmd_drops += 1;
                }
                Fault::PortFail if !drop => {
                    drop = true;
                    self.stats.port_drops += 1;
                }
                Fault::Flap { down, up } if flap_down(now, clause.from, down, up) && !drop => {
                    drop = true;
                    self.stats.flap_drops += 1;
                }
                _ => {}
            }
        }
        drop
    }
    /// Lifts the per-component RNG streams and channel states for the
    /// given CABs and HUBs out of this injector, for transplant into
    /// another shard's injector when the components migrate (adaptive
    /// shard rebalancing).
    ///
    /// Both injectors must be compiled from the same schedule: stream
    /// seeds derive from (schedule seed, clause position, component),
    /// so a stream that was never started moves implicitly — the
    /// receiving injector lazily creates the identical stream. Only
    /// *started* streams carry consumed-draw state that must move.
    pub fn extract_component_state(&mut self, cabs: &[u16], hubs: &[u8]) -> ChaosMigration {
        let matches = |k: u32| {
            cabs.iter().any(|&c| k == c as u32)
                || hubs.iter().any(|&h| (k & 0xFFFF_FF00) == (0x0100_0000 | ((h as u32) << 8)))
        };
        let per_clause = self
            .states
            .iter_mut()
            .map(|st| {
                let rng_keys: Vec<u32> = st.rngs.keys().copied().filter(|&k| matches(k)).collect();
                let rngs = rng_keys
                    .into_iter()
                    .map(|k| (k, st.rngs.remove(&k).expect("key just enumerated")))
                    .collect();
                let bad_keys: Vec<u32> = st.bad.keys().copied().filter(|&k| matches(k)).collect();
                let bad = bad_keys
                    .into_iter()
                    .map(|k| (k, st.bad.remove(&k).expect("key just enumerated")))
                    .collect();
                (rngs, bad)
            })
            .collect();
        ChaosMigration { per_clause }
    }

    /// Installs component state previously lifted with
    /// [`extract_component_state`](ChaosInjector::extract_component_state).
    ///
    /// # Panics
    ///
    /// Panics if the two injectors were compiled from schedules with
    /// different clause counts — transplanting streams across
    /// schedules would silently desynchronize the draw sequence.
    pub fn absorb_component_state(&mut self, migration: ChaosMigration) {
        assert_eq!(
            migration.per_clause.len(),
            self.states.len(),
            "chaos migration between injectors compiled from different schedules"
        );
        for (st, (rngs, bad)) in self.states.iter_mut().zip(migration.per_clause) {
            st.rngs.extend(rngs);
            st.bad.extend(bad);
        }
    }
}

/// One clause's migrating state: the moved RNG streams and
/// Gilbert–Elliott channel states, by component key.
type ClauseMigration = (Vec<(u32, Rng)>, Vec<(u32, bool)>);

/// Per-component injector state in transit between two shards'
/// injectors; see [`ChaosInjector::extract_component_state`].
#[derive(Debug)]
pub struct ChaosMigration {
    /// Parallel to the injector's clause list.
    per_clause: Vec<ClauseMigration>,
}

/// `true` when a flap clause anchored at `from` has the link down at
/// `now` (square wave: `down` then `up`, repeating).
fn flap_down(now: Time, from: Time, down: Dur, up: Dur) -> bool {
    let period = down.nanos().saturating_add(up.nanos());
    if period == 0 || down.is_zero() {
        return false;
    }
    let elapsed = now.nanos().saturating_sub(from.nanos());
    elapsed % period < down.nanos()
}

/// Greedily shrinks a violating schedule: clauses are removed and
/// parameters weakened while `still_fails` keeps returning `true` (the
/// property under test still fails). The result is locally minimal —
/// removing or weakening any single clause makes the violation vanish.
/// Runs `still_fails` O(clauses · rounds) times; rounds are capped so a
/// flaky predicate cannot loop forever.
pub fn shrink(
    schedule: &ChaosSchedule,
    mut still_fails: impl FnMut(&ChaosSchedule) -> bool,
) -> ChaosSchedule {
    let mut cur = schedule.clone();
    for _round in 0..32 {
        let mut progressed = false;
        // Pass 1: drop whole clauses.
        let mut i = 0;
        while i < cur.clauses.len() {
            if cur.clauses.len() > 1 {
                let mut cand = cur.clone();
                cand.clauses.remove(i);
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                    continue;
                }
            }
            i += 1;
        }
        // Pass 2: weaken parameters clause by clause.
        for i in 0..cur.clauses.len() {
            if let Some(weaker) = weaken(&cur.clauses[i].fault) {
                let mut cand = cur.clone();
                cand.clauses[i].fault = weaker;
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    cur
}

/// Halves the dominant parameter of a fault, or `None` when it is
/// already minimal.
fn weaken(fault: &Fault) -> Option<Fault> {
    const FLOOR: f64 = 0.005;
    let halve = |r: f64| if r > FLOOR { Some(r / 2.0) } else { None };
    match *fault {
        Fault::Loss { rate } => halve(rate).map(|rate| Fault::Loss { rate }),
        Fault::Burst { loss, p_bad, p_recover } => {
            halve(p_bad).map(|p_bad| Fault::Burst { loss, p_bad, p_recover })
        }
        Fault::Duplicate { rate } => halve(rate).map(|rate| Fault::Duplicate { rate }),
        Fault::Reorder { rate, max_delay } => {
            halve(rate).map(|rate| Fault::Reorder { rate, max_delay })
        }
        Fault::Corrupt { rate } => halve(rate).map(|rate| Fault::Corrupt { rate }),
        Fault::Flap { down, up } => {
            if down.nanos() > 1_000 {
                Some(Fault::Flap { down: Dur::from_nanos(down.nanos() / 2), up })
            } else {
                None
            }
        }
        Fault::CommandLoss { rate } => halve(rate).map(|rate| Fault::CommandLoss { rate }),
        Fault::PortFail => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_every_clause_kind() {
        let sched = ChaosSchedule::new(9)
            .with(Clause::new(Fault::Loss { rate: 0.05 }))
            .with(Clause::new(Fault::Burst { loss: 0.5, p_bad: 0.01, p_recover: 0.25 }).cab(2))
            .with(Clause::new(Fault::Duplicate { rate: 0.02 }))
            .with(Clause::new(Fault::Reorder { rate: 0.1, max_delay: Dur::from_micros(50) }))
            .with(Clause::new(Fault::Corrupt { rate: 0.01 }).cab(0))
            .with(
                Clause::new(Fault::Flap { down: Dur::from_micros(200), up: Dur::from_micros(800) })
                    .between(Time::from_millis(1), Time::from_millis(4)),
            )
            .with(Clause::new(Fault::CommandLoss { rate: 0.03 }).hub_port(0, 1))
            .with(
                Clause::new(Fault::PortFail)
                    .hub_port(1, 3)
                    .between(Time::ZERO, Time::from_micros(1500)),
            );
        let spec = sched.spec();
        let back = ChaosSchedule::parse(9, &spec).expect("parse");
        assert_eq!(back, sched, "spec `{spec}` did not round-trip");
        assert_eq!(back.spec(), spec, "re-rendering changed the spec");
    }

    #[test]
    fn random_schedules_are_reproducible() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = ChaosSchedule::random(seed, 4);
            let b = ChaosSchedule::random(seed, 4);
            assert_eq!(a, b);
            assert_eq!(a.spec(), b.spec());
            assert!(!a.clauses.is_empty());
        }
        assert_ne!(ChaosSchedule::random(1, 4), ChaosSchedule::random(2, 4));
    }

    #[test]
    fn injector_verdicts_are_deterministic() {
        let sched = ChaosSchedule::random(77, 4);
        let mut a = sched.compile();
        let mut b = sched.compile();
        for i in 0..500u64 {
            let now = Time::from_micros(i * 3);
            let cab = (i % 4) as u16;
            assert_eq!(a.on_cab_packet(now, cab, 1024), b.on_cab_packet(now, cab, 1024));
            assert_eq!(
                a.on_hub_item(now, 0, (i % 8) as u8, i % 3 == 0, true),
                b.on_hub_item(now, 0, (i % 8) as u8, i % 3 == 0, true)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let sched = ChaosSchedule::new(5).with(Clause::new(Fault::Loss { rate: 0.2 }));
        let mut inj = sched.compile();
        let mut drops = 0;
        for i in 0..10_000u64 {
            if inj.on_cab_packet(Time::from_nanos(i), 0, 64).drop {
                drops += 1;
            }
        }
        assert!((1_500..2_500).contains(&drops), "drops {drops} far from 20%");
        assert_eq!(inj.stats().drops, drops);
    }

    #[test]
    fn burst_loss_clusters() {
        let sched = ChaosSchedule::new(11).with(Clause::new(Fault::Burst {
            loss: 1.0,
            p_bad: 0.01,
            p_recover: 0.2,
        }));
        let mut inj = sched.compile();
        let fates: Vec<bool> =
            (0..20_000u64).map(|i| inj.on_cab_packet(Time::from_nanos(i), 0, 64).drop).collect();
        let drops = fates.iter().filter(|&&d| d).count();
        assert!(drops > 0, "bad state never entered");
        // Burstiness: a drop is followed by another drop far more often
        // than the marginal rate predicts.
        let pairs = fates.windows(2).filter(|w| w[0]).count();
        let runs = fates.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(
            runs as f64 / pairs as f64 > 2.0 * drops as f64 / fates.len() as f64,
            "loss is not bursty: P(drop|drop)={} marginal={}",
            runs as f64 / pairs as f64,
            drops as f64 / fates.len() as f64
        );
    }

    #[test]
    fn flap_windows_are_deterministic_squares() {
        let clause =
            Clause::new(Fault::Flap { down: Dur::from_micros(100), up: Dur::from_micros(300) });
        let sched = ChaosSchedule::new(1).with(clause);
        let mut inj = sched.compile();
        assert!(inj.on_cab_packet(Time::from_micros(50), 0, 64).drop, "inside down window");
        assert!(!inj.on_cab_packet(Time::from_micros(200), 0, 64).drop, "inside up window");
        assert!(inj.on_cab_packet(Time::from_micros(450), 0, 64).drop, "next period's down");
    }

    #[test]
    fn windows_and_targets_scope_clauses() {
        let sched = ChaosSchedule::new(3).with(
            Clause::new(Fault::Loss { rate: 1.0 })
                .cab(1)
                .between(Time::from_micros(10), Time::from_micros(20)),
        );
        let mut inj = sched.compile();
        assert!(!inj.on_cab_packet(Time::from_micros(15), 0, 64).drop, "other cab untouched");
        assert!(!inj.on_cab_packet(Time::from_micros(5), 1, 64).drop, "before the window");
        assert!(inj.on_cab_packet(Time::from_micros(15), 1, 64).drop, "in scope");
        assert!(!inj.on_cab_packet(Time::from_micros(25), 1, 64).drop, "after the window");
    }

    #[test]
    fn port_fail_and_command_loss_hit_hub_items() {
        let sched = ChaosSchedule::new(4)
            .with(Clause::new(Fault::PortFail).hub_port(0, 2))
            .with(Clause::new(Fault::CommandLoss { rate: 1.0 }).hub_port(1, 0));
        let mut inj = sched.compile();
        assert!(inj.on_hub_item(Time::ZERO, 0, 2, false, true), "dead port eats packets");
        assert!(inj.on_hub_item(Time::ZERO, 0, 2, true, true), "dead port eats commands");
        assert!(!inj.on_hub_item(Time::ZERO, 0, 3, false, true), "other ports live");
        assert!(inj.on_hub_item(Time::ZERO, 1, 0, true, true), "command loss eats commands");
        assert!(!inj.on_hub_item(Time::ZERO, 1, 0, false, true), "command loss spares packets");
        assert_eq!(inj.stats().port_drops, 2);
        assert_eq!(inj.stats().cmd_drops, 1);
    }

    #[test]
    fn broad_clauses_spare_trunk_ports() {
        // A flap over `all` must not black-hole HUB-to-HUB trunks
        // (there is no ready-timeout to recover them); an explicitly
        // targeted portfail still does.
        let sched = ChaosSchedule::new(5)
            .with(Clause::new(Fault::Flap { down: Dur::from_millis(1), up: Dur::from_micros(1) }))
            .with(Clause::new(Fault::PortFail).hub_port(2, 7));
        let mut inj = sched.compile();
        assert!(inj.on_hub_item(Time::ZERO, 0, 1, false, true), "flap hits edge ports");
        assert!(!inj.on_hub_item(Time::ZERO, 0, 1, false, false), "flap spares trunks");
        assert!(inj.on_hub_item(Time::ZERO, 2, 7, false, false), "targeted portfail kills trunks");
    }

    #[test]
    fn corruption_point_is_bounded_by_length() {
        let sched = ChaosSchedule::new(8).with(Clause::new(Fault::Corrupt { rate: 1.0 }));
        let mut inj = sched.compile();
        for len in [1usize, 2, 64, 1024] {
            let v = inj.on_cab_packet(Time::ZERO, 0, len);
            let (idx, bit) = v.corrupt.expect("rate 1.0 always corrupts");
            assert!(idx < len);
            assert!(bit < 8);
        }
        assert_eq!(inj.on_cab_packet(Time::ZERO, 0, 0).corrupt, None, "empty packets exempt");
    }

    #[test]
    fn drop_excludes_other_effects() {
        let sched = ChaosSchedule::new(6)
            .with(Clause::new(Fault::Loss { rate: 1.0 }))
            .with(Clause::new(Fault::Duplicate { rate: 1.0 }))
            .with(Clause::new(Fault::Corrupt { rate: 1.0 }));
        let mut inj = sched.compile();
        let v = inj.on_cab_packet(Time::ZERO, 0, 64);
        assert!(v.drop);
        assert!(!v.duplicate);
        assert_eq!(v.corrupt, None);
        assert_eq!(v.delay, None);
        assert_eq!(inj.stats().duplicates, 0, "excluded effects are not counted");
    }

    #[test]
    fn shrink_reaches_a_minimal_program() {
        // The "violation": any schedule containing a dup clause with
        // rate above 0.01 fails.
        let fails = |s: &ChaosSchedule| {
            s.clauses.iter().any(|c| matches!(c.fault, Fault::Duplicate { rate } if rate > 0.01))
        };
        let sched = ChaosSchedule::new(2)
            .with(Clause::new(Fault::Loss { rate: 0.2 }))
            .with(Clause::new(Fault::Duplicate { rate: 0.64 }))
            .with(Clause::new(Fault::Flap { down: Dur::from_millis(1), up: Dur::from_millis(1) }));
        assert!(fails(&sched));
        let min = shrink(&sched, fails);
        assert!(fails(&min), "shrinking must preserve the violation");
        assert_eq!(min.clauses.len(), 1, "irrelevant clauses removed: {}", min.spec());
        match min.clauses[0].fault {
            Fault::Duplicate { rate } => {
                assert!(rate > 0.01 && rate <= 0.02, "rate weakened to the boundary: {rate}")
            }
            ref f => panic!("wrong surviving clause: {f:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nonsense(1)",
            "loss",
            "loss(0.1,0.2)",
            "loss(x)",
            "reorder(0.1,10)",
            "loss(0.1)@hub0",
            "loss(0.1)[1ms..",
            "burst(0.5)",
            // Hardened number validation: out-of-range and non-finite
            // rates used to parse into nonsense schedules.
            "loss(1.5)",
            "loss(NaN)",
            "loss(-0.1)",
            "loss(inf)",
            "dup(2.0)",
            "corrupt(-1)",
            "burst(1.5,0.1,0.1)",
            // Duration overflow used to wrap silently.
            "flap(99999999999999s,1s)",
            "loss(0.1)[99999999999999s..]",
        ] {
            assert!(ChaosSchedule::parse(0, bad).is_err(), "`{bad}` should not parse");
        }
    }
}
