//! The discrete-event simulation engine.
//!
//! [`Engine`] is a priority queue of timestamped events plus a clock.
//! It is generic over the event payload type `E`; the system-integration
//! layer defines one event enum for the whole world and drives the loop:
//!
//! ```
//! use nectar_sim::engine::Engine;
//! use nectar_sim::time::{Dur, Time};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut eng = Engine::new();
//! eng.schedule(Dur::from_nanos(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some(ev) = eng.step() {
//!     match ev {
//!         Ev::Ping => {
//!             eng.schedule(Dur::from_nanos(5), Ev::Pong);
//!             log.push((eng.now(), "ping"));
//!         }
//!         Ev::Pong => log.push((eng.now(), "pong")),
//!     }
//! }
//! assert_eq!(log, vec![(Time::from_nanos(10), "ping"), (Time::from_nanos(15), "pong")]);
//! ```
//!
//! Determinism: events that share a timestamp are delivered in the order
//! they were scheduled (FIFO tie-break on a sequence number), so a run
//! is a pure function of its inputs and RNG seed.

use crate::time::{Dur, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::fmt;

/// Handle to a scheduled event, usable to [`Engine::cancel`] it.
///
/// Handles are unique over the lifetime of an engine and never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// See the [module documentation](self) for the driving pattern.
///
/// Scheduling, cancelling, and delivering are all O(log n): cancelled
/// events become tombstones that are garbage-collected whenever they
/// reach the top of the heap, so the invariant "the heap top is live"
/// holds between calls and [`peek_time`](Engine::peek_time) is O(1).
pub struct Engine<E> {
    now: Time,
    heap: BinaryHeap<Entry<E>>,
    /// Seqs scheduled and not yet fired or cancelled.
    live: HashSet<u64>,
    /// Seqs cancelled but still buried in the heap.
    cancelled: HashSet<u64>,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`Time::ZERO`] and no events.
    pub fn new() -> Engine<E> {
        Engine {
            now: Time::ZERO,
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// delivered event (or [`Time::ZERO`] before the first).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of live events still pending.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `payload` to fire `delay` after the current time.
    ///
    /// Returns a handle usable with [`cancel`](Engine::cancel).
    pub fn schedule(&mut self, delay: Dur, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("event scheduled past the end of representable time");
        self.schedule_at(at, payload)
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Engine::now): the
    /// simulation cannot deliver events into its own past.
    pub fn schedule_at(&mut self, at: Time, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Pops tombstoned entries off the heap top, restoring the
    /// invariant that the top (if any) is a live event.
    fn gc_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let dead = self.heap.pop().expect("peeked");
                self.cancelled.remove(&dead.seq);
            } else {
                break;
            }
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will not be
    /// delivered), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false; // already fired, already cancelled, or unknown
        }
        self.cancelled.insert(id.0);
        self.gc_top();
        true
    }

    /// Delivers the next event: advances the clock to its timestamp and
    /// returns its payload, or `None` if the queue is empty.
    pub fn step(&mut self) -> Option<E> {
        // The gc invariant guarantees the top (if any) is live.
        let entry = self.heap.pop()?;
        debug_assert!(!self.cancelled.contains(&entry.seq), "gc invariant violated");
        debug_assert!(entry.at >= self.now);
        self.live.remove(&entry.seq);
        self.gc_top();
        self.now = entry.at;
        self.delivered += 1;
        Some(entry.payload)
    }

    /// The timestamp of the next live event, if any, without delivering
    /// it. O(1) thanks to the gc invariant.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Used by drivers that poll in fixed time slices: when every
    /// pending event lies beyond the slice, the clock still moves.
    ///
    /// # Panics
    ///
    /// Panics if a live event is scheduled before `t` — delivering it
    /// late would reorder the simulation.
    pub fn advance_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        if let Some(next) = self.peek_time() {
            assert!(next >= t, "cannot advance past a pending event at {next}");
        }
        self.now = t;
    }

    /// Runs `handler` on every event until the queue drains or the clock
    /// would pass `deadline`; events after the deadline stay queued.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until<F>(&mut self, deadline: Time, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        let mut n = 0;
        while let Some(at) = self.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.step().expect("peek_time saw a live event");
            handler(self, ev);
            n += 1;
        }
        if self.now < deadline && self.is_idle() {
            self.now = deadline;
        }
        n
    }

    /// Runs `handler` until no events remain.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_until(Time::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(30), 3);
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(20), 2);
        assert_eq!(eng.step(), Some(1));
        assert_eq!(eng.now(), Time::from_nanos(10));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.step(), Some(3));
        assert_eq!(eng.step(), None);
        assert_eq!(eng.events_delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(Dur::from_nanos(5), "first");
        eng.schedule(Dur::from_nanos(5), "second");
        eng.schedule(Dur::from_nanos(5), "third");
        assert_eq!(eng.step(), Some("first"));
        assert_eq!(eng.step(), Some("second"));
        assert_eq!(eng.step(), Some("third"));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        let b = eng.schedule(Dur::from_nanos(2), 2);
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double cancel reports false");
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.step(), Some(2));
        assert!(!eng.cancel(b), "cancelling a fired event reports false");
    }

    #[test]
    fn schedule_during_step() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 0);
        let mut seen = Vec::new();
        eng.run_to_completion(|eng, ev| {
            seen.push((eng.now().nanos(), ev));
            if ev < 3 {
                eng.schedule(Dur::from_nanos(10), ev + 1);
            }
        });
        assert_eq!(seen, vec![(10, 0), (20, 1), (30, 2), (40, 3)]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(100), 2);
        let mut seen = Vec::new();
        let n = eng.run_until(Time::from_nanos(50), |_, ev| seen.push(ev));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        assert_eq!(eng.pending(), 1);
        // Clock does not jump to the deadline while events remain queued.
        assert_eq!(eng.now(), Time::from_nanos(10));
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut eng: Engine<u32> = Engine::new();
        eng.run_until(Time::from_micros(5), |_, _| {});
        assert_eq!(eng.now(), Time::from_micros(5));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.step();
        eng.schedule_at(Time::from_nanos(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        eng.schedule(Dur::from_nanos(9), 2);
        eng.cancel(a);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(9)));
    }

    #[test]
    fn zero_delay_fires_at_now() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(7), 1);
        eng.step();
        eng.schedule(Dur::ZERO, 2);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(7)));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.now(), Time::from_nanos(7));
    }
}
