//! The discrete-event simulation engine.
//!
//! [`Engine`] is a priority queue of timestamped events plus a clock.
//! It is generic over the event payload type `E`; the system-integration
//! layer defines one event enum for the whole world and drives the loop:
//!
//! ```
//! use nectar_sim::engine::Engine;
//! use nectar_sim::time::{Dur, Time};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut eng = Engine::new();
//! eng.schedule(Dur::from_nanos(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some(ev) = eng.step() {
//!     match ev {
//!         Ev::Ping => {
//!             eng.schedule(Dur::from_nanos(5), Ev::Pong);
//!             log.push((eng.now(), "ping"));
//!         }
//!         Ev::Pong => log.push((eng.now(), "pong")),
//!     }
//! }
//! assert_eq!(log, vec![(Time::from_nanos(10), "ping"), (Time::from_nanos(15), "pong")]);
//! ```
//!
//! Determinism: events that share a timestamp are delivered in the order
//! they were scheduled (FIFO tie-break on a sequence number), so a run
//! is a pure function of its inputs and RNG seed.
//!
//! # Implementation
//!
//! Every operation on the hot path is hash-free and allocation-free
//! (amortised): events live in a **slab** of generation-tagged slots
//! reached directly from the [`EventId`], and ordering comes from an
//! **indexed 4-ary min-heap** whose entries carry their `(time, seq)`
//! keys inline (comparisons never touch the slab).
//! Each slot remembers its heap position, so [`cancel`](Engine::cancel)
//! removes the entry from the middle of the heap in O(log n) — there
//! are no tombstones to garbage-collect and the heap never holds dead
//! entries, which keeps [`peek_time`](Engine::peek_time) O(1)
//! unconditionally. Freed slots go on a freelist and are reused with a
//! bumped generation, so stale handles are rejected without any lookup
//! structure.
//!
//! For drivers that process many events per simulated instant (a HUB
//! drains an entire 70 ns cycle at once), [`step_batch`](Engine::step_batch)
//! pops every event sharing the earliest timestamp in one call,
//! avoiding a peek/compare per event.

use crate::time::{Dur, Time};
use std::fmt;

/// Handle to a scheduled event, usable to [`Engine::cancel`] it.
///
/// Handles are unique over the lifetime of an engine and never reused:
/// a handle is a slot index plus the slot's generation at scheduling
/// time, and the generation is bumped every time the slot is freed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Sentinel heap position for slots not currently queued.
const NOT_QUEUED: u32 = u32::MAX;

/// Heap arity. 4 trades a slightly deeper comparison fan-out per level
/// for half the depth of a binary heap — fewer cache lines touched per
/// sift on the schedule/step churn that dominates simulation runs.
const ARITY: usize = 4;

struct Slot<E> {
    /// Bumped on every free; stale [`EventId`]s fail the generation check.
    gen: u32,
    /// Position in `heap`, or [`NOT_QUEUED`].
    heap_pos: u32,
    payload: Option<E>,
}

/// One heap entry. The ordering key lives here, not in the slot, so a
/// sift touches only the contiguous heap array — no pointer chase into
/// the slab per comparison.
#[derive(Clone, Copy)]
struct HeapEntry {
    /// Delivery time.
    at: Time,
    /// FIFO tie-break.
    seq: u64,
    /// Backing slab slot (payload + generation).
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn before(self, other: HeapEntry) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// A deterministic discrete-event scheduler.
///
/// See the [module documentation](self) for the driving pattern and
/// the data-structure notes. Scheduling and delivering are O(log n)
/// with no allocation beyond slab growth; cancelling is O(log n) with
/// no hashing; [`peek_time`](Engine::peek_time) is O(1).
pub struct Engine<E> {
    now: Time,
    slots: Vec<Slot<E>>,
    /// Indices of free slots, reused LIFO.
    free: Vec<u32>,
    /// 4-ary min-heap keyed by `(at, seq)`, with inline keys.
    heap: Vec<HeapEntry>,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`Time::ZERO`] and no events.
    pub fn new() -> Engine<E> {
        Engine {
            now: Time::ZERO,
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Creates an engine with slab and heap capacity for `n` pending
    /// events, avoiding growth reallocations during warm-up.
    pub fn with_capacity(n: usize) -> Engine<E> {
        Engine {
            now: Time::ZERO,
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            heap: Vec::with_capacity(n),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// delivered event (or [`Time::ZERO`] before the first).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of live events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    ///
    /// Returns a handle usable with [`cancel`](Engine::cancel).
    pub fn schedule(&mut self, delay: Dur, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("event scheduled past the end of representable time");
        self.schedule_at(at, payload)
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Engine::now): the
    /// simulation cannot deliver events into its own past.
    pub fn schedule_at(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, payload)
    }

    /// Schedules `payload` at `at` with a **caller-supplied tie-break
    /// key** instead of the engine's FIFO sequence number.
    ///
    /// Same-instant events are delivered in ascending key order, no
    /// matter in which order (or from which engine-feeding thread) they
    /// were inserted. This is the primitive behind sharded execution:
    /// when every event carries a key that is intrinsic to its *source
    /// component* (not to the scheduling order), a partitioned run pops
    /// the exact same sequence as a sequential one.
    ///
    /// Keys must be unique per instant across the whole simulation; the
    /// world derives them as `(source component << 40) | per-source
    /// counter`. Do not mix keyed and unkeyed scheduling in one engine —
    /// FIFO sequence numbers and component keys order against each
    /// other meaninglessly.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Engine::now).
    pub fn schedule_at_keyed(&mut self, at: Time, key: u64, payload: E) -> EventId {
        self.insert(at, key, payload)
    }

    fn insert(&mut self, at: Time, seq: u64, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past ({at} < {})", self.now);
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                debug_assert!(s.heap_pos == NOT_QUEUED && s.payload.is_none());
                s.payload = Some(payload);
                i
            }
            None => {
                let i = self.slots.len();
                assert!(i < NOT_QUEUED as usize, "event slab exhausted");
                self.slots.push(Slot { gen: 0, heap_pos: NOT_QUEUED, payload: Some(payload) });
                i as u32
            }
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { at, seq, slot });
        self.slots[slot as usize].heap_pos = pos as u32;
        self.sift_up(pos);
        EventId::pack(slot, self.slots[slot as usize].gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will not be
    /// delivered), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        let Some(s) = self.slots.get(slot as usize) else { return false };
        if s.gen != id.gen() || s.heap_pos == NOT_QUEUED {
            return false; // already fired, already cancelled, or unknown
        }
        let pos = s.heap_pos as usize;
        self.remove_at(pos);
        self.release(slot);
        true
    }

    /// Delivers the next event: advances the clock to its timestamp and
    /// returns its payload, or `None` if the queue is empty.
    pub fn step(&mut self) -> Option<E> {
        let &root = self.heap.first()?;
        debug_assert!(root.at >= self.now);
        self.remove_at(0);
        self.now = root.at;
        let payload =
            self.slots[root.slot as usize].payload.take().expect("queued slot has a payload");
        self.release(root.slot);
        self.delivered += 1;
        Some(payload)
    }

    /// Delivers **every** event sharing the earliest pending timestamp:
    /// advances the clock to it, appends the payloads to `out` in FIFO
    /// order, and returns the timestamp — or `None` (leaving `out`
    /// untouched) if the queue is empty.
    ///
    /// This is the bulk form of [`step`](Engine::step) for drivers that
    /// drain one simulated instant at a time (e.g. one 70 ns HUB cycle):
    /// one call replaces a peek/compare/pop cycle per event. Events
    /// scheduled *at the returned timestamp while the batch is being
    /// processed* are not lost — they form the next batch, preserving
    /// global FIFO order (their sequence numbers are higher than
    /// everything already popped).
    ///
    /// Note that the popped events are committed for delivery:
    /// [`cancel`](Engine::cancel) on one of them returns `false` once
    /// this call returns. Callers that interleave cancellation with
    /// batch draining must filter stale events themselves (the world
    /// keeps its timer table for exactly this).
    pub fn step_batch(&mut self, out: &mut Vec<E>) -> Option<Time> {
        let at = self.heap.first()?.at;
        self.now = at;
        while let Some(&top) = self.heap.first() {
            if top.at != at {
                break;
            }
            self.remove_at(0);
            let payload =
                self.slots[top.slot as usize].payload.take().expect("queued slot has a payload");
            self.release(top.slot);
            self.delivered += 1;
            out.push(payload);
        }
        Some(at)
    }

    /// The timestamp of the next live event, if any, without delivering
    /// it. O(1): the heap root is always live.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| e.at)
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Used by drivers that poll in fixed time slices: when every
    /// pending event lies beyond the slice, the clock still moves.
    ///
    /// # Panics
    ///
    /// Panics if a live event is scheduled before `t` — delivering it
    /// late would reorder the simulation.
    pub fn advance_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        if let Some(next) = self.peek_time() {
            assert!(next >= t, "cannot advance past a pending event at {next}");
        }
        self.now = t;
    }

    /// Runs `handler` on every event until the queue drains or the clock
    /// would pass `deadline`; events after the deadline stay queued.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until<F>(&mut self, deadline: Time, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        let mut n = 0;
        while let Some(at) = self.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.step().expect("peek_time saw a live event");
            handler(self, ev);
            n += 1;
        }
        if self.now < deadline && self.is_idle() {
            self.now = deadline;
        }
        n
    }

    /// Runs `handler` until no events remain.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_until(Time::MAX, handler)
    }

    // ---------------------------------------------------------------
    // Indexed-heap internals
    // ---------------------------------------------------------------

    #[inline]
    fn place(&mut self, pos: usize, entry: HeapEntry) {
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].heap_pos = pos as u32;
    }

    fn sift_up(&mut self, mut pos: usize) {
        let moving = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if moving.before(self.heap[parent]) {
                let p = self.heap[parent];
                self.place(pos, p);
                pos = parent;
            } else {
                break;
            }
        }
        self.place(pos, moving);
    }

    fn sift_down(&mut self, mut pos: usize) {
        let moving = self.heap[pos];
        loop {
            let first = pos * ARITY + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + ARITY).min(self.heap.len());
            let mut best = first;
            for c in first + 1..last {
                if self.heap[c].before(self.heap[best]) {
                    best = c;
                }
            }
            if self.heap[best].before(moving) {
                let b = self.heap[best];
                self.place(pos, b);
                pos = best;
            } else {
                break;
            }
        }
        self.place(pos, moving);
    }

    /// Removes the heap entry at `pos`, restoring the heap invariant.
    /// The removed slot's `heap_pos` is left dangling; the caller frees
    /// or repurposes the slot immediately.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.pop().expect("remove_at on empty heap");
        if pos == self.heap.len() {
            return; // removed the tail entry
        }
        self.place(pos, last);
        // The moved tail entry may order before or after its new
        // neighbourhood; one direction will be a no-op.
        self.sift_down(pos);
        if self.slots[last.slot as usize].heap_pos == pos as u32 {
            self.sift_up(pos);
        }
    }

    /// Returns `slot` to the freelist with a bumped generation.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.payload = None;
        s.heap_pos = NOT_QUEUED;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(30), 3);
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(20), 2);
        assert_eq!(eng.step(), Some(1));
        assert_eq!(eng.now(), Time::from_nanos(10));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.step(), Some(3));
        assert_eq!(eng.step(), None);
        assert_eq!(eng.events_delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(Dur::from_nanos(5), "first");
        eng.schedule(Dur::from_nanos(5), "second");
        eng.schedule(Dur::from_nanos(5), "third");
        assert_eq!(eng.step(), Some("first"));
        assert_eq!(eng.step(), Some("second"));
        assert_eq!(eng.step(), Some("third"));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        let b = eng.schedule(Dur::from_nanos(2), 2);
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double cancel reports false");
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.step(), Some(2));
        assert!(!eng.cancel(b), "cancelling a fired event reports false");
    }

    #[test]
    fn schedule_during_step() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 0);
        let mut seen = Vec::new();
        eng.run_to_completion(|eng, ev| {
            seen.push((eng.now().nanos(), ev));
            if ev < 3 {
                eng.schedule(Dur::from_nanos(10), ev + 1);
            }
        });
        assert_eq!(seen, vec![(10, 0), (20, 1), (30, 2), (40, 3)]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(100), 2);
        let mut seen = Vec::new();
        let n = eng.run_until(Time::from_nanos(50), |_, ev| seen.push(ev));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        assert_eq!(eng.pending(), 1);
        // Clock does not jump to the deadline while events remain queued.
        assert_eq!(eng.now(), Time::from_nanos(10));
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut eng: Engine<u32> = Engine::new();
        eng.run_until(Time::from_micros(5), |_, _| {});
        assert_eq!(eng.now(), Time::from_micros(5));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.step();
        eng.schedule_at(Time::from_nanos(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        eng.schedule(Dur::from_nanos(9), 2);
        eng.cancel(a);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(9)));
    }

    #[test]
    fn zero_delay_fires_at_now() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(7), 1);
        eng.step();
        eng.schedule(Dur::ZERO, 2);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(7)));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.now(), Time::from_nanos(7));
    }

    #[test]
    fn event_ids_are_never_reused() {
        // Slots are recycled aggressively; the generation tag must keep
        // every handle distinct anyway.
        let mut eng: Engine<u32> = Engine::new();
        let mut seen = std::collections::HashSet::new();
        for round in 0..100 {
            let id = eng.schedule(Dur::from_nanos(1), round);
            assert!(seen.insert(id), "EventId reused at round {round}");
            if round % 2 == 0 {
                assert_eq!(eng.step(), Some(round));
            } else {
                assert!(eng.cancel(id));
            }
        }
    }

    #[test]
    fn stale_handles_never_cancel_a_successor() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        assert!(eng.cancel(a));
        // The slot is recycled for b; the stale handle must not touch it.
        let _b = eng.schedule(Dur::from_nanos(2), 2);
        assert!(!eng.cancel(a));
        assert_eq!(eng.step(), Some(2));
    }

    /// Satellite regression: the seed engine eagerly tombstone-collected
    /// on every cancel; the indexed heap must keep the cheap invariants
    /// — `peek_time` always reflects the earliest *live* event and FIFO
    /// tie-break survives arbitrary cancel/schedule interleaving.
    #[test]
    fn interleaved_cancel_schedule_preserves_peek_and_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        // Three ties at t=10 with cancellations punched into the middle,
        // plus earlier events cancelled before and after scheduling ties.
        let early = eng.schedule(Dur::from_nanos(5), 100);
        let t1 = eng.schedule(Dur::from_nanos(10), 1);
        let t2 = eng.schedule(Dur::from_nanos(10), 2);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(5)));
        assert!(eng.cancel(early));
        // Cancelling the front immediately re-exposes the tie group.
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(10)));
        let t3 = eng.schedule(Dur::from_nanos(10), 3);
        assert!(eng.cancel(t2));
        let t4 = eng.schedule(Dur::from_nanos(10), 4);
        let _ = (t1, t3, t4);
        // FIFO among survivors of the tie: 1, then 3, then 4.
        assert_eq!(eng.step(), Some(1));
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(10)));
        assert_eq!(eng.step(), Some(3));
        assert_eq!(eng.step(), Some(4));
        assert_eq!(eng.step(), None);
        assert!(eng.is_idle());
    }

    #[test]
    fn cancel_deep_in_heap_keeps_order() {
        // Cancel entries at every depth of the 4-ary heap and check the
        // survivors still come out sorted.
        let mut eng: Engine<u64> = Engine::new();
        let mut ids = Vec::new();
        for i in 0..64u64 {
            // Scatter times so the heap has structure.
            let t = (i * 37) % 101 + 1;
            ids.push((eng.schedule(Dur::from_nanos(t), t), i));
        }
        for (i, &(id, _)) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(eng.cancel(id));
            }
        }
        let mut out = Vec::new();
        while let Some(t) = eng.step() {
            out.push(t);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "cancellation corrupted heap order");
        assert_eq!(out.len(), 64 - 64usize.div_ceil(3));
    }

    #[test]
    fn step_batch_drains_one_instant_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(10), 2);
        eng.schedule(Dur::from_nanos(10), 3);
        eng.schedule(Dur::from_nanos(20), 4);
        let mut out = Vec::new();
        assert_eq!(eng.step_batch(&mut out), Some(Time::from_nanos(10)));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(eng.now(), Time::from_nanos(10));
        assert_eq!(eng.pending(), 1);
        out.clear();
        assert_eq!(eng.step_batch(&mut out), Some(Time::from_nanos(20)));
        assert_eq!(out, vec![4]);
        out.clear();
        assert_eq!(eng.step_batch(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn step_batch_matches_step_by_step() {
        // The batched and per-event drains must produce identical
        // delivery sequences, including same-instant reschedules.
        let build = || {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..200u64 {
                eng.schedule(Dur::from_nanos((i * 13) % 23), i);
            }
            eng
        };
        let mut a = build();
        let mut by_step = Vec::new();
        while let Some(ev) = a.step() {
            by_step.push((a.now(), ev));
        }
        let mut b = build();
        let mut by_batch = Vec::new();
        let mut buf = Vec::new();
        while let Some(at) = b.step_batch(&mut buf) {
            by_batch.extend(buf.drain(..).map(|ev| (at, ev)));
        }
        assert_eq!(by_step, by_batch);
        assert_eq!(a.events_delivered(), b.events_delivered());
    }
}
