//! The discrete-event simulation engine.
//!
//! [`Engine`] is a priority queue of timestamped events plus a clock.
//! It is generic over the event payload type `E`; the system-integration
//! layer defines one event enum for the whole world and drives the loop:
//!
//! ```
//! use nectar_sim::engine::Engine;
//! use nectar_sim::time::{Dur, Time};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut eng = Engine::new();
//! eng.schedule(Dur::from_nanos(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some(ev) = eng.step() {
//!     match ev {
//!         Ev::Ping => {
//!             eng.schedule(Dur::from_nanos(5), Ev::Pong);
//!             log.push((eng.now(), "ping"));
//!         }
//!         Ev::Pong => log.push((eng.now(), "pong")),
//!     }
//! }
//! assert_eq!(log, vec![(Time::from_nanos(10), "ping"), (Time::from_nanos(15), "pong")]);
//! ```
//!
//! Determinism: events that share a timestamp are delivered in the order
//! they were scheduled (FIFO tie-break on a sequence number), so a run
//! is a pure function of its inputs and RNG seed.
//!
//! # Implementation
//!
//! Every operation on the hot path is hash-free and allocation-free
//! (amortised): events live in a **slab** of generation-tagged slots
//! reached directly from the [`EventId`], and ordering comes from an
//! **indexed 4-ary min-heap**.
//!
//! The layout is struct-of-arrays on both sides of the slot boundary:
//!
//! - The heap is two parallel arrays: `heap_keys` holds the dense
//!   16-byte `(time, seq)` ordering keys and `heap_slots` the matching
//!   slab indices. A sift's comparison loop reads `heap_keys` only — a
//!   64-byte cache line carries four keys, exactly one 4-ary node, so
//!   the best-child scan of a level is a single line.
//! - The slab is split into `meta` (8-byte generation + heap-position
//!   records, rewritten on every heap move) and `payloads` (the fat
//!   event enums, touched only at schedule and delivery). Sifting a
//!   deep heap no longer drags payload-sized strides through the cache.
//!
//! Each slot's `meta` remembers its heap position, so
//! [`cancel`](Engine::cancel) removes the entry from the middle of the
//! heap in O(log n) — there are no tombstones to garbage-collect and
//! the heap never holds dead entries, which keeps
//! [`peek_time`](Engine::peek_time) O(1) unconditionally. Freed slots
//! go on a freelist and are reused with a bumped generation, so stale
//! handles are rejected without any lookup structure.
//!
//! For drivers that process many events per simulated instant (a HUB
//! drains an entire 70 ns cycle at once), [`step_batch`](Engine::step_batch)
//! pops every event sharing the earliest timestamp in one call,
//! avoiding a peek/compare per event.

use crate::time::{Dur, Time};
use std::fmt;

/// Handle to a scheduled event, usable to [`Engine::cancel`] it.
///
/// Handles are unique over the lifetime of an engine and never reused:
/// a handle is a slot index plus the slot's generation at scheduling
/// time, and the generation is bumped every time the slot is freed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Sentinel heap position for slots not currently queued.
const NOT_QUEUED: u32 = u32::MAX;

/// Heap arity. 4 trades a slightly deeper comparison fan-out per level
/// for half the depth of a binary heap — and with the SoA key array,
/// one node's four 16-byte keys are exactly one cache line, so the
/// per-level best-child scan never crosses a line boundary when the
/// array is line-aligned.
const ARITY: usize = 4;

/// Per-slot bookkeeping, split off from the payload so heap moves
/// rewrite 8-byte records instead of payload-sized ones.
#[derive(Clone, Copy)]
struct SlotMeta {
    /// Bumped on every free; stale [`EventId`]s fail the generation check.
    gen: u32,
    /// Position in the heap arrays, or [`NOT_QUEUED`].
    heap_pos: u32,
}

/// The dense ordering key for one heap entry. Comparisons in the sift
/// loops touch only the contiguous `heap_keys` array — no pointer chase
/// into the slab, no payload bytes pulled through the cache.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    /// Delivery time.
    at: Time,
    /// FIFO tie-break.
    seq: u64,
}

/// A deterministic discrete-event scheduler.
///
/// See the [module documentation](self) for the driving pattern and
/// the data-structure notes. Scheduling and delivering are O(log n)
/// with no allocation beyond slab growth; cancelling is O(log n) with
/// no hashing; [`peek_time`](Engine::peek_time) is O(1).
pub struct Engine<E> {
    now: Time,
    /// Slab bookkeeping, parallel to `payloads`.
    meta: Vec<SlotMeta>,
    /// Slab payloads, parallel to `meta`.
    payloads: Vec<Option<E>>,
    /// Indices of free slots, reused LIFO.
    free: Vec<u32>,
    /// 4-ary min-heap ordering keys, parallel to `heap_slots`.
    heap_keys: Vec<HeapKey>,
    /// Slab slot index per heap entry, parallel to `heap_keys`.
    heap_slots: Vec<u32>,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap_keys.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`Time::ZERO`] and no events.
    pub fn new() -> Engine<E> {
        Engine {
            now: Time::ZERO,
            meta: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            heap_keys: Vec::new(),
            heap_slots: Vec::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Creates an engine with slab and heap capacity for `n` pending
    /// events, avoiding growth reallocations during warm-up.
    pub fn with_capacity(n: usize) -> Engine<E> {
        Engine {
            now: Time::ZERO,
            meta: Vec::with_capacity(n),
            payloads: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            heap_keys: Vec::with_capacity(n),
            heap_slots: Vec::with_capacity(n),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// delivered event (or [`Time::ZERO`] before the first).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of live events still pending.
    pub fn pending(&self) -> usize {
        self.heap_keys.len()
    }

    /// `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.heap_keys.is_empty()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    ///
    /// Returns a handle usable with [`cancel`](Engine::cancel).
    pub fn schedule(&mut self, delay: Dur, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("event scheduled past the end of representable time");
        self.schedule_at(at, payload)
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Engine::now): the
    /// simulation cannot deliver events into its own past.
    pub fn schedule_at(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, payload)
    }

    /// Schedules `payload` at `at` with a **caller-supplied tie-break
    /// key** instead of the engine's FIFO sequence number.
    ///
    /// Same-instant events are delivered in ascending key order, no
    /// matter in which order (or from which engine-feeding thread) they
    /// were inserted. This is the primitive behind sharded execution:
    /// when every event carries a key that is intrinsic to its *source
    /// component* (not to the scheduling order), a partitioned run pops
    /// the exact same sequence as a sequential one.
    ///
    /// Keys must be unique per instant across the whole simulation; the
    /// world derives them as `(source component << 40) | per-source
    /// counter`. Do not mix keyed and unkeyed scheduling in one engine —
    /// FIFO sequence numbers and component keys order against each
    /// other meaninglessly.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Engine::now).
    pub fn schedule_at_keyed(&mut self, at: Time, key: u64, payload: E) -> EventId {
        self.insert(at, key, payload)
    }

    fn insert(&mut self, at: Time, seq: u64, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past ({at} < {})", self.now);
        let slot = match self.free.pop() {
            Some(i) => {
                debug_assert!(
                    self.meta[i as usize].heap_pos == NOT_QUEUED
                        && self.payloads[i as usize].is_none()
                );
                self.payloads[i as usize] = Some(payload);
                i
            }
            None => {
                let i = self.meta.len();
                assert!(i < NOT_QUEUED as usize, "event slab exhausted");
                self.meta.push(SlotMeta { gen: 0, heap_pos: NOT_QUEUED });
                self.payloads.push(Some(payload));
                i as u32
            }
        };
        let pos = self.heap_keys.len();
        self.heap_keys.push(HeapKey { at, seq });
        self.heap_slots.push(slot);
        self.meta[slot as usize].heap_pos = pos as u32;
        self.sift_up(pos);
        EventId::pack(slot, self.meta[slot as usize].gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will not be
    /// delivered), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        let Some(&m) = self.meta.get(slot as usize) else { return false };
        if m.gen != id.gen() || m.heap_pos == NOT_QUEUED {
            return false; // already fired, already cancelled, or unknown
        }
        self.remove_at(m.heap_pos as usize);
        self.release(slot);
        true
    }

    /// Delivers the next event: advances the clock to its timestamp and
    /// returns its payload, or `None` if the queue is empty.
    pub fn step(&mut self) -> Option<E> {
        let &root = self.heap_keys.first()?;
        debug_assert!(root.at >= self.now);
        let slot = self.heap_slots[0];
        self.remove_at(0);
        self.now = root.at;
        let payload = self.payloads[slot as usize].take().expect("queued slot has a payload");
        self.release(slot);
        self.delivered += 1;
        Some(payload)
    }

    /// Delivers **every** event sharing the earliest pending timestamp:
    /// advances the clock to it, appends the payloads to `out` in FIFO
    /// order, and returns the timestamp — or `None` (leaving `out`
    /// untouched) if the queue is empty.
    ///
    /// This is the bulk form of [`step`](Engine::step) for drivers that
    /// drain one simulated instant at a time (e.g. one 70 ns HUB cycle):
    /// one call replaces a peek/compare/pop cycle per event. Events
    /// scheduled *at the returned timestamp while the batch is being
    /// processed* are not lost — they form the next batch, preserving
    /// global FIFO order (their sequence numbers are higher than
    /// everything already popped).
    ///
    /// Note that the popped events are committed for delivery:
    /// [`cancel`](Engine::cancel) on one of them returns `false` once
    /// this call returns. Callers that interleave cancellation with
    /// batch draining must filter stale events themselves (the world
    /// keeps its timer table for exactly this).
    pub fn step_batch(&mut self, out: &mut Vec<E>) -> Option<Time> {
        let at = self.heap_keys.first()?.at;
        self.now = at;
        while let Some(&top) = self.heap_keys.first() {
            if top.at != at {
                break;
            }
            let slot = self.heap_slots[0];
            self.remove_at(0);
            let payload = self.payloads[slot as usize].take().expect("queued slot has a payload");
            self.release(slot);
            self.delivered += 1;
            out.push(payload);
        }
        Some(at)
    }

    /// The timestamp of the next live event, if any, without delivering
    /// it. O(1): the heap root is always live.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap_keys.first().map(|k| k.at)
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Used by drivers that poll in fixed time slices: when every
    /// pending event lies beyond the slice, the clock still moves.
    ///
    /// # Panics
    ///
    /// Panics if a live event is scheduled before `t` — delivering it
    /// late would reorder the simulation.
    pub fn advance_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        if let Some(next) = self.peek_time() {
            assert!(next >= t, "cannot advance past a pending event at {next}");
        }
        self.now = t;
    }

    /// Removes every pending event whose payload matches `pred` and
    /// returns them as `(time, key, payload)` triples in delivery
    /// order. Non-matching events and the clock are untouched.
    ///
    /// This is the migration primitive behind adaptive shard
    /// rebalancing: at a window barrier the donor shard extracts the
    /// pending events owned by a migrating component, and the receiving
    /// shard re-inserts them with
    /// [`schedule_at_keyed`](Engine::schedule_at_keyed), preserving
    /// both timestamps and tie-break keys — the merged event order is
    /// bit-identical to a run that never moved the component.
    ///
    /// Handles ([`EventId`]s) to extracted events are invalidated in
    /// the donor engine; callers that track handles (timer tables)
    /// rebuild them from the re-inserted events.
    pub fn extract_if<F>(&mut self, mut pred: F) -> Vec<(Time, u64, E)>
    where
        F: FnMut(&E) -> bool,
    {
        let mut matched: Vec<u32> = Vec::new();
        for &slot in &self.heap_slots {
            let payload = self.payloads[slot as usize].as_ref().expect("queued slot has a payload");
            if pred(payload) {
                matched.push(slot);
            }
        }
        let mut out = Vec::with_capacity(matched.len());
        for slot in matched {
            let pos = self.meta[slot as usize].heap_pos as usize;
            let key = self.heap_keys[pos];
            self.remove_at(pos);
            let payload = self.payloads[slot as usize].take().expect("queued slot has a payload");
            self.release(slot);
            out.push((key.at, key.seq, payload));
        }
        out.sort_by_key(|e| (e.0, e.1));
        out
    }

    /// Runs `handler` on every event until the queue drains or the clock
    /// would pass `deadline`; events after the deadline stay queued.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until<F>(&mut self, deadline: Time, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        let mut n = 0;
        while let Some(at) = self.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.step().expect("peek_time saw a live event");
            handler(self, ev);
            n += 1;
        }
        if self.now < deadline && self.is_idle() {
            self.now = deadline;
        }
        n
    }

    /// Runs `handler` until no events remain.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_until(Time::MAX, handler)
    }

    // ---------------------------------------------------------------
    // Indexed-heap internals
    // ---------------------------------------------------------------

    #[inline]
    fn place(&mut self, pos: usize, key: HeapKey, slot: u32) {
        self.heap_keys[pos] = key;
        self.heap_slots[pos] = slot;
        self.meta[slot as usize].heap_pos = pos as u32;
    }

    fn sift_up(&mut self, mut pos: usize) {
        let moving_key = self.heap_keys[pos];
        let moving_slot = self.heap_slots[pos];
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if moving_key < self.heap_keys[parent] {
                let (k, s) = (self.heap_keys[parent], self.heap_slots[parent]);
                self.place(pos, k, s);
                pos = parent;
            } else {
                break;
            }
        }
        self.place(pos, moving_key, moving_slot);
    }

    fn sift_down(&mut self, mut pos: usize) {
        let moving_key = self.heap_keys[pos];
        let moving_slot = self.heap_slots[pos];
        loop {
            let first = pos * ARITY + 1;
            if first >= self.heap_keys.len() {
                break;
            }
            let last = (first + ARITY).min(self.heap_keys.len());
            let mut best = first;
            for c in first + 1..last {
                if self.heap_keys[c] < self.heap_keys[best] {
                    best = c;
                }
            }
            if self.heap_keys[best] < moving_key {
                let (k, s) = (self.heap_keys[best], self.heap_slots[best]);
                self.place(pos, k, s);
                pos = best;
            } else {
                break;
            }
        }
        self.place(pos, moving_key, moving_slot);
    }

    /// Removes the heap entry at `pos`, restoring the heap invariant.
    /// The removed slot's `heap_pos` is left dangling; the caller frees
    /// or repurposes the slot immediately.
    fn remove_at(&mut self, pos: usize) {
        let last_key = self.heap_keys.pop().expect("remove_at on empty heap");
        let last_slot = self.heap_slots.pop().expect("heap arrays in sync");
        if pos == self.heap_keys.len() {
            return; // removed the tail entry
        }
        self.place(pos, last_key, last_slot);
        // The moved tail entry may order before or after its new
        // neighbourhood; one direction will be a no-op.
        self.sift_down(pos);
        if self.meta[last_slot as usize].heap_pos == pos as u32 {
            self.sift_up(pos);
        }
    }

    /// Returns `slot` to the freelist with a bumped generation.
    fn release(&mut self, slot: u32) {
        self.payloads[slot as usize] = None;
        let m = &mut self.meta[slot as usize];
        m.heap_pos = NOT_QUEUED;
        m.gen = m.gen.wrapping_add(1);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(30), 3);
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(20), 2);
        assert_eq!(eng.step(), Some(1));
        assert_eq!(eng.now(), Time::from_nanos(10));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.step(), Some(3));
        assert_eq!(eng.step(), None);
        assert_eq!(eng.events_delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(Dur::from_nanos(5), "first");
        eng.schedule(Dur::from_nanos(5), "second");
        eng.schedule(Dur::from_nanos(5), "third");
        assert_eq!(eng.step(), Some("first"));
        assert_eq!(eng.step(), Some("second"));
        assert_eq!(eng.step(), Some("third"));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        let b = eng.schedule(Dur::from_nanos(2), 2);
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double cancel reports false");
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.step(), Some(2));
        assert!(!eng.cancel(b), "cancelling a fired event reports false");
    }

    #[test]
    fn schedule_during_step() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 0);
        let mut seen = Vec::new();
        eng.run_to_completion(|eng, ev| {
            seen.push((eng.now().nanos(), ev));
            if ev < 3 {
                eng.schedule(Dur::from_nanos(10), ev + 1);
            }
        });
        assert_eq!(seen, vec![(10, 0), (20, 1), (30, 2), (40, 3)]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(100), 2);
        let mut seen = Vec::new();
        let n = eng.run_until(Time::from_nanos(50), |_, ev| seen.push(ev));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        assert_eq!(eng.pending(), 1);
        // Clock does not jump to the deadline while events remain queued.
        assert_eq!(eng.now(), Time::from_nanos(10));
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut eng: Engine<u32> = Engine::new();
        eng.run_until(Time::from_micros(5), |_, _| {});
        assert_eq!(eng.now(), Time::from_micros(5));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.step();
        eng.schedule_at(Time::from_nanos(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        eng.schedule(Dur::from_nanos(9), 2);
        eng.cancel(a);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(9)));
    }

    #[test]
    fn zero_delay_fires_at_now() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(7), 1);
        eng.step();
        eng.schedule(Dur::ZERO, 2);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(7)));
        assert_eq!(eng.step(), Some(2));
        assert_eq!(eng.now(), Time::from_nanos(7));
    }

    #[test]
    fn event_ids_are_never_reused() {
        // Slots are recycled aggressively; the generation tag must keep
        // every handle distinct anyway.
        let mut eng: Engine<u32> = Engine::new();
        let mut seen = std::collections::HashSet::new();
        for round in 0..100 {
            let id = eng.schedule(Dur::from_nanos(1), round);
            assert!(seen.insert(id), "EventId reused at round {round}");
            if round % 2 == 0 {
                assert_eq!(eng.step(), Some(round));
            } else {
                assert!(eng.cancel(id));
            }
        }
    }

    #[test]
    fn stale_handles_never_cancel_a_successor() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule(Dur::from_nanos(1), 1);
        assert!(eng.cancel(a));
        // The slot is recycled for b; the stale handle must not touch it.
        let _b = eng.schedule(Dur::from_nanos(2), 2);
        assert!(!eng.cancel(a));
        assert_eq!(eng.step(), Some(2));
    }

    /// Satellite regression: the seed engine eagerly tombstone-collected
    /// on every cancel; the indexed heap must keep the cheap invariants
    /// — `peek_time` always reflects the earliest *live* event and FIFO
    /// tie-break survives arbitrary cancel/schedule interleaving.
    #[test]
    fn interleaved_cancel_schedule_preserves_peek_and_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        // Three ties at t=10 with cancellations punched into the middle,
        // plus earlier events cancelled before and after scheduling ties.
        let early = eng.schedule(Dur::from_nanos(5), 100);
        let t1 = eng.schedule(Dur::from_nanos(10), 1);
        let t2 = eng.schedule(Dur::from_nanos(10), 2);
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(5)));
        assert!(eng.cancel(early));
        // Cancelling the front immediately re-exposes the tie group.
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(10)));
        let t3 = eng.schedule(Dur::from_nanos(10), 3);
        assert!(eng.cancel(t2));
        let t4 = eng.schedule(Dur::from_nanos(10), 4);
        let _ = (t1, t3, t4);
        // FIFO among survivors of the tie: 1, then 3, then 4.
        assert_eq!(eng.step(), Some(1));
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(10)));
        assert_eq!(eng.step(), Some(3));
        assert_eq!(eng.step(), Some(4));
        assert_eq!(eng.step(), None);
        assert!(eng.is_idle());
    }

    #[test]
    fn cancel_deep_in_heap_keeps_order() {
        // Cancel entries at every depth of the 4-ary heap and check the
        // survivors still come out sorted.
        let mut eng: Engine<u64> = Engine::new();
        let mut ids = Vec::new();
        for i in 0..64u64 {
            // Scatter times so the heap has structure.
            let t = (i * 37) % 101 + 1;
            ids.push((eng.schedule(Dur::from_nanos(t), t), i));
        }
        for (i, &(id, _)) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(eng.cancel(id));
            }
        }
        let mut out = Vec::new();
        while let Some(t) = eng.step() {
            out.push(t);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "cancellation corrupted heap order");
        assert_eq!(out.len(), 64 - 64usize.div_ceil(3));
    }

    #[test]
    fn step_batch_drains_one_instant_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(10), 1);
        eng.schedule(Dur::from_nanos(10), 2);
        eng.schedule(Dur::from_nanos(10), 3);
        eng.schedule(Dur::from_nanos(20), 4);
        let mut out = Vec::new();
        assert_eq!(eng.step_batch(&mut out), Some(Time::from_nanos(10)));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(eng.now(), Time::from_nanos(10));
        assert_eq!(eng.pending(), 1);
        out.clear();
        assert_eq!(eng.step_batch(&mut out), Some(Time::from_nanos(20)));
        assert_eq!(out, vec![4]);
        out.clear();
        assert_eq!(eng.step_batch(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn step_batch_matches_step_by_step() {
        // The batched and per-event drains must produce identical
        // delivery sequences, including same-instant reschedules.
        let build = || {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..200u64 {
                eng.schedule(Dur::from_nanos((i * 13) % 23), i);
            }
            eng
        };
        let mut a = build();
        let mut by_step = Vec::new();
        while let Some(ev) = a.step() {
            by_step.push((a.now(), ev));
        }
        let mut b = build();
        let mut by_batch = Vec::new();
        let mut buf = Vec::new();
        while let Some(at) = b.step_batch(&mut buf) {
            by_batch.extend(buf.drain(..).map(|ev| (at, ev)));
        }
        assert_eq!(by_step, by_batch);
        assert_eq!(a.events_delivered(), b.events_delivered());
    }

    #[test]
    fn extract_if_pulls_matching_events_in_delivery_order() {
        let mut eng: Engine<u64> = Engine::new();
        for i in 0..40u64 {
            // Scattered times, odd/even split; ties inside each class.
            eng.schedule_at(Time::from_nanos((i * 29) % 7 + 1), i);
        }
        let before_pending = eng.pending();
        let odd = eng.extract_if(|&v| v % 2 == 1);
        assert_eq!(odd.len(), 20);
        assert_eq!(eng.pending(), before_pending - 20);
        // Delivery order: sorted by (time, key).
        let keys: Vec<(Time, u64)> = odd.iter().map(|&(at, k, _)| (at, k)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // Survivors are intact and still sorted; reinsertion into a
        // second engine with preserved keys reproduces the original
        // merged order.
        let mut other: Engine<u64> = Engine::new();
        for (at, key, ev) in odd {
            other.schedule_at_keyed(at, key, ev);
        }
        let mut merged = Vec::new();
        loop {
            match (eng.peek_time(), other.peek_time()) {
                (None, None) => break,
                (Some(_), None) => merged.push(eng.step().unwrap()),
                (None, Some(_)) => merged.push(other.step().unwrap()),
                (Some(a), Some(b)) => {
                    // Same-time ties across the two engines cannot be
                    // compared here without keys; the workload avoids
                    // cross-engine ties by construction (odd/even split
                    // shares instants but the test only checks totals).
                    if a <= b {
                        merged.push(eng.step().unwrap());
                    } else {
                        merged.push(other.step().unwrap());
                    }
                }
            }
        }
        assert_eq!(merged.len(), 40);
    }

    #[test]
    fn extract_if_preserves_untouched_events_and_clock() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(Dur::from_nanos(3), 1);
        eng.step();
        eng.schedule(Dur::from_nanos(10), 2);
        let keep = eng.schedule(Dur::from_nanos(5), 3);
        let out = eng.extract_if(|&v| v == 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Time::from_nanos(13));
        assert_eq!(eng.now(), Time::from_nanos(3), "clock must not move");
        assert_eq!(eng.peek_time(), Some(Time::from_nanos(8)));
        assert!(eng.cancel(keep), "surviving handles stay valid");
        assert!(eng.extract_if(|_| true).is_empty());
    }
}
