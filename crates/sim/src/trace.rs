//! Event tracing, modelled on the HUB's plug-in instrumentation board.
//!
//! The prototype HUB backplane accepts an instrumentation board that
//! "can monitor and record events related to the crossbar and its
//! controller" (paper §4.1). [`Trace`] is the software analogue: a
//! bounded ring of timestamped records that components append to when
//! tracing is enabled. Experiments use it to reconstruct command walks
//! (e.g. the Fig. 7 circuit-switching example) and to debug protocol
//! interleavings.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::trace::{Trace, Category};
//! use nectar_sim::time::Time;
//!
//! let mut tr = Trace::with_capacity(8);
//! tr.record(Time::from_nanos(70), Category::Controller, "open P4->P8");
//! assert_eq!(tr.len(), 1);
//! assert!(tr.iter().any(|r| r.message.contains("open")));
//! ```

use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// The subsystem a trace record originated from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Category {
    /// HUB central controller: command execution, retries.
    Controller,
    /// HUB crossbar: connection state changes.
    Crossbar,
    /// HUB or CAB I/O port: symbols entering/leaving queues.
    Port,
    /// CAB DMA controller.
    Dma,
    /// CAB kernel: thread and mailbox activity.
    Kernel,
    /// Datalink protocol.
    Datalink,
    /// Transport protocols.
    Transport,
    /// Node operating-system model.
    Node,
    /// Application / workload level.
    App,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Controller => "ctrl",
            Category::Crossbar => "xbar",
            Category::Port => "port",
            Category::Dma => "dma",
            Category::Kernel => "kern",
            Category::Datalink => "dlink",
            Category::Transport => "trans",
            Category::Node => "node",
            Category::App => "app",
        };
        f.write_str(s)
    }
}

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Simulation time at which the event happened.
    pub at: Time,
    /// Originating subsystem.
    pub category: Category,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// A bounded ring buffer of [`Record`]s.
///
/// When full, the oldest record is dropped — like a logic analyser with
/// a fixed capture depth. Recording is a no-op while disabled, so
/// instrumented hot paths cost one branch in production runs.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<Record>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(4096)
    }
}

impl Trace {
    /// Creates an enabled trace holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Creates a disabled trace with the default capacity (records are
    /// discarded until [`set_enabled`](Trace::set_enabled)).
    pub fn disabled() -> Trace {
        Trace { enabled: false, ..Trace::default() }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if records are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (dropping the oldest if at capacity).
    ///
    /// The message argument is evaluated by the caller even when the
    /// trace is disabled; hot paths that would `format!` should use
    /// [`record_with`](Trace::record_with) instead.
    pub fn record(&mut self, at: Time, category: Category, message: impl Into<String>) {
        self.record_with(at, category, || message.into());
    }

    /// Appends a record, building the message lazily: when the trace
    /// is disabled the closure is never called, so the call site costs
    /// one branch — no formatting, no allocation.
    ///
    /// ```
    /// use nectar_sim::trace::{Trace, Category};
    /// use nectar_sim::time::Time;
    ///
    /// let mut tr = Trace::disabled();
    /// // This format! never runs:
    /// tr.record_with(Time::ZERO, Category::Controller, || format!("open P{}->P{}", 4, 8));
    /// assert!(tr.is_empty());
    /// ```
    pub fn record_with(&mut self, at: Time, category: Category, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Record { at, category, message: message() });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of records lost to capacity since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Records from one subsystem, oldest-to-newest.
    pub fn by_category(&self, category: Category) -> impl Iterator<Item = &Record> {
        self.ring.iter().filter(move |r| r.category == category)
    }

    /// Discards all retained records (the drop counter is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::with_capacity(10);
        tr.record(t(1), Category::Port, "a");
        tr.record(t(2), Category::Port, "b");
        let msgs: Vec<_> = tr.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut tr = Trace::with_capacity(2);
        tr.record(t(1), Category::Port, "a");
        tr.record(t(2), Category::Port, "b");
        tr.record(t(3), Category::Port, "c");
        let msgs: Vec<_> = tr.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["b", "c"]);
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn disabled_discards() {
        let mut tr = Trace::disabled();
        tr.record(t(1), Category::Port, "a");
        assert!(tr.is_empty());
        tr.set_enabled(true);
        tr.record(t(2), Category::Port, "b");
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn filters_by_category() {
        let mut tr = Trace::with_capacity(10);
        tr.record(t(1), Category::Controller, "open");
        tr.record(t(2), Category::Dma, "xfer");
        tr.record(t(3), Category::Controller, "close");
        assert_eq!(tr.by_category(Category::Controller).count(), 2);
        assert_eq!(tr.by_category(Category::Dma).count(), 1);
    }

    #[test]
    fn display_is_informative() {
        let mut tr = Trace::with_capacity(4);
        tr.record(t(700), Category::Controller, "open P3->P8");
        let s = tr.iter().next().unwrap().to_string();
        assert!(s.contains("700 ns") && s.contains("ctrl") && s.contains("open P3->P8"), "{s}");
    }

    #[test]
    fn clear_keeps_drop_count() {
        let mut tr = Trace::with_capacity(1);
        tr.record(t(1), Category::Port, "a");
        tr.record(t(2), Category::Port, "b");
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }
}
