//! # nectar-sim — discrete-event simulation substrate
//!
//! The Nectar paper (ASPLOS 1989) describes a hardware network
//! backplane. This reproduction replaces the hardware with a
//! deterministic nanosecond-resolution discrete-event simulation; this
//! crate is the engine everything else runs on.
//!
//! * [`time`] — [`Time`](time::Time) / [`Dur`](time::Dur) newtypes.
//! * [`units`] — [`Bandwidth`](units::Bandwidth) and transfer-time math.
//! * [`engine`] — the [`Engine`](engine::Engine) event queue.
//! * [`rng`] — seeded, reproducible randomness for workloads.
//! * [`stats`] — counters, sample distributions, throughput meters.
//! * [`trace`] — the software analogue of the HUB instrumentation board.
//! * [`telemetry`] — typed flight-recorder events with causal flight ids.
//! * [`metrics`] — the unified counter/gauge/histogram registry.
//! * [`export`] — Chrome trace-event (Perfetto) JSON rendering.
//! * [`json`] — string escaping and a small parser for export checks.
//! * [`profile`] — host-time profiler + scaling doctor for the
//!   parallel runner (phase spans, straggler attribution, verdicts).
//! * [`analysis`] — `nectar-doctor`: critical-path attribution,
//!   pathology detection, and the perf-regression gate.
//! * [`chaos`] — seeded, replayable fault schedules (loss, bursts,
//!   duplication, reordering, corruption, flaps, port failure).
//! * [`spec`] — hardened shared parsing for the textual spec grammars.
//! * [`workload`] — seeded, replayable traffic programs (open/closed
//!   loops, arrival processes, size distributions, traffic matrices).
//!
//! # Examples
//!
//! A two-event simulation:
//!
//! ```
//! use nectar_sim::prelude::*;
//!
//! let mut eng: Engine<&str> = Engine::new();
//! eng.schedule(Dur::from_nanos(700), "connection established");
//! eng.schedule(Dur::from_nanos(700 + 350), "first byte through hub");
//! let mut events = 0;
//! eng.run_to_completion(|_, _| events += 1);
//! assert_eq!(events, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod engine;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod spec;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod units;
pub mod workload;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::chaos::{ChaosInjector, ChaosSchedule, ChaosStats, ChaosTarget, Clause, Fault};
    pub use crate::engine::{Engine, EventId};
    pub use crate::metrics::{Histogram, MetricsRegistry};
    pub use crate::rng::Rng;
    pub use crate::stats::{Counter, Samples, Throughput, TimeWeighted};
    pub use crate::telemetry::{EventKind, FlightId, Telemetry, TelemetryEvent};
    pub use crate::time::{Dur, Time};
    pub use crate::trace::{Category, Trace};
    pub use crate::units::Bandwidth;
    pub use crate::workload::{WorkloadGen, WorkloadSpec};
}
