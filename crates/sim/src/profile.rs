//! Host-time profiler and scaling doctor: where the wall-clock goes.
//!
//! Everything else in this crate measures *simulated* time — the
//! nanoseconds the modeled Nectar HUB takes. This module measures the
//! *host*: how long each shard worker of a parallel run actually spends
//! stepping its engine, filling outboxes, draining the exchange grid,
//! and waiting at barriers, on which core budget. It is the instrument
//! that turns a flat speedup curve from a mystery into a verdict.
//!
//! Three layers:
//!
//! * [`Profiler`] — a per-thread ring of [`PhaseSpan`]s recorded
//!   against a process-wide monotonic epoch ([`host_now_ns`]). Same
//!   zero-alloc discipline as the telemetry rings: one branch when
//!   disabled, drop-oldest with a `dropped` counter when full.
//! * [`HostProfile`] — the collected tracks (one per shard worker plus
//!   one for the runner's main thread).
//! * [`analyze`] — the **scaling doctor**: per-window straggler
//!   attribution (which shard bounded each window, critical-path share
//!   per shard), parallel efficiency, a Karp–Flatt serial-fraction
//!   estimate, and ranked [`Verdict`]s with evidence windows.
//!
//! Host-time quantities are never part of the bit-compared simulated
//! metrics: runs with the profiler on, off, or streaming must stay
//! bit-identical in everything [`MetricsRegistry`]-shaped.
//!
//! [`MetricsRegistry`]: crate::metrics::MetricsRegistry

use crate::json::json_escape;
use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch every span is stamped against.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call in this process (monotonic, never
/// wall-clock). All profiler tracks share this epoch, so spans from
/// different threads are directly comparable and exportable onto one
/// trace timeline.
pub fn host_now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Number of [`Phase`] variants (array-index bound for breakdowns).
pub const PHASES: usize = 7;

/// A phase of the sharded runner's loop, the unit of host-time
/// attribution. The first four happen on every shard worker each
/// window; the last three happen on the runner's main thread at epoch
/// boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Engine stepping: `World::run_window` over `[T, T+lookahead)`.
    Step,
    /// Producer half of the exchange: swapping filled outboxes into
    /// the grid.
    OutboxFill,
    /// Consumer half of the exchange: draining this shard's column
    /// into its engine.
    ExchangeDrain,
    /// Time spent waiting at a window barrier (both crossings).
    BarrierWait,
    /// Draining every shard's telemetry rings on the main thread.
    TelemetryDrain,
    /// Folding drained telemetry into the streaming doctor.
    StreamFold,
    /// Epoch-boundary rebalance decision and cluster migration.
    Rebalance,
}

impl Phase {
    /// All phases, in breakdown/display order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Step,
        Phase::OutboxFill,
        Phase::ExchangeDrain,
        Phase::BarrierWait,
        Phase::TelemetryDrain,
        Phase::StreamFold,
        Phase::Rebalance,
    ];

    /// Dense index into `[u64; PHASES]` breakdown arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Step => 0,
            Phase::OutboxFill => 1,
            Phase::ExchangeDrain => 2,
            Phase::BarrierWait => 3,
            Phase::TelemetryDrain => 4,
            Phase::StreamFold => 5,
            Phase::Rebalance => 6,
        }
    }

    /// Stable snake_case name (JSON keys, trace slice names).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::OutboxFill => "outbox_fill",
            Phase::ExchangeDrain => "exchange_drain",
            Phase::BarrierWait => "barrier_wait",
            Phase::TelemetryDrain => "telemetry_drain",
            Phase::StreamFold => "stream_fold",
            Phase::Rebalance => "rebalance",
        }
    }
}

/// One scoped span: `phase` ran for `dur_ns` host-nanoseconds starting
/// at `start_ns` (epoch-relative), attributed to window `window`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// What ran.
    pub phase: Phase,
    /// The global window index the work belonged to.
    pub window: u64,
    /// Start, in [`host_now_ns`] nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Default ring capacity per track: 2^17 spans (~4 MiB). At five spans
/// per shard per window that covers ~26k windows before the oldest
/// drop; the analysis skips windows with missing spans and reports the
/// drop count.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 17;

/// A per-thread span ring. Disabled by default: [`begin`] is a single
/// branch and records nothing, so leaving profilers threaded through a
/// hot loop costs nothing measurable. Enabled, recording is one
/// monotonic clock read at each scope edge plus a bounded ring push —
/// no allocation once the ring is warm.
///
/// [`begin`]: Profiler::begin
#[derive(Debug)]
pub struct Profiler {
    ring: VecDeque<PhaseSpan>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::disabled()
    }
}

impl Profiler {
    /// An enabled profiler with the given ring capacity (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Profiler {
        Profiler { ring: VecDeque::new(), capacity: capacity.max(1), dropped: 0, enabled: true }
    }

    /// A disabled profiler (the zero-cost default); enable later with
    /// [`set_enabled`](Profiler::set_enabled). No ring memory is
    /// committed until the first recorded span.
    pub fn disabled() -> Profiler {
        Profiler {
            ring: VecDeque::new(),
            capacity: DEFAULT_SPAN_CAPACITY,
            dropped: 0,
            enabled: false,
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a scope: returns the start stamp to pass to
    /// [`end`](Profiler::end). Returns 0 without reading the clock
    /// when disabled.
    #[inline]
    pub fn begin(&self) -> u64 {
        if self.enabled {
            host_now_ns()
        } else {
            0
        }
    }

    /// Closes a scope opened by [`begin`](Profiler::begin), measuring
    /// the duration from the clock.
    #[inline]
    pub fn end(&mut self, phase: Phase, window: u64, start_ns: u64) {
        if !self.enabled {
            return;
        }
        let dur_ns = host_now_ns().saturating_sub(start_ns);
        self.push(PhaseSpan { phase, window, start_ns, dur_ns });
    }

    /// Closes a scope with an externally measured duration — used for
    /// barrier waits, where the barrier itself reports the waited
    /// nanoseconds and the span must agree exactly with the
    /// `runner.barrier_wait_ns` counters.
    #[inline]
    pub fn end_with(&mut self, phase: Phase, window: u64, start_ns: u64, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        self.push(PhaseSpan { phase, window, start_ns, dur_ns });
    }

    fn push(&mut self, span: PhaseSpan) {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
    }

    /// Recorded spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &PhaseSpan> {
        self.ring.iter()
    }

    /// Spans lost to ring overflow (oldest evicted first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no spans are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The collected profile of one sharded run: one track per shard
/// worker plus one final track for the runner's main thread
/// (telemetry drain, streaming fold, rebalance migration).
#[derive(Clone, Debug)]
pub struct HostProfile {
    /// Worker track count (== shard count).
    pub shards: usize,
    /// `shards + 1` tracks of spans, oldest first; the last is the
    /// main thread.
    pub tracks: Vec<Vec<PhaseSpan>>,
    /// Total spans lost to ring overflow across all tracks.
    pub dropped: u64,
}

impl HostProfile {
    /// The per-shard worker tracks.
    pub fn worker_tracks(&self) -> &[Vec<PhaseSpan>] {
        &self.tracks[..self.shards.min(self.tracks.len())]
    }

    /// The runner main-thread track (empty slice if absent).
    pub fn main_track(&self) -> &[PhaseSpan] {
        self.tracks.get(self.shards).map_or(&[], |t| t.as_slice())
    }

    /// Wall time covered by the recorded spans: latest span end minus
    /// earliest span start, in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for t in &self.tracks {
            for s in t {
                lo = lo.min(s.start_ns);
                hi = hi.max(s.start_ns + s.dur_ns);
            }
        }
        hi.saturating_sub(lo)
    }
}

/// Simulated-side context the scaling doctor uses to *name* causes:
/// how many cores the host offers, and where simulated load lives so
/// an imbalance verdict can point at the hot HUB cluster.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeCtx {
    /// Host cores available to the run.
    pub cores: usize,
    /// Per-HUB simulated-time load attribution
    /// (`World::cluster_weight` summed over shards); may be empty.
    pub cluster_weights: Vec<u64>,
    /// The shard owning each HUB, parallel to `cluster_weights`.
    pub shard_of_hub: Vec<usize>,
}

/// One shard's host-time breakdown.
#[derive(Clone, Debug, Default)]
pub struct ShardBreakdown {
    /// Nanoseconds per [`Phase`], indexed by [`Phase::index`].
    pub phase_ns: [u64; PHASES],
    /// Complete windows this shard's step was the slowest of.
    pub windows_bounded: u64,
    /// This shard's share of the summed per-window critical path
    /// (its bounded windows' max-step time over the total), in 0..=1.
    pub critical_share: f64,
}

/// What the scaling doctor concluded a run was limited by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictKind {
    /// Barrier wait beyond what stragglers explain dominates:
    /// synchronization mechanics, not load.
    BarrierDominated,
    /// Outbox fill + exchange drain dominate: cross-shard traffic is
    /// too dense for the partition.
    ExchangeDominated,
    /// One shard's step time bounds most windows: the partition is
    /// skewed.
    LoadImbalanced,
    /// More shards than cores: waits are timeslice artifacts and no
    /// speedup conclusion is valid.
    Oversubscribed,
    /// No overhead fraction above the attention floor.
    Healthy,
}

impl VerdictKind {
    /// Stable kebab-case name (JSON, human tables).
    pub fn label(self) -> &'static str {
        match self {
            VerdictKind::BarrierDominated => "barrier-dominated",
            VerdictKind::ExchangeDominated => "exchange-dominated",
            VerdictKind::LoadImbalanced => "load-imbalanced",
            VerdictKind::Oversubscribed => "oversubscribed",
            VerdictKind::Healthy => "healthy",
        }
    }
}

/// A ranked conclusion with its supporting evidence.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The conclusion.
    pub kind: VerdictKind,
    /// Ranking score: the overhead fraction of total worker-thread
    /// time this cause explains (oversubscription adds a fixed boost
    /// because it invalidates the other readings).
    pub score: f64,
    /// One-line human explanation with quantities.
    pub detail: String,
    /// Up to five window indices where this cause hurt most.
    pub evidence_windows: Vec<u64>,
}

/// Overhead fraction below which no cause is worth a non-healthy
/// verdict; doubles as the healthy verdict's own score so ranking
/// stays a plain sort.
const HEALTHY_FLOOR: f64 = 0.15;

/// Evidence windows reported per verdict.
const EVIDENCE: usize = 5;

/// The scaling doctor's full report for one run.
#[derive(Clone, Debug)]
pub struct ProfileAnalysis {
    /// Shard worker count.
    pub shards: usize,
    /// Distinct windows observed in the worker tracks.
    pub windows: u64,
    /// Windows where every shard reported a step span (straggler
    /// attribution uses only these).
    pub complete_windows: u64,
    /// Host wall time covered by the profile, nanoseconds.
    pub wall_ns: u64,
    /// Spans lost to ring overflow (nonzero means the oldest windows
    /// are missing from the breakdown).
    pub spans_dropped: u64,
    /// Per-shard phase breakdown and critical-path attribution.
    pub per_shard: Vec<ShardBreakdown>,
    /// Main-thread phase totals (telemetry drain, stream fold,
    /// rebalance), indexed by [`Phase::index`].
    pub main_ns: [u64; PHASES],
    /// Parallel efficiency: summed step time over `shards × wall`.
    pub efficiency: f64,
    /// Karp–Flatt experimentally determined serial fraction
    /// `f = (1/s − 1/p) / (1 − 1/p)` with `s` the estimated speedup;
    /// defined as 0 for one shard.
    pub karp_flatt: f64,
    /// Ranked verdicts, strongest first. Never empty.
    pub verdicts: Vec<Verdict>,
}

impl ProfileAnalysis {
    /// The single strongest verdict.
    pub fn primary(&self) -> &Verdict {
        &self.verdicts[0]
    }

    /// Multi-line human rendering (phase table, efficiency line,
    /// ranked verdicts) — the `report --profile` section body.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str(&format!(
            "host-time profile: {} shard(s), {} windows ({} complete), wall {:.3} ms{}\n",
            self.shards,
            self.windows,
            self.complete_windows,
            ms(self.wall_ns),
            if self.spans_dropped > 0 {
                format!(", {} spans dropped", self.spans_dropped)
            } else {
                String::new()
            }
        ));
        out.push_str(
            "shard      step_ms   outbox_ms  exchange_ms  barrier_ms  bounded  critical\n",
        );
        for (i, b) in self.per_shard.iter().enumerate() {
            out.push_str(&format!(
                "{:<9} {:>9.3} {:>10.3} {:>12.3} {:>11.3} {:>8} {:>8.1}%\n",
                i,
                ms(b.phase_ns[Phase::Step.index()]),
                ms(b.phase_ns[Phase::OutboxFill.index()]),
                ms(b.phase_ns[Phase::ExchangeDrain.index()]),
                ms(b.phase_ns[Phase::BarrierWait.index()]),
                b.windows_bounded,
                b.critical_share * 100.0,
            ));
        }
        let drain = self.main_ns[Phase::TelemetryDrain.index()];
        let fold = self.main_ns[Phase::StreamFold.index()];
        let reb = self.main_ns[Phase::Rebalance.index()];
        if drain + fold + reb > 0 {
            out.push_str(&format!(
                "main       drain {:.3} ms, fold {:.3} ms, rebalance {:.3} ms\n",
                ms(drain),
                ms(fold),
                ms(reb)
            ));
        }
        out.push_str(&format!(
            "parallel efficiency {:.2}, Karp-Flatt serial fraction {:.3}\n",
            self.efficiency, self.karp_flatt
        ));
        let p = self.primary();
        out.push_str(&format!(
            "verdict: {} (score {:.2}) - {}\n",
            p.kind.label(),
            p.score,
            p.detail
        ));
        if !p.evidence_windows.is_empty() {
            let wins: Vec<String> = p.evidence_windows.iter().map(|w| w.to_string()).collect();
            out.push_str(&format!("evidence windows: {}\n", wins.join(", ")));
        }
        if self.verdicts.len() > 1 {
            let rest: Vec<String> = self.verdicts[1..]
                .iter()
                .map(|v| format!("{} ({:.2})", v.kind.label(), v.score))
                .collect();
            out.push_str(&format!("also ranked: {}\n", rest.join(", ")));
        }
        out
    }

    /// Single-line JSON object for `BENCH_sim.json`.
    pub fn to_json(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"shards\": {}, \"windows\": {}, \"complete_windows\": {}, \"wall_ms\": {:.3}, \
             \"spans_dropped\": {}, \"efficiency\": {:.4}, \"karp_flatt\": {:.4}",
            self.shards,
            self.windows,
            self.complete_windows,
            ms(self.wall_ns),
            self.spans_dropped,
            self.efficiency,
            self.karp_flatt
        ));
        out.push_str(", \"per_shard\": [");
        for (i, b) in self.per_shard.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('{');
            for ph in Phase::ALL.iter().take(4) {
                out.push_str(&format!(
                    "\"{}_ms\": {:.3}, ",
                    ph.label(),
                    ms(b.phase_ns[ph.index()])
                ));
            }
            out.push_str(&format!(
                "\"windows_bounded\": {}, \"critical_share\": {:.4}}}",
                b.windows_bounded, b.critical_share
            ));
        }
        out.push_str("], \"main\": {");
        let mains = [Phase::TelemetryDrain, Phase::StreamFold, Phase::Rebalance];
        for (i, ph) in mains.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}_ms\": {:.3}", ph.label(), ms(self.main_ns[ph.index()])));
        }
        out.push('}');
        let p = self.primary();
        let wins: Vec<String> = p.evidence_windows.iter().map(|w| w.to_string()).collect();
        out.push_str(&format!(
            ", \"verdict\": {{\"kind\": \"{}\", \"score\": {:.4}, \"detail\": \"{}\", \
             \"evidence_windows\": [{}]}}",
            p.kind.label(),
            p.score,
            json_escape(&p.detail),
            wins.join(", ")
        ));
        out.push_str(", \"ranked\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"kind\": \"{}\", \"score\": {:.4}}}",
                v.kind.label(),
                v.score
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Per-window aggregate built from the worker tracks.
#[derive(Clone, Copy, Debug, Default)]
struct WinAgg {
    step_max: u64,
    step_sum: u64,
    step_n: usize,
    bounding: usize,
    barrier_ns: u64,
    exchange_ns: u64,
}

/// Runs the scaling doctor over a collected [`HostProfile`]: phase
/// breakdowns, straggler attribution, efficiency, Karp–Flatt, and
/// ranked verdicts. Deterministic for a given profile and context.
pub fn analyze(profile: &HostProfile, ctx: &AnalyzeCtx) -> ProfileAnalysis {
    let shards = profile.shards.max(1);
    let mut per_shard = vec![ShardBreakdown::default(); shards];
    let mut wins: BTreeMap<u64, WinAgg> = BTreeMap::new();
    for (s, track) in profile.worker_tracks().iter().enumerate() {
        for span in track {
            per_shard[s].phase_ns[span.phase.index()] += span.dur_ns;
            let agg = wins.entry(span.window).or_default();
            match span.phase {
                Phase::Step => {
                    agg.step_sum += span.dur_ns;
                    agg.step_n += 1;
                    if span.dur_ns > agg.step_max {
                        agg.step_max = span.dur_ns;
                        agg.bounding = s;
                    }
                }
                Phase::BarrierWait => agg.barrier_ns += span.dur_ns,
                Phase::OutboxFill | Phase::ExchangeDrain => agg.exchange_ns += span.dur_ns,
                _ => {}
            }
        }
    }
    let mut main_ns = [0u64; PHASES];
    for span in profile.main_track() {
        main_ns[span.phase.index()] += span.dur_ns;
    }
    let wall_ns = profile.wall_ns();
    let windows = wins.len() as u64;

    // Straggler attribution over complete windows only: a window with
    // a dropped step span would otherwise blame the shards that kept
    // theirs.
    let mut complete_windows = 0u64;
    let mut straggler_ns = 0u64;
    let mut critical_ns = vec![0u64; shards];
    let mut total_critical = 0u64;
    for agg in wins.values() {
        if agg.step_n != shards {
            continue;
        }
        complete_windows += 1;
        straggler_ns += agg.step_max * shards as u64 - agg.step_sum;
        per_shard[agg.bounding].windows_bounded += 1;
        critical_ns[agg.bounding] += agg.step_max;
        total_critical += agg.step_max;
    }
    for (b, c) in per_shard.iter_mut().zip(&critical_ns) {
        b.critical_share = if total_critical > 0 { *c as f64 / total_critical as f64 } else { 0.0 };
    }

    let busy_ns: u64 = per_shard.iter().map(|b| b.phase_ns[Phase::Step.index()]).sum();
    let barrier_ns: u64 = per_shard.iter().map(|b| b.phase_ns[Phase::BarrierWait.index()]).sum();
    let exchange_ns: u64 = per_shard
        .iter()
        .map(|b| b.phase_ns[Phase::OutboxFill.index()] + b.phase_ns[Phase::ExchangeDrain.index()])
        .sum();
    let thread_ns = (shards as u64 * wall_ns).max(1);
    let efficiency =
        if wall_ns == 0 { 1.0 } else { (busy_ns as f64 / thread_ns as f64).clamp(0.0, 1.0) };
    let karp_flatt = if shards <= 1 || wall_ns == 0 || busy_ns == 0 {
        0.0
    } else {
        let p = shards as f64;
        // Estimated speedup: total useful work over wall time.
        let s = (busy_ns as f64 / wall_ns as f64).max(1e-9);
        (((1.0 / s) - (1.0 / p)) / (1.0 - 1.0 / p)).clamp(0.0, 1.0)
    };

    // Barrier wait splits into the part stragglers explain (some shard
    // was still stepping) and the excess (barrier mechanics, wakeup
    // latency, oversubscription).
    let explained = straggler_ns.min(barrier_ns);
    let sync_excess = barrier_ns - explained;
    let frac = |ns: u64| ns as f64 / thread_ns as f64;

    let top_windows = |key: &dyn Fn(&WinAgg) -> u64| -> Vec<u64> {
        let mut ranked: Vec<(u64, u64)> =
            wins.iter().filter(|(_, a)| key(a) > 0).map(|(w, a)| (key(a), *w)).collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let mut out: Vec<u64> = ranked.into_iter().take(EVIDENCE).map(|(_, w)| w).collect();
        out.sort_unstable();
        out
    };

    let mut verdicts: Vec<Verdict> = Vec::new();
    if ctx.cores > 0 && shards > ctx.cores {
        verdicts.push(Verdict {
            kind: VerdictKind::Oversubscribed,
            // Fixed boost: oversubscription invalidates the other
            // readings, so it must outrank them whenever present.
            score: frac(barrier_ns + straggler_ns) + 0.5,
            detail: format!(
                "{} shards on {} core(s): barrier waits ({:.3} ms) are timeslice artifacts, \
                 not protocol overhead",
                shards,
                ctx.cores,
                barrier_ns as f64 / 1e6
            ),
            evidence_windows: top_windows(&|a| a.barrier_ns),
        });
    }
    {
        let hot = (0..shards).max_by_key(|&s| critical_ns[s]).unwrap_or(0);
        let pct = if complete_windows > 0 {
            per_shard[hot].windows_bounded as f64 * 100.0 / complete_windows as f64
        } else {
            0.0
        };
        let hot_hub = ctx
            .cluster_weights
            .iter()
            .enumerate()
            .filter(|(h, _)| ctx.shard_of_hub.get(*h) == Some(&hot))
            .max_by_key(|(_, w)| **w)
            .map(|(h, w)| (h, *w));
        let hub_note = match hot_hub {
            Some((h, w)) => format!("; hot cluster is hub {h} (weight {w})"),
            None => String::new(),
        };
        verdicts.push(Verdict {
            kind: VerdictKind::LoadImbalanced,
            score: frac(straggler_ns),
            detail: format!(
                "shard {hot} bounded {pct:.0}% of complete windows \
                 (straggler time {:.3} ms){hub_note}",
                straggler_ns as f64 / 1e6
            ),
            evidence_windows: top_windows(&|a| {
                if a.step_n == shards {
                    a.step_max * shards as u64 - a.step_sum
                } else {
                    0
                }
            }),
        });
    }
    verdicts.push(Verdict {
        kind: VerdictKind::BarrierDominated,
        score: frac(sync_excess),
        detail: format!(
            "{:.3} ms barrier wait beyond what stragglers explain ({:.0}% of thread time)",
            sync_excess as f64 / 1e6,
            frac(sync_excess) * 100.0
        ),
        evidence_windows: top_windows(&|a| a.barrier_ns),
    });
    verdicts.push(Verdict {
        kind: VerdictKind::ExchangeDominated,
        score: frac(exchange_ns),
        detail: format!(
            "{:.3} ms in outbox fill + exchange drain ({:.0}% of thread time)",
            exchange_ns as f64 / 1e6,
            frac(exchange_ns) * 100.0
        ),
        evidence_windows: top_windows(&|a| a.exchange_ns),
    });
    verdicts.push(Verdict {
        kind: VerdictKind::Healthy,
        score: HEALTHY_FLOOR,
        detail: format!(
            "parallel efficiency {efficiency:.2}; no overhead cause above {HEALTHY_FLOOR:.2} \
             of thread time"
        ),
        evidence_windows: Vec::new(),
    });
    // Strongest first; ties keep the insertion order above (stable
    // sort), which places the more specific causes ahead of Healthy.
    verdicts.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

    ProfileAnalysis {
        shards,
        windows,
        complete_windows,
        wall_ns,
        spans_dropped: profile.dropped,
        per_shard,
        main_ns,
        efficiency,
        karp_flatt,
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: Phase, window: u64, start_ns: u64, dur_ns: u64) -> PhaseSpan {
        PhaseSpan { phase, window, start_ns, dur_ns }
    }

    /// A synthetic 2-shard profile: per window each shard steps for
    /// `step[s]` ns and waits `barrier[s]` ns.
    fn synthetic(windows: u64, step: [u64; 2], barrier: [u64; 2]) -> HostProfile {
        let mut tracks = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut t = 0u64;
        for w in 0..windows {
            for s in 0..2 {
                tracks[s].push(span(Phase::Step, w, t, step[s]));
                tracks[s].push(span(Phase::BarrierWait, w, t + step[s], barrier[s]));
            }
            t += step.iter().max().unwrap() + barrier.iter().max().unwrap();
        }
        HostProfile { shards: 2, tracks, dropped: 0 }
    }

    fn ctx(cores: usize) -> AnalyzeCtx {
        AnalyzeCtx { cores, cluster_weights: vec![10, 90], shard_of_hub: vec![0, 1] }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        let t = p.begin();
        assert_eq!(t, 0);
        p.end(Phase::Step, 0, t);
        p.end_with(Phase::BarrierWait, 0, t, 500);
        assert!(p.is_empty());
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut p = Profiler::new(4);
        for w in 0..6 {
            p.end_with(Phase::Step, w, 0, 1);
        }
        assert_eq!(p.len(), 4);
        assert_eq!(p.dropped(), 2);
        let windows: Vec<u64> = p.spans().map(|s| s.window).collect();
        assert_eq!(windows, vec![2, 3, 4, 5]);
    }

    #[test]
    fn enabled_profiler_measures_monotonic_spans() {
        let mut p = Profiler::new(16);
        let t0 = p.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.end(Phase::Step, 7, t0);
        let s = *p.spans().next().unwrap();
        assert_eq!(s.phase, Phase::Step);
        assert_eq!(s.window, 7);
        assert!(s.dur_ns >= 1_000_000, "slept 2ms, span {} ns", s.dur_ns);
    }

    #[test]
    fn balanced_run_is_healthy() {
        let prof = synthetic(64, [1000, 1000], [10, 10]);
        let a = analyze(&prof, &ctx(8));
        assert_eq!(a.primary().kind, VerdictKind::Healthy);
        assert_eq!(a.windows, 64);
        assert_eq!(a.complete_windows, 64);
        assert!(a.efficiency > 0.9, "efficiency {}", a.efficiency);
        assert!(a.karp_flatt < 0.05, "karp_flatt {}", a.karp_flatt);
        // Exactly one primary verdict, and the ranked list covers all kinds once.
        assert_eq!(a.verdicts.len(), 4);
    }

    #[test]
    fn straggler_run_is_load_imbalanced() {
        // Shard 1 steps 9x longer; shard 0 absorbs the slack at the barrier.
        let prof = synthetic(64, [1000, 9000], [8000, 10]);
        let a = analyze(&prof, &ctx(8));
        assert_eq!(a.primary().kind, VerdictKind::LoadImbalanced);
        assert_eq!(a.per_shard[1].windows_bounded, 64);
        assert!(a.per_shard[1].critical_share > 0.99);
        assert_eq!(a.primary().evidence_windows.len(), EVIDENCE);
        assert!(a.primary().detail.contains("shard 1"));
        // Hot cluster named from the ctx weights (hub 1 lives on shard 1).
        assert!(a.primary().detail.contains("hub 1"), "detail: {}", a.primary().detail);
    }

    #[test]
    fn pure_sync_overhead_is_barrier_dominated() {
        // Equal steps (no straggler slack) but every crossing waits long.
        let prof = synthetic(64, [1000, 1000], [4000, 4000]);
        let a = analyze(&prof, &ctx(8));
        assert_eq!(a.primary().kind, VerdictKind::BarrierDominated);
        assert!(!a.primary().evidence_windows.is_empty());
    }

    #[test]
    fn oversubscription_outranks_everything() {
        let prof = synthetic(64, [1000, 9000], [8000, 10]);
        let a = analyze(&prof, &ctx(1));
        assert_eq!(a.primary().kind, VerdictKind::Oversubscribed);
        assert_eq!(a.verdicts.len(), 5);
    }

    #[test]
    fn one_shard_profile_has_defined_estimates() {
        let tracks = vec![vec![span(Phase::Step, 0, 0, 5_000_000)], Vec::new()];
        let prof = HostProfile { shards: 1, tracks, dropped: 0 };
        let a = analyze(&prof, &ctx(8));
        assert_eq!(a.karp_flatt, 0.0);
        assert!(a.efficiency > 0.99);
        assert_eq!(a.primary().kind, VerdictKind::Healthy);
    }

    #[test]
    fn incomplete_windows_are_excluded_from_straggler_math() {
        let mut prof = synthetic(8, [1000, 1000], [10, 10]);
        // A window only shard 0 reports (as after a ring drop).
        prof.tracks[0].push(span(Phase::Step, 99, 1_000_000, 30_000));
        let a = analyze(&prof, &ctx(8));
        assert_eq!(a.windows, 9);
        assert_eq!(a.complete_windows, 8);
    }

    #[test]
    fn json_and_render_are_well_formed() {
        let prof = synthetic(16, [1000, 3000], [2000, 10]);
        let a = analyze(&prof, &ctx(8));
        let json = a.to_json();
        let parsed = crate::json::parse(&json).expect("profile JSON parses");
        assert!(parsed.as_object().is_some());
        assert!(parsed.get("efficiency").is_some());
        assert!(parsed.get("karp_flatt").is_some());
        assert!(parsed.get("verdict").is_some());
        let rendered = a.render();
        assert!(rendered.contains("parallel efficiency"));
        assert!(rendered.contains("verdict:"));
    }

    #[test]
    fn host_clock_is_monotone() {
        let a = host_now_ns();
        let b = host_now_ns();
        assert!(b >= a);
    }
}
