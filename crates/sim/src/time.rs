//! Simulated time.
//!
//! The Nectar hardware is specified in nanoseconds (the HUB cycle is
//! 70 ns), so the simulation clock counts integer nanoseconds. Two
//! newtypes keep instants and durations apart:
//!
//! * [`Time`] — an absolute instant on the simulation clock.
//! * [`Dur`] — a span between two instants.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::time::{Time, Dur};
//!
//! let start = Time::ZERO;
//! let cycle = Dur::from_nanos(70);
//! let after_ten = start + cycle * 10;
//! assert_eq!(after_ten - start, Dur::from_nanos(700));
//! assert_eq!(after_ten.nanos(), 700);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since
/// the start of the simulation.
///
/// # Examples
///
/// ```
/// use nectar_sim::time::{Time, Dur};
/// let t = Time::from_micros(3) + Dur::from_nanos(500);
/// assert_eq!(t.nanos(), 3_500);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use nectar_sim::time::Dur;
/// assert_eq!(Dur::from_micros(2) + Dur::from_nanos(5), Dur::from_nanos(2_005));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dur(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span since `earlier`, or [`Dur::ZERO`] if `earlier` is later
    /// than `self` (saturating).
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Dur) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span; useful as an "infinite" timeout.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding up to the
    /// next nanosecond so a transfer never finishes early.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Dur {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        Dur((secs * 1e9).ceil() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by a count; `None` on overflow.
    pub fn checked_mul(self, n: u64) -> Option<Dur> {
        self.0.checked_mul(n).map(Dur)
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// The span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, n: u64) -> Dur {
        Dur(self.0 * n)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, n: u64) -> Dur {
        Dur(self.0 / n)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3} us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns} ns")
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::from_micros(1).nanos(), 1_000);
        assert_eq!(Time::from_millis(2).nanos(), 2_000_000);
        assert_eq!(Dur::from_secs(1).nanos(), 1_000_000_000);
        assert_eq!(Dur::from_micros(30).as_micros_f64(), 30.0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_nanos(100);
        let d = Dur::from_nanos(70);
        assert_eq!((t + d).nanos(), 170);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 10, Dur::from_nanos(700));
        assert_eq!(Dur::from_nanos(700) / 10, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.nanos(), 170);
    }

    #[test]
    fn saturating_and_checked() {
        let a = Time::from_nanos(50);
        let b = Time::from_nanos(80);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_nanos(30));
        assert!(Time::MAX.checked_add(Dur::from_nanos(1)).is_none());
        assert!(Dur::MAX.checked_mul(2).is_none());
        assert_eq!(Dur::from_nanos(5).saturating_sub(Dur::from_nanos(9)), Dur::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns rounds to 2 ns: transfers never finish early.
        assert_eq!(Dur::from_secs_f64(1.5e-9), Dur::from_nanos(2));
        assert_eq!(Dur::from_secs_f64(0.0), Dur::ZERO);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = Dur::from_secs_f64(-1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Dur::from_nanos(700).to_string(), "700 ns");
        assert_eq!(Dur::from_micros(30).to_string(), "30.000 us");
        assert_eq!(Dur::from_millis(5).to_string(), "5.000 ms");
        assert_eq!(Dur::from_secs(2).to_string(), "2.000 s");
        assert_eq!(Time::from_nanos(700).to_string(), "t=700 ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = (1..=4).map(Dur::from_nanos).sum();
        assert_eq!(total, Dur::from_nanos(10));
    }

    #[test]
    fn ordering() {
        assert!(Time::from_nanos(1) < Time::from_nanos(2));
        assert_eq!(Dur::from_nanos(3).max(Dur::from_nanos(7)), Dur::from_nanos(7));
        assert_eq!(Dur::from_nanos(3).min(Dur::from_nanos(7)), Dur::from_nanos(3));
    }
}
