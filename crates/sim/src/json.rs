//! A minimal JSON value model: escaping for the hand-rolled writers
//! and a small recursive-descent parser for validating what they
//! emit. Not a general-purpose JSON library — just enough to check
//! that `BENCH_sim.json` and the Chrome trace export are well-formed
//! without external dependencies.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::json::{parse, Json};
//!
//! let v = parse(r#"{"traceEvents": [{"ph": "X", "ts": 0.7}]}"#).unwrap();
//! let events = v.get("traceEvents").unwrap().as_array().unwrap();
//! assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
//! ```

use std::fmt;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // writers; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // One multibyte UTF-8 scalar; its length comes from
                    // the lead byte, so only that slice is validated —
                    // validating from `pos` to end of input here made
                    // parsing quadratic in document size.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError { at: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::String("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert!(v.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let parsed = parse(&format!("\"{}\"", json_escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
