//! Streaming doctor: bounded-memory incremental flight analysis.
//!
//! The post-hoc doctor ([`diagnose`](super::diagnose)) needs the whole
//! telemetry capture in memory, so at scale it either drops events
//! (findings downgrade to non-confident) or the ring grows without
//! bound. [`StreamingDoctor`] folds the same analysis incrementally: a
//! windowed flight table retires completed flights into compact online
//! accumulators, so memory tracks the number of flights *in flight*,
//! not the number ever seen.
//!
//! # Fold lifecycle
//!
//! Events arrive in **batches**: each batch is sorted into the
//! canonical order (`TelemetryEvent::canonical_key`) and must be
//! time-disjoint from — and later than — every previous batch. The
//! world guarantees this by only draining events whose timestamp is
//! below the engine's next-event time: such events are *final* (every
//! record site stamps at-or-after the processing instant, so nothing
//! earlier can still be produced). Concatenated, the batches are
//! exactly the canonically sorted capture, which is why every streaming
//! verdict is bit-identical to the post-hoc doctor run over the same
//! events.
//!
//! A flight retires once it is **terminal** (delivered via `app_recv`,
//! or an ack flight consumed by `transport_ack`) *and* has been idle
//! for the [`horizon`](StreamConfig::horizon); non-terminal flights —
//! lost, corrupted, or merely parked in a congested crossbar queue
//! longer than the horizon — are held until the final report (or a
//! memory-budget eviction), so congestion can never race a live packet
//! into retirement. On retirement the breakdown feeds the
//! [`CriticalPath`] histograms and the pathology folds
//! ([`pathology::fold_storm`], [`pathology::fold_head_of_line`]), its
//! events are freed, and only O(1) residue per stream slot remains
//! (first-send time for retransmit attribution, data-flight count and
//! lost-candidate list for the silent-drop detector) until the slot is
//! acknowledged. Every retirement contribution commutes — histogram
//! increments, sums, bounded smallest-K evidence and top-K worst sets —
//! so retirement *order* can never change the report; only an event
//! arriving for an already-retired flight can, and that is detected
//! exactly (packet ids are minted monotonically per CAB) and counted in
//! [`StreamSummary::late_events`].
//!
//! Periodic [`DoctorCheckpoint`]s expose the fold's running state —
//! counts, memory estimate, provisional findings — for a live consumer
//! to poll without stopping the run.

use super::critical_path::{breakdown, CriticalPath};
use super::flights::{Flight, StreamKey};
use super::pathology::{self, DoctorConfig, Finding, PortAcc, StreamAcc};
use super::DoctorReport;
use crate::metrics::MetricsRegistry;
use crate::telemetry::{EventKind, TelemetryEvent};
use crate::time::{Dur, Time};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::mem::size_of;

/// Streaming-doctor tuning. The `doctor` thresholds are shared with
/// the post-hoc detectors so the two paths stay comparable.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Detector thresholds (same as post-hoc).
    pub doctor: DoctorConfig,
    /// A **completed** flight (one that saw a terminal event —
    /// delivery or ack consumption) retires after this much simulated
    /// time with no new events. Must exceed the longest gap after a
    /// terminal event (for unicast, nothing follows one; multicast
    /// copies still in flight keep updating the quiet clock), or
    /// retirement races the stragglers and the report counts
    /// `late_events` (equivalence with post-hoc then no longer holds).
    /// Flights without a terminal event — still in flight, silently
    /// dropped, corrupted — are held until the final report or a
    /// memory-budget eviction, never horizon-retired: congestion can
    /// park a packet in a crossbar queue for longer than any
    /// reasonable quiet period. The default (1 ms) matches the
    /// silent-drop grace window.
    pub horizon: Dur,
    /// Emit a [`DoctorCheckpoint`] every this many folded events.
    pub checkpoint_every: u64,
    /// Hard cap on the fold's estimated footprint: when exceeded, the
    /// oldest open flights are force-retired (counted in
    /// [`StreamSummary::forced_retirements`]) until back under.
    pub memory_budget: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            doctor: DoctorConfig::default(),
            horizon: Dur::from_millis(1),
            checkpoint_every: 1 << 16,
            memory_budget: None,
        }
    }
}

/// One flight still accumulating events.
#[derive(Clone, Debug)]
struct OpenFlight {
    flight: Flight,
    last_at: Time,
    slot: Option<StreamKey>,
    /// `true` once a terminal event was folded: `AppRecv` (the packet
    /// reached an application) or `TransportAck` (the ack was consumed
    /// at the data sender). Only terminal flights retire on the
    /// horizon — a packet can sit in a congested crossbar queue far
    /// longer than any reasonable quiet period, but nothing follows a
    /// delivery. Non-terminal flights (in flight, dropped, corrupted)
    /// are held until the final report or a memory-budget eviction.
    terminal: bool,
}

/// What survives a stream slot after its flights retire.
#[derive(Clone, Debug)]
struct SlotResidue {
    /// Earliest `transport_send` of the slot — final once written,
    /// because batches arrive in time order.
    first_send: Time,
    /// Data flights of this slot retired so far (a count > 1 means a
    /// retransmission superseded the original: not a silent drop).
    data_count: u64,
    /// Flights currently open on this slot; the residue may only be
    /// pruned once this reaches zero *and* the slot is acked.
    open_flights: u32,
}

/// A poll-able snapshot of the fold's running state.
#[derive(Clone, Debug)]
pub struct DoctorCheckpoint {
    /// Watermark (latest folded event time) at emission.
    pub at: Time,
    /// Host time at emission ([`crate::profile::host_now_ns`]): pairs
    /// the simulated watermark with a wall-clock position, so a live
    /// consumer (or the host-time profiler) can measure fold progress
    /// per host second. Never part of bit-compared state.
    pub host_ns: u64,
    /// Events folded so far.
    pub events_folded: u64,
    /// Distinct flights seen so far.
    pub flights_seen: u64,
    /// Flights retired into the online accumulators so far.
    pub flights_retired: u64,
    /// Flights still open (bounding current memory).
    pub open_flights: usize,
    /// Events that arrived for already-retired flights.
    pub late_events: u64,
    /// Estimated fold footprint in bytes.
    pub mem_bytes: usize,
    /// Findings as of this point (no metrics-based detectors; final
    /// silent-drop judgment needs the capture end, so these use the
    /// current watermark as the horizon).
    pub provisional: Vec<Finding>,
}

/// Fold statistics for the run summary, kept apart from bit-compared
/// simulated metrics (they depend on drain cadence, not the workload).
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Events folded in total.
    pub events_folded: u64,
    /// Distinct flights reconstructed.
    pub flights_seen: u64,
    /// Flights retired into the online accumulators.
    pub flights_retired: u64,
    /// Flights still open when the summary was taken.
    pub open_flights: usize,
    /// Events that arrived for already-retired flights (nonzero means
    /// the horizon was too short and equivalence with post-hoc is off).
    pub late_events: u64,
    /// Retirements forced by the memory budget.
    pub forced_retirements: u64,
    /// Checkpoints emitted.
    pub checkpoints: u64,
    /// Peak estimated fold footprint in bytes.
    pub peak_mem_bytes: usize,
    /// Highest per-component telemetry ring occupancy observed.
    pub ring_hwm: u64,
    /// Telemetry events lost to ring overflow.
    pub ring_dropped: u64,
}

/// The incremental doctor. Feed time-disjoint event batches with
/// [`ingest`](StreamingDoctor::ingest); finish with
/// [`report`](StreamingDoctor::report) /
/// [`into_report`](StreamingDoctor::into_report).
#[derive(Clone, Debug)]
pub struct StreamingDoctor {
    cfg: StreamConfig,
    open: HashMap<u64, OpenFlight>,
    /// Lazy retirement queue: one `(event time, flight)` entry per
    /// folded flight event, popped once the watermark passes `time +
    /// horizon`. Stale entries (the flight saw newer events, or already
    /// retired) are skipped on pop.
    retire_queue: VecDeque<(Time, u64)>,
    residue: HashMap<StreamKey, SlotResidue>,
    /// Highest cumulative ack per `(sender, peer)` direction.
    acked: HashMap<(u16, u16), u32>,
    streams: BTreeMap<(u16, u16), StreamAcc>,
    ports: BTreeMap<(u8, u8), PortAcc>,
    /// Silent-drop candidates per slot: `(send time, flight id)` of
    /// retired data flights that were never delivered or acked.
    candidates: BTreeMap<StreamKey, Vec<(Time, u64)>>,
    cp: CriticalPath,
    /// Highest retired flight id per CAB (ids are minted `(cab << 40) |
    /// counter`, monotone per CAB) — the exact late-event detector.
    max_retired: HashMap<u64, u64>,
    watermark: Time,
    events_folded: u64,
    flights_seen: u64,
    flights_retired: u64,
    late_events: u64,
    forced_retirements: u64,
    open_event_bytes: usize,
    peak_mem: usize,
    checkpoints_emitted: u64,
    next_checkpoint_at: u64,
    last_checkpoint: Option<DoctorCheckpoint>,
    ring_hwm: u64,
    ring_dropped: u64,
}

impl StreamingDoctor {
    /// A fresh fold with the given tuning.
    pub fn new(cfg: StreamConfig) -> StreamingDoctor {
        let next_checkpoint_at = cfg.checkpoint_every;
        StreamingDoctor {
            cfg,
            open: HashMap::new(),
            retire_queue: VecDeque::new(),
            residue: HashMap::new(),
            acked: HashMap::new(),
            streams: BTreeMap::new(),
            ports: BTreeMap::new(),
            candidates: BTreeMap::new(),
            cp: CriticalPath::default(),
            max_retired: HashMap::new(),
            watermark: Time::ZERO,
            events_folded: 0,
            flights_seen: 0,
            flights_retired: 0,
            late_events: 0,
            forced_retirements: 0,
            open_event_bytes: 0,
            peak_mem: 0,
            checkpoints_emitted: 0,
            next_checkpoint_at,
            last_checkpoint: None,
            ring_hwm: 0,
            ring_dropped: 0,
        }
    }

    /// Folds one batch. The batch is canonically sorted in place and
    /// cleared; every event must be at-or-after the current watermark
    /// (batches are time-disjoint and arrive in time order).
    pub fn ingest(&mut self, batch: &mut Vec<TelemetryEvent>) {
        if batch.is_empty() {
            return;
        }
        batch.sort_unstable_by_key(|e| e.canonical_key());
        debug_assert!(
            batch[0].at >= self.watermark,
            "streaming batch reaches back before the watermark: {} < {}",
            batch[0].at,
            self.watermark
        );
        for ev in batch.iter() {
            self.fold_event(ev);
        }
        batch.clear();
        self.advance_retirement();
        self.enforce_budget();
        self.peak_mem = self.peak_mem.max(self.mem_estimate());
        self.maybe_checkpoint();
    }

    fn fold_event(&mut self, ev: &TelemetryEvent) {
        self.watermark = self.watermark.max(ev.at);
        self.events_folded += 1;
        if let EventKind::TransportAck { cab, peer, ack } = ev.kind {
            // `cab` received the ack, so it is the data sender.
            let high = self.acked.entry((cab, peer)).or_insert(0);
            *high = (*high).max(ack);
        }
        if !ev.flight.is_some() {
            return;
        }
        let id = ev.flight.0;
        if let EventKind::TransportSend { cab, peer, seq, .. } = ev.kind {
            let r = self.residue.entry((cab, peer, seq)).or_insert(SlotResidue {
                first_send: ev.at,
                data_count: 0,
                open_flights: 0,
            });
            r.first_send = r.first_send.min(ev.at);
        }
        let mut assigned_slot = None;
        let of = self.open.entry(id).or_insert_with(|| {
            let cab = id >> 40;
            if self.max_retired.get(&cab).is_some_and(|&m| id <= m) {
                self.late_events += 1;
            } else {
                self.flights_seen += 1;
            }
            OpenFlight {
                flight: Flight { id, events: Vec::new() },
                last_at: ev.at,
                slot: None,
                terminal: false,
            }
        });
        if of.slot.is_none() {
            if let EventKind::TransportSend { cab, peer, seq, .. } = ev.kind {
                of.slot = Some((cab, peer, seq));
                assigned_slot = Some((cab, peer, seq));
            }
        }
        if matches!(ev.kind, EventKind::AppRecv { .. } | EventKind::TransportAck { .. }) {
            of.terminal = true;
        }
        of.flight.events.push(*ev);
        of.last_at = ev.at;
        if let Some(k) = assigned_slot {
            // The entry exists: every send event writes the residue above.
            self.residue.get_mut(&k).expect("slot residue").open_flights += 1;
        }
        self.open_event_bytes += size_of::<TelemetryEvent>();
        self.retire_queue.push_back((ev.at, id));
    }

    fn advance_retirement(&mut self) {
        while let Some(&(t, id)) = self.retire_queue.front() {
            if t + self.cfg.horizon > self.watermark {
                break;
            }
            self.retire_queue.pop_front();
            if let Some(of) = self.open.get(&id) {
                if of.terminal && of.last_at + self.cfg.horizon <= self.watermark {
                    self.retire(id);
                }
            }
        }
    }

    /// Folds one completed flight into the online accumulators and
    /// frees its events. Contributions commute, so retirement order is
    /// irrelevant to the final report.
    fn retire(&mut self, id: u64) {
        let Some(of) = self.open.remove(&id) else { return };
        self.open_event_bytes = self
            .open_event_bytes
            .saturating_sub(of.flight.events.len() * size_of::<TelemetryEvent>());
        self.flights_retired += 1;
        let cab = id >> 40;
        let m = self.max_retired.entry(cab).or_insert(0);
        *m = (*m).max(id);
        let f = &of.flight;
        pathology::fold_storm(f, &mut self.streams, &self.cfg.doctor);
        pathology::fold_head_of_line(f, &mut self.ports, &self.cfg.doctor);
        let first = f.stream_key().and_then(|k| self.residue.get(&k).map(|r| r.first_send));
        match breakdown(f, first) {
            Some(b) => self.cp.add(&b),
            None => self.cp.skipped += 1,
        }
        let Some(k) = f.stream_key() else { return };
        let acked = self.acked.get(&(k.0, k.1)).is_some_and(|&h| h > k.2);
        let Some(r) = self.residue.get_mut(&k) else { return };
        if f.is_data() {
            r.data_count += 1;
        }
        r.open_flights = r.open_flights.saturating_sub(1);
        let open_left = r.open_flights;
        if f.is_data() && !f.delivered() && !f.malformed() && !acked {
            if let Some(at) = f.send().map(|e| e.at) {
                self.candidates.entry(k).or_default().push((at, id));
            }
        }
        if acked && open_left == 0 {
            // An acked slot can gain no further silent-drop candidates
            // (acks are cumulative and monotone), and no open flight
            // needs its first-send time: drop the residue.
            self.residue.remove(&k);
            self.candidates.remove(&k);
        }
    }

    fn enforce_budget(&mut self) {
        let Some(budget) = self.cfg.memory_budget else { return };
        while self.mem_estimate() > budget {
            match self.retire_queue.pop_front() {
                Some((_, id)) => {
                    if self.open.contains_key(&id) {
                        self.retire(id);
                        self.forced_retirements += 1;
                    }
                }
                None => break,
            }
        }
    }

    fn maybe_checkpoint(&mut self) {
        if self.events_folded < self.next_checkpoint_at {
            return;
        }
        self.next_checkpoint_at = self.events_folded + self.cfg.checkpoint_every;
        let cp = DoctorCheckpoint {
            at: self.watermark,
            host_ns: crate::profile::host_now_ns(),
            events_folded: self.events_folded,
            flights_seen: self.flights_seen,
            flights_retired: self.flights_retired,
            open_flights: self.open.len(),
            late_events: self.late_events,
            mem_bytes: self.mem_estimate(),
            provisional: self.provisional_findings(),
        };
        self.checkpoints_emitted += 1;
        self.last_checkpoint = Some(cp);
    }

    /// Findings from the accumulators as they stand (storms,
    /// head-of-line, silent drops against the current watermark). The
    /// metrics-based detectors need the final registry and only appear
    /// in the finished report.
    pub fn provisional_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for ((cab, peer), acc) in &self.streams {
            out.extend(pathology::storm_finding(*cab, *peer, acc, &self.cfg.doctor));
        }
        for ((hub, input), port) in &self.ports {
            out.extend(pathology::hol_finding(*hub, *input, port, &self.cfg.doctor));
        }
        out.extend(pathology::silent_drop_finding(self.lost_candidates(), &self.cfg.doctor));
        pathology::sort_findings(&mut out);
        out
    }

    /// Surviving silent-drop candidates: unacked slots with exactly one
    /// data flight, sent more than a grace window before the watermark.
    fn lost_candidates(&self) -> Vec<(Time, u64)> {
        let mut lost = Vec::new();
        for (k, list) in &self.candidates {
            if self.acked.get(&(k.0, k.1)).is_some_and(|&h| h > k.2) {
                continue;
            }
            if self.residue.get(k).map_or(0, |r| r.data_count) > 1 {
                continue;
            }
            for &(at, id) in list {
                if at + self.cfg.doctor.grace > self.watermark {
                    continue;
                }
                lost.push((at, id));
            }
        }
        lost
    }

    /// Estimated footprint of the fold state in bytes. An estimate —
    /// map overheads are approximated — but it moves with the real
    /// footprint, which is what the budget needs.
    pub fn mem_estimate(&self) -> usize {
        self.open_event_bytes
            + self.open.len() * (size_of::<OpenFlight>() + size_of::<u64>() + 16)
            + self.retire_queue.len() * size_of::<(Time, u64)>()
            + self.residue.len() * (size_of::<StreamKey>() + size_of::<SlotResidue>() + 16)
            + self.candidates.len() * 64
            + self.streams.len() * 96
            + self.ports.len() * 160
    }

    /// Latest emitted checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<&DoctorCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Latest folded event time.
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// Events folded so far.
    pub fn events_folded(&self) -> u64 {
        self.events_folded
    }

    /// Records ring pressure observed by the world that fed this fold
    /// (kept here because under streaming the ring high-water mark
    /// depends on drain cadence and must stay out of the bit-compared
    /// metrics).
    pub fn note_ring(&mut self, hwm: u64, dropped: u64) {
        self.ring_hwm = self.ring_hwm.max(hwm);
        self.ring_dropped = self.ring_dropped.max(dropped);
    }

    /// Fold statistics for the run summary.
    pub fn summary(&self) -> StreamSummary {
        StreamSummary {
            events_folded: self.events_folded,
            flights_seen: self.flights_seen,
            flights_retired: self.flights_retired,
            open_flights: self.open.len(),
            late_events: self.late_events,
            forced_retirements: self.forced_retirements,
            checkpoints: self.checkpoints_emitted,
            peak_mem_bytes: self.peak_mem.max(self.mem_estimate()),
            ring_hwm: self.ring_hwm,
            ring_dropped: self.ring_dropped,
        }
    }

    /// Finishes the fold: retires every open flight and builds the
    /// final report, exactly as [`diagnose`](super::diagnose) would
    /// over the canonically sorted capture (provided
    /// [`late_events`](StreamSummary::late_events) is zero).
    pub fn into_report(mut self, metrics: Option<&MetricsRegistry>) -> DoctorReport {
        let mut ids: Vec<u64> = self.open.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.retire(id);
        }
        let mut findings = Vec::new();
        for ((cab, peer), acc) in &self.streams {
            findings.extend(pathology::storm_finding(*cab, *peer, acc, &self.cfg.doctor));
        }
        for ((hub, input), port) in &self.ports {
            findings.extend(pathology::hol_finding(*hub, *input, port, &self.cfg.doctor));
        }
        if let Some(m) = metrics {
            pathology::mailbox_saturation(m, &self.cfg.doctor, &mut findings);
            pathology::reassembly_mismatches(m, &mut findings);
        }
        findings.extend(pathology::silent_drop_finding(self.lost_candidates(), &self.cfg.doctor));
        pathology::sort_findings(&mut findings);
        let dropped_events = metrics.map_or(0, |m| m.counter("telemetry.dropped_events"));
        let confident = dropped_events == 0;
        if !confident {
            for f in &mut findings {
                f.confident = false;
            }
        }
        DoctorReport {
            flights: self.flights_seen,
            dropped_events,
            confident,
            critical_path: self.cp,
            findings,
        }
    }

    /// [`into_report`](StreamingDoctor::into_report) without consuming
    /// the fold (clones the state — fine for checkpoint-sized polls).
    pub fn report(&self, metrics: Option<&MetricsRegistry>) -> DoctorReport {
        self.clone().into_report(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::diagnose;
    use crate::telemetry::FlightId;

    fn ev(ns: u64, flight: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: Time::from_nanos(ns), flight: FlightId(flight), kind }
    }

    fn send(ns: u64, flight: u64, seq: u32, retransmit: bool) -> TelemetryEvent {
        ev(ns, flight, EventKind::TransportSend { cab: 0, peer: 1, seq, bytes: 64, retransmit })
    }

    fn recv(ns: u64, flight: u64) -> TelemetryEvent {
        ev(ns, flight, EventKind::AppRecv { cab: 1, mailbox: 0, bytes: 64 })
    }

    /// A capture with a storm, a silent drop, and plain deliveries.
    fn busy_capture() -> Vec<TelemetryEvent> {
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(send(100 + i, i, i as u32, false));
            events.push(recv(10_000 + i, i));
        }
        for i in 0..3u64 {
            events.push(send(20_000 + i, 100 + i, i as u32, true));
            events.push(recv(30_000 + i, 100 + i));
        }
        // Ids are minted monotonically per CAB, like the real world's
        // packet ids — the late-event detector relies on it.
        events.push(send(40_000, 150, 40, false)); // never delivered
        events.push(send(90_000_000, 160, 41, false));
        events.push(recv(90_000_500, 160));
        events
    }

    fn stream_in_batches(events: &[TelemetryEvent], batch_len: usize) -> StreamingDoctor {
        let mut sorted = events.to_vec();
        sorted.sort_unstable_by_key(|e| e.canonical_key());
        let mut doc = StreamingDoctor::new(StreamConfig::default());
        for chunk in sorted.chunks(batch_len.max(1)) {
            // Batches must be time-disjoint: extend each chunk to a
            // timestamp boundary.
            doc.ingest(&mut chunk.to_vec());
        }
        doc
    }

    #[test]
    fn streaming_matches_post_hoc_on_mixed_capture() {
        let events = busy_capture();
        let mut sorted = events.clone();
        sorted.sort_unstable_by_key(|e| e.canonical_key());
        let reference = diagnose(&sorted, None);
        for batch_len in [1, 3, 7, events.len()] {
            let doc = stream_in_batches(&events, batch_len);
            assert_eq!(doc.summary().late_events, 0);
            let rep = doc.into_report(None);
            assert_eq!(rep.flights, reference.flights, "batch_len {batch_len}");
            assert_eq!(rep.render(), reference.render(), "batch_len {batch_len}");
            assert_eq!(rep.critical_path.attributed, reference.critical_path.attributed);
            assert_eq!(rep.critical_path.skipped, reference.critical_path.skipped);
            assert_eq!(
                rep.critical_path.total_hist().mean(),
                reference.critical_path.total_hist().mean()
            );
        }
    }

    #[test]
    fn flights_retire_after_horizon_and_free_memory() {
        let mut doc = StreamingDoctor::new(StreamConfig::default());
        let mut batch = vec![send(100, 1, 0, false), recv(9_000, 1)];
        doc.ingest(&mut batch);
        assert_eq!(doc.summary().open_flights, 1);
        // An unrelated event far past the horizon retires flight 1.
        let mut batch = vec![send(10_000_000, 2, 1, false)];
        doc.ingest(&mut batch);
        let s = doc.summary();
        assert_eq!(s.flights_retired, 1);
        assert_eq!(s.open_flights, 1);
        assert_eq!(s.late_events, 0);
    }

    #[test]
    fn memory_budget_forces_retirement() {
        let cfg = StreamConfig { memory_budget: Some(600), ..StreamConfig::default() };
        let mut doc = StreamingDoctor::new(cfg);
        let mut batch: Vec<_> = (0..64).map(|i| send(100 + i, i, i as u32, false)).collect();
        doc.ingest(&mut batch);
        let s = doc.summary();
        assert!(s.forced_retirements > 0, "budget never enforced: {s:?}");
        assert_eq!(s.open_flights, 0, "every open flight force-retired");
    }

    #[test]
    fn late_event_is_detected() {
        let mut doc = StreamingDoctor::new(StreamConfig::default());
        // Flight 1 completes (the recv makes it terminal), so pushing
        // the watermark a horizon past its last event retires it.
        doc.ingest(&mut vec![send(100, 1, 0, false), recv(9_000, 1)]);
        doc.ingest(&mut vec![send(50_000_000, 2, 1, false)]);
        assert_eq!(doc.summary().flights_retired, 1);
        // An event for retired flight 1 arrives afterwards.
        doc.ingest(&mut vec![recv(50_000_100, 1)]);
        assert_eq!(doc.summary().late_events, 1);
    }

    #[test]
    fn checkpoints_expose_provisional_findings() {
        let cfg = StreamConfig { checkpoint_every: 4, ..StreamConfig::default() };
        let mut doc = StreamingDoctor::new(cfg);
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(send(100 + i, i, i as u32, false));
            events.push(recv(10_000 + i, i));
        }
        for i in 0..3u64 {
            events.push(send(20_000 + i, 100 + i, i as u32, true));
            events.push(recv(30_000 + i, 100 + i));
        }
        // Retire everything with a far-future event, then checkpoint.
        events.push(send(90_000_000, 200, 50, false));
        events.sort_unstable_by_key(|e| e.canonical_key());
        doc.ingest(&mut events);
        let cp = doc.last_checkpoint().expect("checkpoint emitted");
        assert!(cp.events_folded >= 4);
        assert!(doc.summary().checkpoints >= 1);
        assert!(
            cp.provisional.iter().any(|f| f.detector == "retransmit_storm"),
            "storm visible in checkpoint: {:?}",
            cp.provisional
        );
    }
}
