//! Critical-path attribution: where did each flight's time go?
//!
//! For every delivered unicast flight, the breakdown walks the flight's
//! time-sorted events and classifies each inter-event gap by the kind of
//! the **later** event. Because the gaps telescope from `transport_send`
//! to `app_recv`, the per-segment durations sum *exactly* to the
//! flight's end-to-end latency — an invariant the property tests pin.
//! Time a message lost to go-back-N resends (the gap between the stream
//! slot's first transmission and the delivered copy's send) is charged
//! to [`Segment::Retransmit`].

use super::flights::{Flight, FlightTable};
use crate::metrics::Histogram;
use crate::telemetry::EventKind;
use crate::time::{Dur, Time};
use std::fmt::Write as _;

/// One slice of a flight's end-to-end latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Segment {
    /// Earlier transmissions of the same stream slot that were lost:
    /// first send of the `(cab, peer, seq)` slot → this flight's send.
    Retransmit,
    /// Datalink transmit queueing: `transport_send` → `fiber_tx`
    /// (flow-control stalls and burst-FIFO wait at the sending CAB).
    TransportQueue,
    /// Fiber serialization and propagation: `fiber_tx` → first HUB
    /// arrival, each `crossbar_forward` → next hop's arrival, and the
    /// final hop into the receiving CAB's `dma` start.
    Fiber,
    /// Crossbar queue wait, summed over every HUB on the path:
    /// `crossbar_enqueue` → `crossbar_forward`.
    HubQueue,
    /// Receive-side DMA drain: `dma` start → `dma` complete.
    Dma,
    /// Kernel delivery: `dma` complete → `app_recv` (interrupt upcall,
    /// checksum, thread wait, mailbox append).
    Delivery,
    /// Gaps whose later event is none of the known span boundaries.
    /// A catch-all so the sum invariant survives new event kinds.
    Other,
}

impl Segment {
    /// Every segment, in pipeline order.
    pub const ALL: [Segment; 7] = [
        Segment::Retransmit,
        Segment::TransportQueue,
        Segment::Fiber,
        Segment::HubQueue,
        Segment::Dma,
        Segment::Delivery,
        Segment::Other,
    ];

    /// Stable human-readable name (also the metrics key suffix).
    pub const fn label(self) -> &'static str {
        match self {
            Segment::Retransmit => "retransmit",
            Segment::TransportQueue => "transport_queue",
            Segment::Fiber => "fiber",
            Segment::HubQueue => "hub_queue",
            Segment::Dma => "dma",
            Segment::Delivery => "delivery",
            Segment::Other => "other",
        }
    }

    const fn index(self) -> usize {
        match self {
            Segment::Retransmit => 0,
            Segment::TransportQueue => 1,
            Segment::Fiber => 2,
            Segment::HubQueue => 3,
            Segment::Dma => 4,
            Segment::Delivery => 5,
            Segment::Other => 6,
        }
    }

    /// Which segment a gap ending in `kind` belongs to, or `None` when
    /// the event is not on the packet's datapath (it contributes to
    /// [`Segment::Other`]).
    fn for_gap_ending_in(kind: &EventKind) -> Segment {
        match kind {
            EventKind::FiberTx { .. } => Segment::TransportQueue,
            EventKind::CrossbarEnqueue { .. } => Segment::Fiber,
            EventKind::CrossbarForward { .. } => Segment::HubQueue,
            EventKind::DmaStart { .. } => Segment::Fiber,
            EventKind::DmaComplete { .. } => Segment::Dma,
            EventKind::AppRecv { .. } => Segment::Delivery,
            _ => Segment::Other,
        }
    }
}

/// One delivered flight's latency, attributed segment by segment.
#[derive(Clone, Copy, Debug)]
pub struct Breakdown {
    /// The flight this breakdown describes.
    pub flight: u64,
    /// End-to-end latency: first transmission of the stream slot to
    /// delivery. Always equals the sum of all segments.
    pub total: Dur,
    segs: [Dur; Segment::ALL.len()],
}

impl Breakdown {
    /// Time attributed to one segment.
    pub fn segment(&self, s: Segment) -> Dur {
        self.segs[s.index()]
    }

    /// Sum over all segments (equals [`Breakdown::total`] by
    /// construction; exposed so tests can assert the invariant).
    pub fn segment_sum(&self) -> Dur {
        self.segs.iter().copied().sum()
    }
}

/// Attributes one flight's latency, or `None` when the flight is not a
/// delivered unicast data flight with a recorded send (multicast,
/// control, undelivered, and malformed flights are skipped).
///
/// `first_send` is the stream slot's first transmission time from
/// [`FlightTable::first_send_of`]; pass `None` for transports without
/// retransmission (the flight's own send is used).
pub fn breakdown(flight: &Flight, first_send: Option<Time>) -> Option<Breakdown> {
    if flight.malformed() || flight.recv_count() != 1 || !flight.is_data() {
        return None;
    }
    let start =
        flight.events.iter().position(|e| matches!(e.kind, EventKind::TransportSend { .. }))?;
    let send_at = flight.events[start].at;
    let origin = first_send.unwrap_or(send_at).min(send_at);
    let mut segs = [Dur::ZERO; Segment::ALL.len()];
    segs[Segment::Retransmit.index()] = send_at - origin;
    let mut prev = send_at;
    for ev in &flight.events[start + 1..] {
        segs[Segment::for_gap_ending_in(&ev.kind).index()] += ev.at.saturating_since(prev);
        prev = prev.max(ev.at);
        if matches!(ev.kind, EventKind::AppRecv { .. }) {
            break;
        }
    }
    Some(Breakdown { flight: flight.id, total: prev - origin, segs })
}

/// Per-segment latency distributions over every attributable flight in
/// a capture — the "where did the time go" table.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    hists: Vec<Histogram>,
    total: Histogram,
    /// Flights that produced a breakdown.
    pub attributed: u64,
    /// Flights skipped (control, multicast, undelivered, malformed).
    pub skipped: u64,
}

impl CriticalPath {
    /// Builds the aggregate from every flight in a table.
    pub fn from_table(table: &FlightTable) -> CriticalPath {
        let mut cp = CriticalPath::default();
        for f in table.flights() {
            let first = f.stream_key().and_then(|k| table.first_send_of(k));
            match breakdown(f, first) {
                Some(b) => cp.add(&b),
                None => cp.skipped += 1,
            }
        }
        cp
    }

    /// Folds one flight's breakdown into the per-segment histograms.
    pub fn add(&mut self, b: &Breakdown) {
        if self.hists.is_empty() {
            self.hists = vec![Histogram::new(); Segment::ALL.len()];
        }
        for s in Segment::ALL {
            self.hists[s.index()].observe(b.segment(s).nanos());
        }
        self.total.observe(b.total.nanos());
        self.attributed += 1;
    }

    /// The distribution of one segment's per-flight durations, or
    /// `None` before any flight was added.
    pub fn segment_hist(&self, s: Segment) -> Option<&Histogram> {
        self.hists.get(s.index())
    }

    /// The distribution of end-to-end latencies.
    pub fn total_hist(&self) -> &Histogram {
        &self.total
    }

    /// Renders the per-segment table: one row per segment with mean,
    /// p50/p90/p99 and share of total mean time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.attributed == 0 {
            let _ = writeln!(
                out,
                "  no attributable flights ({} skipped: control/multicast/undelivered)",
                self.skipped
            );
            return out;
        }
        let total_mean = self.total.mean().max(1.0);
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "segment", "mean us", "p50 us", "p90 us", "p99 us", "share"
        );
        for s in Segment::ALL {
            let h = &self.hists[s.index()];
            if h.max() == 0 {
                continue; // segment never charged in this capture
            }
            let _ = writeln!(
                out,
                "  {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.1}%",
                s.label(),
                h.mean() / 1e3,
                h.quantile(0.50) / 1e3,
                h.quantile(0.90) / 1e3,
                h.quantile(0.99) / 1e3,
                100.0 * h.mean() / total_mean,
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.1}%",
            "end-to-end",
            self.total.mean() / 1e3,
            self.total.quantile(0.50) / 1e3,
            self.total.quantile(0.90) / 1e3,
            self.total.quantile(0.99) / 1e3,
            100.0,
        );
        let _ = writeln!(
            out,
            "  flights: {} attributed, {} skipped (control/multicast/undelivered)",
            self.attributed, self.skipped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{FlightId, TelemetryEvent};

    fn ev(ns: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: Time::from_nanos(ns), flight: FlightId(7), kind }
    }

    fn datapath_flight() -> Flight {
        Flight {
            id: 7,
            events: vec![
                ev(
                    1_000,
                    EventKind::TransportSend {
                        cab: 0,
                        peer: 1,
                        seq: 0,
                        bytes: 64,
                        retransmit: false,
                    },
                ),
                ev(1_400, EventKind::FiberTx { cab: 0, bytes: 98 }),
                ev(2_000, EventKind::CrossbarEnqueue { hub: 0, input: 2, bytes: 98 }),
                ev(2_300, EventKind::CrossbarForward { hub: 0, input: 2, output: 5, bytes: 98 }),
                ev(2_900, EventKind::DmaStart { cab: 1, channel: 0, bytes: 96 }),
                ev(4_000, EventKind::DmaComplete { cab: 1, channel: 0, bytes: 96 }),
                ev(9_000, EventKind::AppRecv { cab: 1, mailbox: 2, bytes: 64 }),
            ],
        }
    }

    #[test]
    fn segments_cover_the_pipeline() {
        let b = breakdown(&datapath_flight(), None).unwrap();
        assert_eq!(b.segment(Segment::TransportQueue), Dur::from_nanos(400));
        assert_eq!(b.segment(Segment::Fiber), Dur::from_nanos(600 + 600));
        assert_eq!(b.segment(Segment::HubQueue), Dur::from_nanos(300));
        assert_eq!(b.segment(Segment::Dma), Dur::from_nanos(1_100));
        assert_eq!(b.segment(Segment::Delivery), Dur::from_nanos(5_000));
        assert_eq!(b.segment(Segment::Retransmit), Dur::ZERO);
        assert_eq!(b.total, Dur::from_nanos(8_000));
        assert_eq!(b.segment_sum(), b.total);
    }

    #[test]
    fn retransmit_time_charged_to_delivered_copy() {
        let b = breakdown(&datapath_flight(), Some(Time::from_nanos(200))).unwrap();
        assert_eq!(b.segment(Segment::Retransmit), Dur::from_nanos(800));
        assert_eq!(b.total, Dur::from_nanos(8_800));
        assert_eq!(b.segment_sum(), b.total);
    }

    #[test]
    fn non_data_and_undelivered_are_skipped() {
        let mut control = datapath_flight();
        if let EventKind::TransportSend { bytes, .. } = &mut control.events[0].kind {
            *bytes = 0;
        }
        assert!(breakdown(&control, None).is_none());
        let mut undelivered = datapath_flight();
        undelivered.events.pop();
        assert!(breakdown(&undelivered, None).is_none());
    }

    #[test]
    fn render_lists_active_segments() {
        let mut cp = CriticalPath::default();
        cp.add(&breakdown(&datapath_flight(), None).unwrap());
        let s = cp.render();
        assert!(s.contains("delivery"));
        assert!(s.contains("end-to-end"));
        assert!(!s.contains("retransmit")); // never charged here
    }
}
