//! `nectar-doctor`: analyses over the flight recorder.
//!
//! The paper's instrumentation board (§4.1) existed because end-to-end
//! totals don't tell you *where* latency comes from — HUB queueing, CAB
//! protocol processing, or fiber serialization. This module family
//! closes the record → analyze → gate loop over the telemetry ring and
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry):
//!
//! * [`flights`] — folds the flat event stream into per-packet
//!   [`Flight`](flights::Flight) histories.
//! * [`critical_path`] — attributes every delivered flight's latency to
//!   pipeline segments whose durations sum *exactly* to the end-to-end
//!   time, then aggregates p50/p90/p99 per segment.
//! * [`pathology`] — detectors for retransmit storms, head-of-line
//!   blocking, mailbox saturation, and silent drops, each emitting a
//!   typed [`Finding`](pathology::Finding) with evidence.
//! * [`streaming`] — the same analysis as an incremental bounded-memory
//!   fold: flights retire into online accumulators as the run
//!   progresses, with periodic checkpoints a live consumer can poll.
//! * [`compare`] — the perf-regression gate: diffs two bench reports on
//!   deterministic simulated metrics with noise-aware tolerances.
//!
//! [`diagnose`] is the front door: events + metrics in, a rendered
//! [`DoctorReport`] out. When the telemetry ring overflowed during
//! capture (`telemetry.dropped_events > 0`), every finding is
//! downgraded to non-confident and the report says so — analyses over
//! truncated data must not assert.

pub mod compare;
pub mod critical_path;
pub mod flights;
pub mod pathology;
pub mod streaming;

use crate::metrics::MetricsRegistry;
use crate::telemetry::TelemetryEvent;
use critical_path::CriticalPath;
use flights::FlightTable;
use pathology::{DoctorConfig, Finding};
use std::fmt::Write as _;

/// Everything the doctor concluded about one capture.
#[derive(Clone, Debug)]
pub struct DoctorReport {
    /// Distinct flights reconstructed from the capture.
    pub flights: u64,
    /// Telemetry events lost to ring overflow during the capture
    /// (from the `telemetry.dropped_events` counter).
    pub dropped_events: u64,
    /// `false` when `dropped_events > 0`: the capture is truncated and
    /// every finding below is marked suspect.
    pub confident: bool,
    /// Per-segment latency attribution.
    pub critical_path: CriticalPath,
    /// Detected pathologies, most severe first.
    pub findings: Vec<Finding>,
}

impl DoctorReport {
    /// Renders the report: the "where did the time go" table followed
    /// by the findings (or a clean bill of health).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.confident {
            let _ = writeln!(
                out,
                "  !! telemetry ring dropped {} events — capture truncated, \
                 findings are suspect",
                self.dropped_events
            );
        }
        out.push_str(&self.critical_path.render());
        if self.findings.is_empty() {
            let _ = writeln!(out, "  findings: none");
        } else {
            let _ = writeln!(out, "  findings:");
            for f in &self.findings {
                let _ = writeln!(out, "    {f}");
            }
        }
        out
    }
}

/// Runs the full analysis with default thresholds. `metrics` feeds the
/// mailbox detector and the dropped-event check; pass `None` when only
/// the event stream is available.
pub fn diagnose(events: &[TelemetryEvent], metrics: Option<&MetricsRegistry>) -> DoctorReport {
    diagnose_with(events, metrics, &DoctorConfig::default())
}

/// [`diagnose`] with explicit detector thresholds.
pub fn diagnose_with(
    events: &[TelemetryEvent],
    metrics: Option<&MetricsRegistry>,
    cfg: &DoctorConfig,
) -> DoctorReport {
    let table = FlightTable::from_events(events);
    let critical_path = CriticalPath::from_table(&table);
    let mut findings = pathology::detect(&table, metrics, cfg);
    let dropped_events = metrics.map_or(0, |m| m.counter("telemetry.dropped_events"));
    let confident = dropped_events == 0;
    if !confident {
        for f in &mut findings {
            f.confident = false;
        }
    }
    DoctorReport { flights: table.len() as u64, dropped_events, confident, critical_path, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventKind, FlightId};
    use crate::time::Time;

    fn capture() -> Vec<TelemetryEvent> {
        let f = FlightId(1);
        vec![
            TelemetryEvent {
                at: Time::from_nanos(1_000),
                flight: f,
                kind: EventKind::TransportSend {
                    cab: 0,
                    peer: 1,
                    seq: 0,
                    bytes: 64,
                    retransmit: false,
                },
            },
            TelemetryEvent {
                at: Time::from_nanos(9_000),
                flight: f,
                kind: EventKind::AppRecv { cab: 1, mailbox: 0, bytes: 64 },
            },
        ]
    }

    #[test]
    fn clean_capture_is_confident() {
        let rep = diagnose(&capture(), None);
        assert!(rep.confident);
        assert_eq!(rep.flights, 1);
        assert_eq!(rep.critical_path.attributed, 1);
        assert!(rep.render().contains("findings: none"));
    }

    #[test]
    fn ring_overflow_downgrades_findings() {
        let mut m = MetricsRegistry::new();
        m.counter_add("telemetry.dropped_events", 17);
        m.gauge_max("mailbox.capacity_bytes", 1024.0);
        m.counter_add("cab0.mailbox_rejects", 2);
        m.gauge_max("cab0.mailbox.peak_bytes", 1024.0);
        let rep = diagnose(&capture(), Some(&m));
        assert!(!rep.confident);
        assert_eq!(rep.dropped_events, 17);
        assert!(rep.findings.iter().all(|f| !f.confident));
        assert!(rep.render().contains("capture truncated"));
    }
}
