//! Flight reconstruction: grouping the flat telemetry stream back into
//! per-packet causal histories.
//!
//! The flight recorder emits one flat, time-ordered stream of
//! [`TelemetryEvent`]s. Every analysis in this family starts by folding
//! that stream into a [`FlightTable`]: one [`Flight`] per packet id,
//! holding the packet's events in time order, plus a side index of the
//! *first* transmission time of every `(cab, peer, seq)` stream slot so
//! retransmission overhead can be attributed to the delivered copy.

use crate::telemetry::{EventKind, TelemetryEvent};
use crate::time::Time;
use std::collections::{BTreeMap, HashMap};

/// Identifies one slot of one transport instance: the sending CAB, the
/// peer it talks to, and the transport sequence number.
pub type StreamKey = (u16, u16, u32);

/// One packet's recorded life, oldest event first.
#[derive(Clone, Debug)]
pub struct Flight {
    /// The packet id minted by the sending CAB.
    pub id: u64,
    /// This flight's events, sorted by timestamp.
    pub events: Vec<TelemetryEvent>,
}

impl Flight {
    /// The `transport_send` event that started the flight, if recorded.
    pub fn send(&self) -> Option<&TelemetryEvent> {
        self.events.iter().find(|e| matches!(e.kind, EventKind::TransportSend { .. }))
    }

    /// The first `app_recv` delivery of this flight, if any.
    pub fn recv(&self) -> Option<&TelemetryEvent> {
        self.events.iter().find(|e| matches!(e.kind, EventKind::AppRecv { .. }))
    }

    /// Number of `app_recv` deliveries (more than one means multicast).
    pub fn recv_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::AppRecv { .. })).count()
    }

    /// `true` when the flight reached at least one application.
    pub fn delivered(&self) -> bool {
        self.recv().is_some()
    }

    /// `true` when the flight carried payload (control packets such as
    /// bare acknowledgments carry zero bytes and never deliver).
    pub fn is_data(&self) -> bool {
        matches!(self.send().map(|e| e.kind), Some(EventKind::TransportSend { bytes, .. }) if bytes > 0)
    }

    /// `true` when the flight was a retransmission of an earlier packet.
    pub fn is_retransmit(&self) -> bool {
        matches!(
            self.send().map(|e| e.kind),
            Some(EventKind::TransportSend { retransmit: true, .. })
        )
    }

    /// The `(cab, peer, seq)` transport slot this flight occupied.
    pub fn stream_key(&self) -> Option<StreamKey> {
        match self.send().map(|e| e.kind) {
            Some(EventKind::TransportSend { cab, peer, seq, .. }) => Some((cab, peer, seq)),
            _ => None,
        }
    }

    /// A flight should have exactly one `transport_send`. More than one
    /// means event streams from unrelated worlds were merged (packet
    /// ids collide across worlds); such flights are skipped by the
    /// breakdown rather than producing nonsense spans.
    pub fn malformed(&self) -> bool {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::TransportSend { .. })).count() > 1
    }
}

/// Every flight in a capture, plus stream-slot and ack indexes.
#[derive(Clone, Debug, Default)]
pub struct FlightTable {
    flights: BTreeMap<u64, Flight>,
    /// Earliest `transport_send` per stream slot (first transmission,
    /// before any retransmit).
    first_send: HashMap<StreamKey, Time>,
    /// Highest cumulative ack seen per `(sender, peer)` direction,
    /// indexed from the *sender's* point of view.
    acked: HashMap<(u16, u16), u32>,
    /// Timestamp of the last event in the capture.
    end: Time,
}

impl FlightTable {
    /// Folds a telemetry stream into per-flight histories. The input
    /// need not be sorted.
    pub fn from_events(events: &[TelemetryEvent]) -> FlightTable {
        let mut table = FlightTable::default();
        for ev in events {
            table.end = table.end.max(ev.at);
            if let EventKind::TransportAck { cab, peer, ack } = ev.kind {
                // `cab` received the ack, so it is the data sender.
                let high = table.acked.entry((cab, peer)).or_insert(0);
                *high = (*high).max(ack);
            }
            if !ev.flight.is_some() {
                continue;
            }
            if let EventKind::TransportSend { cab, peer, seq, .. } = ev.kind {
                table
                    .first_send
                    .entry((cab, peer, seq))
                    .and_modify(|t| *t = (*t).min(ev.at))
                    .or_insert(ev.at);
            }
            table
                .flights
                .entry(ev.flight.0)
                .or_insert_with(|| Flight { id: ev.flight.0, events: Vec::new() })
                .events
                .push(*ev);
        }
        for f in table.flights.values_mut() {
            f.events.sort_by_key(|e| e.at);
        }
        table
    }

    /// Flights in packet-id order.
    pub fn flights(&self) -> impl Iterator<Item = &Flight> {
        self.flights.values()
    }

    /// The flight with this packet id.
    pub fn get(&self, id: u64) -> Option<&Flight> {
        self.flights.get(&id)
    }

    /// Number of distinct flights seen.
    pub fn len(&self) -> usize {
        self.flights.len()
    }

    /// `true` when the capture contained no flights.
    pub fn is_empty(&self) -> bool {
        self.flights.is_empty()
    }

    /// First transmission time of a stream slot (across original send
    /// and every retransmission).
    pub fn first_send_of(&self, key: StreamKey) -> Option<Time> {
        self.first_send.get(&key).copied()
    }

    /// `true` when a cumulative ack from `peer` back to `cab` covers
    /// `seq` (the peer consumed the packet even if no delivery event
    /// was recorded, e.g. a mid-message fragment).
    pub fn acked(&self, cab: u16, peer: u16, seq: u32) -> bool {
        self.acked.get(&(cab, peer)).is_some_and(|&high| high > seq)
    }

    /// Timestamp of the last event in the capture (the observation
    /// horizon for "never delivered" judgments).
    pub fn capture_end(&self) -> Time {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::FlightId;

    fn ev(ns: u64, flight: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: Time::from_nanos(ns), flight: FlightId(flight), kind }
    }

    fn send(ns: u64, flight: u64, seq: u32, bytes: u32, retransmit: bool) -> TelemetryEvent {
        ev(ns, flight, EventKind::TransportSend { cab: 0, peer: 1, seq, bytes, retransmit })
    }

    #[test]
    fn groups_events_by_flight_and_sorts() {
        let events = vec![
            ev(900, 5, EventKind::AppRecv { cab: 1, mailbox: 2, bytes: 64 }),
            send(100, 5, 0, 64, false),
            send(150, 6, 1, 64, false),
        ];
        let t = FlightTable::from_events(&events);
        assert_eq!(t.len(), 2);
        let f = t.get(5).unwrap();
        assert_eq!(f.events.first().unwrap().at, Time::from_nanos(100));
        assert!(f.delivered());
        assert!(f.is_data());
        assert!(!t.get(6).unwrap().delivered());
    }

    #[test]
    fn first_send_survives_retransmission() {
        let events = vec![send(100, 5, 0, 64, false), send(900, 9, 0, 64, true)];
        let t = FlightTable::from_events(&events);
        assert_eq!(t.first_send_of((0, 1, 0)), Some(Time::from_nanos(100)));
        assert!(t.get(9).unwrap().is_retransmit());
        assert_eq!(t.get(9).unwrap().stream_key(), Some((0, 1, 0)));
    }

    #[test]
    fn acks_cover_sequences() {
        let events = vec![
            send(100, 5, 0, 64, false),
            ev(500, 77, EventKind::TransportAck { cab: 0, peer: 1, ack: 3 }),
        ];
        let t = FlightTable::from_events(&events);
        assert!(t.acked(0, 1, 0));
        assert!(t.acked(0, 1, 2));
        assert!(!t.acked(0, 1, 3));
        assert!(!t.acked(1, 0, 0));
    }

    #[test]
    fn merged_worlds_are_flagged_malformed() {
        let events = vec![send(100, 5, 0, 64, false), send(200, 5, 4, 64, false)];
        let t = FlightTable::from_events(&events);
        assert!(t.get(5).unwrap().malformed());
    }

    #[test]
    fn control_flights_are_not_data() {
        let events = vec![send(100, 5, 0, 0, false)];
        let t = FlightTable::from_events(&events);
        assert!(!t.get(5).unwrap().is_data());
        assert_eq!(t.capture_end(), Time::from_nanos(100));
    }
}
