//! Pathology detectors: rules over the flight table and metrics that
//! flag the network behaviors the paper's instrumentation board existed
//! to catch — retransmit storms, head-of-line blocking at HUB ports,
//! mailbox saturation, and silently dropped packets.
//!
//! Every detector emits a typed [`Finding`] carrying its evidence:
//! which flights, which port, which time window. Findings are
//! *downgraded* (`confident: false`) when the capture is known to be
//! truncated (telemetry ring overflow), so analyses over partial data
//! say so instead of asserting.

use super::flights::{Flight, FlightTable};
use crate::metrics::MetricsRegistry;
use crate::telemetry::EventKind;
use crate::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look; the system still made progress.
    Warn,
    /// The pathology measurably hurt latency or lost data.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "WARN",
            Severity::Critical => "CRIT",
        })
    }
}

/// One detected pathology, with the evidence that triggered it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired (stable identifier: `retransmit_storm`,
    /// `head_of_line`, `mailbox_saturation`, `reassembly_mismatch`,
    /// `silent_drops`).
    pub detector: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// `false` when the telemetry ring overflowed during capture, so
    /// the evidence may be incomplete.
    pub confident: bool,
    /// What happened, in one sentence, with the numbers.
    pub summary: String,
    /// The component the finding is about (`"stream 2->0"`,
    /// `"hub1 input 4"`, `"cab3 mailbox"`).
    pub subject: String,
    /// Simulated-time window the evidence spans, when meaningful.
    pub window: Option<(Time, Time)>,
    /// Implicated flight ids (capped at
    /// [`DoctorConfig::max_evidence`]; the summary has the full count).
    pub flights: Vec<u64>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {} — {}", self.severity, self.detector, self.subject, self.summary)?;
        if let Some((a, b)) = self.window {
            write!(f, " (window {a}..{})", Time::from_nanos(b.nanos()))?;
        }
        if !self.flights.is_empty() {
            write!(f, " flights {:?}", self.flights)?;
        }
        if !self.confident {
            write!(f, " [suspect: ring overflowed]")?;
        }
        Ok(())
    }
}

/// Detector thresholds. The defaults suit the repo's experiments; tune
/// per capture when hunting something specific.
#[derive(Clone, Debug)]
pub struct DoctorConfig {
    /// Retransmit storm: flag when resent data flights / all data
    /// flights exceeds this ratio.
    pub resend_ratio: f64,
    /// Retransmit storm: require at least this many resends.
    pub min_resends: usize,
    /// Head-of-line: flag a HUB input port when mean queue wait exceeds
    /// this multiple of the port's mean service time.
    pub hol_dominance: f64,
    /// Head-of-line: require at least this many forwarded packets.
    pub hol_min_samples: usize,
    /// Head-of-line: ignore ports whose mean wait is below this floor.
    pub hol_min_wait: Dur,
    /// Mailbox saturation: flag when peak bytes reach this fraction of
    /// capacity.
    pub mailbox_high_water: f64,
    /// Silent drops: ignore flights sent within this much of capture
    /// end (they may still legitimately be in flight).
    pub grace: Dur,
    /// Cap on flight ids attached to a finding.
    pub max_evidence: usize,
}

impl Default for DoctorConfig {
    fn default() -> DoctorConfig {
        DoctorConfig {
            resend_ratio: 0.25,
            min_resends: 3,
            hol_dominance: 2.0,
            hol_min_samples: 8,
            hol_min_wait: Dur::from_micros(2),
            mailbox_high_water: 0.9,
            grace: Dur::from_millis(1),
            max_evidence: 8,
        }
    }
}

/// Runs every detector over a capture. `metrics` feeds the mailbox
/// detector (the others work from the flight table alone).
pub fn detect(
    table: &FlightTable,
    metrics: Option<&MetricsRegistry>,
    cfg: &DoctorConfig,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    retransmit_storms(table, cfg, &mut findings);
    head_of_line(table, cfg, &mut findings);
    if let Some(m) = metrics {
        mailbox_saturation(m, cfg, &mut findings);
        reassembly_mismatches(m, &mut findings);
    }
    silent_drops(table, cfg, &mut findings);
    sort_findings(&mut findings);
    findings
}

/// Orders findings by (severity desc, subject, first implicated
/// flight, detector) — a total order over finding content, so report
/// output is byte-identical across shard counts and repeat runs even
/// when two findings share a subject.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| {
                let fa = a.flights.first().copied().unwrap_or(u64::MAX);
                let fb = b.flights.first().copied().unwrap_or(u64::MAX);
                fa.cmp(&fb)
            })
            .then_with(|| a.detector.cmp(b.detector))
    });
}

/// Per-stream-direction retransmit fold. One instance per (cab, peer);
/// flights can be folded in **any order** — evidence is the smallest
/// `max_evidence` resent flight ids regardless of arrival order, so
/// the post-hoc id-ascending walk and the streaming doctor's
/// retirement-order folds produce identical findings.
#[derive(Clone, Debug)]
pub(crate) struct StreamAcc {
    pub(crate) sends: usize,
    pub(crate) resends: usize,
    evidence: Vec<u64>,
    lo: Time,
    hi: Time,
}

impl StreamAcc {
    pub(crate) fn new() -> StreamAcc {
        StreamAcc { sends: 0, resends: 0, evidence: Vec::new(), lo: Time::MAX, hi: Time::ZERO }
    }

    /// Folds one data flight of the stream. `resend` carries the send
    /// time and flight id when the flight was a retransmission.
    pub(crate) fn add_data_flight(&mut self, resend: Option<(Time, u64)>, max_evidence: usize) {
        self.sends += 1;
        if let Some((at, id)) = resend {
            self.resends += 1;
            self.lo = self.lo.min(at);
            self.hi = self.hi.max(at);
            let pos = self.evidence.partition_point(|&e| e < id);
            if pos < max_evidence {
                self.evidence.insert(pos, id);
                self.evidence.truncate(max_evidence);
            }
        }
    }
}

/// Applies the storm thresholds to a folded stream.
pub(crate) fn storm_finding(
    cab: u16,
    peer: u16,
    acc: &StreamAcc,
    cfg: &DoctorConfig,
) -> Option<Finding> {
    let (sends, resends) = (acc.sends, acc.resends);
    if sends == 0 || resends < cfg.min_resends {
        return None;
    }
    let ratio = resends as f64 / sends as f64;
    if ratio < cfg.resend_ratio {
        return None;
    }
    let total = resends;
    Some(Finding {
        detector: "retransmit_storm",
        severity: if ratio >= 2.0 * cfg.resend_ratio { Severity::Critical } else { Severity::Warn },
        confident: true,
        summary: format!(
            "{resends} of {sends} data sends were go-back-N resends \
             ({:.0}% ≥ {:.0}% threshold; {total} resent flights)",
            100.0 * ratio,
            100.0 * cfg.resend_ratio
        ),
        subject: format!("stream {cab}->{peer}"),
        window: Some((acc.lo, acc.hi)),
        flights: acc.evidence.clone(),
    })
}

/// Folds one flight into the per-stream storm accumulators.
pub(crate) fn fold_storm(
    f: &Flight,
    streams: &mut BTreeMap<(u16, u16), StreamAcc>,
    cfg: &DoctorConfig,
) {
    if !f.is_data() {
        return;
    }
    let Some((cab, peer, _)) = f.stream_key() else { return };
    let at = f.send().map(|e| e.at).unwrap_or(Time::ZERO);
    let resend = f.is_retransmit().then_some((at, f.id));
    streams
        .entry((cab, peer))
        .or_insert_with(StreamAcc::new)
        .add_data_flight(resend, cfg.max_evidence);
}

/// Go-back-N resend ratio per stream direction.
fn retransmit_storms(table: &FlightTable, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let mut streams: BTreeMap<(u16, u16), StreamAcc> = BTreeMap::new();
    for f in table.flights() {
        fold_storm(f, &mut streams, cfg);
    }
    for ((cab, peer), acc) in &streams {
        out.extend(storm_finding(*cab, *peer, acc, cfg));
    }
}

/// Per-HUB-input queue-wait fold. Flights can be folded in any order:
/// the worst list keeps the top `max_evidence` samples under the total
/// order (wait desc, flight id), and the means are plain sums.
#[derive(Clone, Debug, Default)]
pub(crate) struct PortAcc {
    wait: Dur,
    service: Dur,
    pub(crate) n: usize,
    worst: Vec<(Dur, u64)>,
    lo: Option<Time>,
    hi: Option<Time>,
}

impl PortAcc {
    pub(crate) fn add_sample(
        &mut self,
        wait: Dur,
        service: Dur,
        enqueued: Time,
        flight: u64,
        max_evidence: usize,
    ) {
        self.wait += wait;
        self.service += service;
        self.n += 1;
        let key = (Reverse(wait), flight);
        let pos = self.worst.partition_point(|&(w, id)| (Reverse(w), id) < key);
        if pos < max_evidence {
            self.worst.insert(pos, (wait, flight));
            self.worst.truncate(max_evidence);
        }
        self.lo = Some(self.lo.map_or(enqueued, |t| t.min(enqueued)));
        self.hi = Some(self.hi.map_or(enqueued, |t| t.max(enqueued)));
    }
}

/// Applies the head-of-line thresholds to a folded port.
pub(crate) fn hol_finding(
    hub: u8,
    input: u8,
    port: &PortAcc,
    cfg: &DoctorConfig,
) -> Option<Finding> {
    if port.n < cfg.hol_min_samples {
        return None;
    }
    let mean_wait = port.wait / port.n as u64;
    let mean_service = port.service / port.n as u64;
    if mean_wait < cfg.hol_min_wait {
        return None;
    }
    let dominance = mean_wait.nanos() as f64 / mean_service.nanos().max(1) as f64;
    if dominance < cfg.hol_dominance {
        return None;
    }
    Some(Finding {
        detector: "head_of_line",
        severity: Severity::Warn,
        confident: true,
        summary: format!(
            "mean queue wait {mean_wait} is {dominance:.1}x mean service time \
             {mean_service} over {} packets",
            port.n
        ),
        subject: format!("hub{hub} input {input}"),
        window: port.lo.zip(port.hi),
        flights: port.worst.iter().map(|&(_, id)| id).collect(),
    })
}

/// Folds one flight's HUB hops into the per-port accumulators. The
/// flight's events must be in time order (flight tables keep them so).
pub(crate) fn fold_head_of_line(
    f: &Flight,
    ports: &mut BTreeMap<(u8, u8), PortAcc>,
    cfg: &DoctorConfig,
) {
    if f.malformed() {
        return;
    }
    let evs = &f.events;
    for (i, ev) in evs.iter().enumerate() {
        let EventKind::CrossbarEnqueue { hub, input, .. } = ev.kind else { continue };
        // Find this hop's forward and the event after it.
        let Some(fwd) = evs[i + 1..].iter().position(|e| {
            matches!(e.kind, EventKind::CrossbarForward { hub: h, input: p, .. }
                if h == hub && p == input)
        }) else {
            continue;
        };
        let fwd_idx = i + 1 + fwd;
        let wait = evs[fwd_idx].at.saturating_since(ev.at);
        // Service proxy: forward to the packet's next datapath event
        // (next hop arrival or receive DMA start).
        let service = evs[fwd_idx + 1..]
            .iter()
            .find(|e| {
                matches!(e.kind, EventKind::CrossbarEnqueue { .. } | EventKind::DmaStart { .. })
            })
            .map(|e| e.at.saturating_since(evs[fwd_idx].at))
            .unwrap_or(Dur::ZERO);
        ports.entry((hub, input)).or_default().add_sample(
            wait,
            service,
            ev.at,
            f.id,
            cfg.max_evidence,
        );
    }
}

/// Queue wait vs service time per HUB input port.
fn head_of_line(table: &FlightTable, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let mut ports: BTreeMap<(u8, u8), PortAcc> = BTreeMap::new();
    for f in table.flights() {
        fold_head_of_line(f, &mut ports, cfg);
    }
    for ((hub, input), port) in &ports {
        out.extend(hol_finding(*hub, *input, port, cfg));
    }
}

/// High-water marks and rejects from the metrics registry.
pub(crate) fn mailbox_saturation(m: &MetricsRegistry, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let capacity = m.gauge("mailbox.capacity_bytes").unwrap_or(0.0);
    for (name, peak) in m.gauges() {
        let Some(cab) = name.strip_prefix("cab").and_then(|r| {
            r.strip_suffix(".mailbox.peak_bytes").and_then(|c| c.parse::<usize>().ok())
        }) else {
            continue;
        };
        let rejects = m.counter(&format!("cab{cab}.mailbox_rejects"));
        let frac = if capacity > 0.0 { peak / capacity } else { 0.0 };
        if rejects == 0 && frac < cfg.mailbox_high_water {
            continue;
        }
        let severity = if rejects > 0 { Severity::Critical } else { Severity::Warn };
        out.push(Finding {
            detector: "mailbox_saturation",
            severity,
            confident: true,
            summary: if rejects > 0 {
                format!("{rejects} messages rejected; peak {peak:.0} B of {capacity:.0} B capacity")
            } else {
                format!("peak {peak:.0} B is {:.0}% of {capacity:.0} B capacity", 100.0 * frac)
            },
            subject: format!("cab{cab} mailbox"),
            window: None,
            flights: Vec::new(),
        });
    }
}

/// In-order packets whose fragment fields contradicted the in-progress
/// reassembly: corruption the checksum missed (or a protocol bug). The
/// transport drops and counts these instead of panicking; any nonzero
/// count deserves eyes, so there is no threshold.
pub(crate) fn reassembly_mismatches(m: &MetricsRegistry, out: &mut Vec<Finding>) {
    for (name, count) in m.counters() {
        let Some(cab) = name.strip_prefix("cab").and_then(|r| {
            r.strip_suffix(".transport.reassembly_mismatches").and_then(|c| c.parse::<usize>().ok())
        }) else {
            continue;
        };
        if count == 0 {
            continue;
        }
        out.push(Finding {
            detector: "reassembly_mismatch",
            severity: Severity::Critical,
            confident: true,
            summary: format!(
                "{count} in-order fragment(s) contradicted the in-progress reassembly \
                 (corruption past the checksum, or a framing bug); dropped, sender retransmits"
            ),
            subject: format!("cab{cab} transport"),
            window: None,
            flights: Vec::new(),
        });
    }
}

/// Data flights that vanished: never delivered, never acked, never
/// superseded by a retransmission, and old enough that "still in
/// flight" is not an excuse.
fn silent_drops(table: &FlightTable, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let horizon = table.capture_end();
    let mut lost: Vec<(Time, u64)> = Vec::new();
    for f in table.flights() {
        if !f.is_data() || f.delivered() || f.malformed() {
            continue;
        }
        let Some((cab, peer, seq)) = f.stream_key() else { continue };
        if table.acked(cab, peer, seq) {
            continue; // consumed (e.g. a mid-message fragment) or resend covered
        }
        let Some(at) = f.send().map(|e| e.at) else { continue };
        if at + cfg.grace > horizon {
            continue; // could still be in flight at capture end
        }
        lost.push((at, f.id));
    }
    // Flights superseded by retransmissions of the same slot are not
    // silent: drop them if ANY other flight shares the slot.
    let mut slot_counts: BTreeMap<(u16, u16, u32), usize> = BTreeMap::new();
    for f in table.flights() {
        if let Some(k) = f.stream_key() {
            if f.is_data() {
                *slot_counts.entry(k).or_insert(0) += 1;
            }
        }
    }
    lost.retain(|&(_, id)| {
        table
            .get(id)
            .and_then(|f| f.stream_key())
            .map(|k| slot_counts.get(&k).copied().unwrap_or(0) <= 1)
            .unwrap_or(true)
    });
    out.extend(silent_drop_finding(lost, cfg));
}

/// Builds the silent-drop finding from the surviving `(send time,
/// flight id)` candidates; `None` when the list is empty.
pub(crate) fn silent_drop_finding(
    mut lost: Vec<(Time, u64)>,
    cfg: &DoctorConfig,
) -> Option<Finding> {
    if lost.is_empty() {
        return None;
    }
    lost.sort();
    let (lo, hi) = (lost[0].0, lost[lost.len() - 1].0);
    let total = lost.len();
    Some(Finding {
        detector: "silent_drops",
        severity: Severity::Critical,
        confident: true,
        summary: format!(
            "{total} data flights were sent but never delivered, acked, or retransmitted"
        ),
        subject: "network".to_string(),
        window: Some((lo, hi)),
        flights: lost.into_iter().take(cfg.max_evidence).map(|(_, id)| id).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{FlightId, TelemetryEvent};

    fn ev(ns: u64, flight: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: Time::from_nanos(ns), flight: FlightId(flight), kind }
    }

    fn send(ns: u64, flight: u64, seq: u32, retransmit: bool) -> TelemetryEvent {
        ev(ns, flight, EventKind::TransportSend { cab: 0, peer: 1, seq, bytes: 64, retransmit })
    }

    fn recv(ns: u64, flight: u64) -> TelemetryEvent {
        ev(ns, flight, EventKind::AppRecv { cab: 1, mailbox: 0, bytes: 64 })
    }

    #[test]
    fn storm_detector_fires_with_flight_ids() {
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(send(100 + i, i, i as u32, false));
            events.push(recv(10_000 + i, i));
        }
        for i in 0..3u64 {
            events.push(send(20_000 + i, 100 + i, i as u32, true));
            events.push(recv(30_000 + i, 100 + i));
        }
        let table = FlightTable::from_events(&events);
        let findings = detect(&table, None, &DoctorConfig::default());
        let storm = findings.iter().find(|f| f.detector == "retransmit_storm").unwrap();
        assert_eq!(storm.flights, vec![100, 101, 102]);
        assert_eq!(storm.subject, "stream 0->1");
        assert_eq!(storm.severity, Severity::Warn);
    }

    #[test]
    fn quiet_capture_produces_no_findings() {
        let events = vec![send(100, 1, 0, false), recv(9_000, 1)];
        let table = FlightTable::from_events(&events);
        // grace: the lone undelivered case doesn't apply — it was delivered.
        assert!(detect(&table, None, &DoctorConfig::default()).is_empty());
    }

    #[test]
    fn head_of_line_flags_dominated_port() {
        let mut events = Vec::new();
        for i in 0..10u64 {
            let base = i * 100_000;
            events.push(send(base, i, i as u32, false));
            events.push(ev(
                base + 100,
                i,
                EventKind::CrossbarEnqueue { hub: 1, input: 4, bytes: 98 },
            ));
            // 30 us of queue wait, then forward...
            events.push(ev(
                base + 30_100,
                i,
                EventKind::CrossbarForward { hub: 1, input: 4, output: 2, bytes: 98 },
            ));
            // ...then only 1 us to the receive DMA: wait dominates.
            events.push(ev(
                base + 31_100,
                i,
                EventKind::DmaStart { cab: 1, channel: 0, bytes: 96 },
            ));
            events.push(recv(base + 40_000, i));
        }
        let table = FlightTable::from_events(&events);
        let findings = detect(&table, None, &DoctorConfig::default());
        let hol = findings.iter().find(|f| f.detector == "head_of_line").unwrap();
        assert_eq!(hol.subject, "hub1 input 4");
        assert_eq!(hol.flights.len(), 8); // capped at max_evidence
    }

    #[test]
    fn mailbox_rejects_are_critical() {
        let mut m = MetricsRegistry::new();
        m.gauge_max("mailbox.capacity_bytes", 1024.0);
        m.gauge_max("cab2.mailbox.peak_bytes", 1024.0);
        m.counter_add("cab2.mailbox_rejects", 5);
        let table = FlightTable::from_events(&[]);
        let findings = detect(&table, Some(&m), &DoctorConfig::default());
        let mb = findings.iter().find(|f| f.detector == "mailbox_saturation").unwrap();
        assert_eq!(mb.severity, Severity::Critical);
        assert_eq!(mb.subject, "cab2 mailbox");
    }

    #[test]
    fn reassembly_mismatch_is_flagged_from_metrics() {
        let mut m = MetricsRegistry::new();
        m.counter_add("cab3.transport.reassembly_mismatches", 2);
        m.counter_add("cab1.transport.reassembly_mismatches", 0); // zero: quiet
        let table = FlightTable::from_events(&[]);
        let findings = detect(&table, Some(&m), &DoctorConfig::default());
        let hits: Vec<_> =
            findings.iter().filter(|f| f.detector == "reassembly_mismatch").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "cab3 transport");
        assert_eq!(hits[0].severity, Severity::Critical);
    }

    #[test]
    fn silent_drop_detected_past_grace() {
        let mut events = vec![send(100, 1, 0, false)];
        // A later event pushes the horizon far past the grace window.
        events.push(send(10_000_000, 2, 1, false));
        events.push(recv(10_000_500, 2));
        let table = FlightTable::from_events(&events);
        let findings = detect(&table, None, &DoctorConfig::default());
        let drop = findings.iter().find(|f| f.detector == "silent_drops").unwrap();
        assert_eq!(drop.flights, vec![1]);
    }

    #[test]
    fn retransmitted_slot_is_not_a_silent_drop() {
        let events = vec![
            send(100, 1, 0, false),
            send(5_000_100, 2, 0, true),
            recv(5_000_500, 2),
            send(10_000_000, 3, 1, false),
            recv(10_000_500, 3),
        ];
        let table = FlightTable::from_events(&events);
        let findings = detect(&table, None, &DoctorConfig::default());
        assert!(findings.iter().all(|f| f.detector != "silent_drops"));
    }
}
