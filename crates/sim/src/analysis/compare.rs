//! The perf-regression gate: diff two `BENCH_sim.json`-shaped reports
//! with noise-aware tolerances.
//!
//! The gate always compares **deterministic simulated quantities** —
//! per-experiment histogram quantiles (simulated nanoseconds) and event
//! counts. Because the simulation is deterministic, an identical re-run
//! produces *identical* simulated metrics; the tolerances exist so
//! intentional small model changes don't demand a baseline refresh.
//!
//! Wall-clock throughput (`events_per_sec`) is machine-dependent, so it
//! is gated **only when the two reports are comparable**: both carry a
//! structured `host` member (written by `report` since the batched
//! sharded runner landed), both hosts have at least 2 usable cores, and
//! the core counts match. Single-core hosts are excluded because the
//! parallel runner cannot be expected to hold throughput there, and
//! mismatched hosts because the comparison would gate the hardware, not
//! the code. `wall_ms` stays informational always.

use crate::json::Json;
use std::fmt::Write as _;

/// Gate tolerances.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Relative tolerance on histogram quantiles (p50/p99) before a
    /// change counts as a regression or improvement.
    pub latency_tolerance: f64,
    /// Relative tolerance on per-experiment event counts.
    pub events_tolerance: f64,
    /// Baselines below this absolute value are skipped — relative
    /// deltas on tiny numbers are noise (e.g. a 3-event experiment).
    pub noise_floor: f64,
    /// Relative tolerance on `events_per_sec` when the hosts are
    /// comparable (see the module docs). Wide by design: even matched
    /// multi-core hosts jitter, and this gate exists to catch
    /// *collapses* — a sharded run falling off a cliff — not
    /// single-digit-percent noise.
    pub throughput_tolerance: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            latency_tolerance: 0.20,
            events_tolerance: 0.25,
            noise_floor: 64.0,
            throughput_tolerance: 0.50,
        }
    }
}

/// What happened to one metric between baseline and current.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Got better by more than the tolerance.
    Improved,
    /// Got worse by more than the tolerance — the gate fails.
    Regressed,
    /// Present in the baseline, absent from the current run — treated
    /// as a regression (coverage must not silently shrink).
    Missing,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Experiment id (`e03`, `e14`, ...).
    pub experiment: String,
    /// Metric name (`latency.flight_ns.p50`, `events`, ...).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (0 when missing).
    pub current: f64,
    /// The gate's judgment.
    pub verdict: Verdict,
}

/// The full diff between a baseline and a current report.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Every compared metric, in report order.
    pub deltas: Vec<Delta>,
    /// Metrics skipped as below the noise floor.
    pub skipped: usize,
    /// Experiments present in only one of the two reports.
    pub uncompared: Vec<String>,
}

impl CompareReport {
    /// Number of regressions (including missing metrics).
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Regressed | Verdict::Missing))
            .count()
    }

    /// Number of metrics that improved past the tolerance.
    pub fn improvements(&self) -> usize {
        self.deltas.iter().filter(|d| d.verdict == Verdict::Improved).count()
    }

    /// `true` when the gate passes (no regressions).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Renders the diff as an aligned table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<34} {:>14} {:>14} {:>8}  verdict",
            "exp", "metric", "baseline", "current", "delta"
        );
        for d in &self.deltas {
            if d.verdict == Verdict::Ok {
                continue;
            }
            let rel =
                if d.baseline != 0.0 { 100.0 * (d.current - d.baseline) / d.baseline } else { 0.0 };
            let _ = writeln!(
                out,
                "{:<6} {:<34} {:>14.1} {:>14.1} {:>+7.1}%  {}",
                d.experiment,
                d.metric,
                d.baseline,
                d.current,
                rel,
                match d.verdict {
                    Verdict::Ok => "ok",
                    Verdict::Improved => "improved",
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Missing => "MISSING",
                },
            );
        }
        for exp in &self.uncompared {
            let _ = writeln!(out, "{exp:<6} (present in only one report — not compared)");
        }
        let _ = writeln!(
            out,
            "compared {} metrics ({} below noise floor skipped): \
             {} regression(s), {} improvement(s) -> {}",
            self.deltas.len(),
            self.skipped,
            self.regressions(),
            self.improvements(),
            if self.passed() { "PASS" } else { "FAIL" },
        );
        out
    }
}

/// Whether wall-clock throughput from these two reports may be
/// compared: both declare a host, both hosts have at least 2 usable
/// cores, and the counts match.
fn hosts_comparable(baseline: &Json, current: &Json) -> bool {
    let cores = |r: &Json| r.get("host").and_then(|h| h.get("cores")).and_then(Json::as_f64);
    match (cores(baseline), cores(current)) {
        (Some(b), Some(c)) => b >= 2.0 && c >= 2.0 && b == c,
        _ => false,
    }
}

fn experiments(report: &Json) -> Vec<(&str, &Json)> {
    report
        .get("experiments")
        .and_then(Json::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|e| e.get("id").and_then(Json::as_str).map(|id| (id, e)))
                .collect()
        })
        .unwrap_or_default()
}

/// Pulls the gated metrics out of one experiment entry: the event count
/// plus p50/p99 of every histogram.
fn gated_metrics(exp: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(events) = exp.get("events").and_then(Json::as_f64) {
        out.push(("events".to_string(), events));
    }
    if let Some(hists) =
        exp.get("metrics").and_then(|m| m.get("histograms")).and_then(Json::as_object)
    {
        for (name, h) in hists {
            for q in ["p50", "p99"] {
                if let Some(v) = h.get(q).and_then(Json::as_f64) {
                    out.push((format!("{name}.{q}"), v));
                }
            }
        }
    }
    out
}

/// Diffs two parsed bench reports. Errors when the reports share no
/// experiments (a gate that compares nothing must not pass silently).
pub fn compare(
    baseline: &Json,
    current: &Json,
    cfg: &CompareConfig,
) -> Result<CompareReport, String> {
    let base_exps = experiments(baseline);
    let cur_exps = experiments(current);
    let gate_throughput = hosts_comparable(baseline, current);
    let mut report = CompareReport::default();
    let mut compared_any = false;
    for (id, base_exp) in &base_exps {
        let Some((_, cur_exp)) = cur_exps.iter().find(|(cid, _)| cid == id) else {
            report.uncompared.push(id.to_string());
            continue;
        };
        compared_any = true;
        if gate_throughput {
            let eps = |e: &Json| e.get("events_per_sec").and_then(Json::as_f64);
            if let Some(base_v) = eps(base_exp) {
                if base_v < cfg.noise_floor {
                    report.skipped += 1;
                } else {
                    // Polarity is inverted vs the simulated metrics:
                    // for throughput, *lower* is the regression.
                    let (current_v, verdict) = match eps(cur_exp) {
                        None => (0.0, Verdict::Missing),
                        Some(v) => {
                            let rel = (v - base_v) / base_v;
                            let verdict = if rel < -cfg.throughput_tolerance {
                                Verdict::Regressed
                            } else if rel > cfg.throughput_tolerance {
                                Verdict::Improved
                            } else {
                                Verdict::Ok
                            };
                            (v, verdict)
                        }
                    };
                    report.deltas.push(Delta {
                        experiment: id.to_string(),
                        metric: "events_per_sec".to_string(),
                        baseline: base_v,
                        current: current_v,
                        verdict,
                    });
                }
            }
        }
        let cur_metrics = gated_metrics(cur_exp);
        for (metric, base_v) in gated_metrics(base_exp) {
            if base_v < cfg.noise_floor {
                report.skipped += 1;
                continue;
            }
            let tol = if metric == "events" { cfg.events_tolerance } else { cfg.latency_tolerance };
            let (current_v, verdict) =
                match cur_metrics.iter().find(|(m, _)| *m == metric).map(|&(_, v)| v) {
                    None => (0.0, Verdict::Missing),
                    Some(v) => {
                        let rel = (v - base_v) / base_v;
                        let verdict = if rel > tol {
                            Verdict::Regressed
                        } else if rel < -tol {
                            Verdict::Improved
                        } else {
                            Verdict::Ok
                        };
                        (v, verdict)
                    }
                };
            report.deltas.push(Delta {
                experiment: id.to_string(),
                metric,
                baseline: base_v,
                current: current_v,
                verdict,
            });
        }
    }
    for (id, _) in &cur_exps {
        if !base_exps.iter().any(|(bid, _)| bid == id) {
            report.uncompared.push(id.to_string());
        }
    }
    if !compared_any {
        return Err(
            "baseline and current reports share no experiments — nothing to gate".to_string()
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn report(p50: f64, p99: f64, events: f64) -> Json {
        parse(&format!(
            r#"{{"experiments": [{{"id": "e03", "events": {events},
                "metrics": {{"histograms": {{"latency.flight_ns":
                  {{"count": 100, "p50": {p50}, "p99": {p99}}}}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_rerun_passes() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let rep = compare(&base, &base, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        assert_eq!(rep.regressions(), 0);
    }

    #[test]
    fn doubled_latency_fails() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let slow = report(40_000.0, 50_000.0, 5_000.0);
        let rep = compare(&base, &slow, &CompareConfig::default()).unwrap();
        assert!(!rep.passed());
        assert_eq!(rep.regressions(), 2); // p50 and p99
        assert!(rep.render().contains("REGRESSED"));
    }

    #[test]
    fn halved_latency_is_an_improvement_not_a_failure() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let fast = report(10_000.0, 12_500.0, 5_000.0);
        let rep = compare(&base, &fast, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        assert_eq!(rep.improvements(), 2);
    }

    #[test]
    fn missing_histogram_is_a_regression() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let gutted = parse(r#"{"experiments": [{"id": "e03", "events": 5000}]}"#).unwrap();
        let rep = compare(&base, &gutted, &CompareConfig::default()).unwrap();
        assert!(!rep.passed());
        assert!(rep.deltas.iter().any(|d| d.verdict == Verdict::Missing));
    }

    #[test]
    fn tiny_baselines_are_skipped() {
        let base = report(20.0, 30.0, 10.0);
        let wild = report(400.0, 900.0, 63.0);
        let rep = compare(&base, &wild, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        assert_eq!(rep.skipped, 3);
    }

    #[test]
    fn disjoint_reports_error() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let other = parse(r#"{"experiments": [{"id": "e14", "events": 5000}]}"#).unwrap();
        assert!(compare(&base, &other, &CompareConfig::default()).is_err());
    }

    fn hosted(cores: u32, eps: f64) -> Json {
        parse(&format!(
            r#"{{"host": {{"cores": {cores}, "online": {cores}, "pinned": false, "repeat": 1}},
                "experiments": [{{"id": "e26", "events": 5000, "events_per_sec": {eps}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn throughput_collapse_on_matching_multicore_hosts_fails() {
        let base = hosted(8, 1_000_000.0);
        let slow = hosted(8, 300_000.0);
        let rep = compare(&base, &slow, &CompareConfig::default()).unwrap();
        assert!(!rep.passed());
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.metric == "events_per_sec" && d.verdict == Verdict::Regressed));
    }

    #[test]
    fn throughput_jitter_on_matching_hosts_passes() {
        let base = hosted(8, 1_000_000.0);
        let ok = hosted(8, 800_000.0);
        let rep = compare(&base, &ok, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
    }

    #[test]
    fn throughput_is_not_gated_across_mismatched_hosts() {
        let base = hosted(8, 1_000_000.0);
        let other = hosted(2, 100_000.0);
        let rep = compare(&base, &other, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        assert!(!rep.deltas.iter().any(|d| d.metric == "events_per_sec"));
    }

    #[test]
    fn throughput_is_not_gated_on_single_core_or_hostless_reports() {
        let single = hosted(1, 1_000_000.0);
        let slow_single = hosted(1, 10_000.0);
        let rep = compare(&single, &slow_single, &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        // Legacy baselines carry no host member at all.
        let legacy =
            parse(r#"{"experiments": [{"id": "e26", "events": 5000, "events_per_sec": 9.0}]}"#)
                .unwrap();
        let rep = compare(&legacy, &hosted(8, 1_000_000.0), &CompareConfig::default()).unwrap();
        assert!(rep.passed());
        assert!(!rep.deltas.iter().any(|d| d.metric == "events_per_sec"));
    }

    #[test]
    fn event_count_growth_beyond_tolerance_fails() {
        let base = report(20_000.0, 25_000.0, 5_000.0);
        let bloated = report(20_000.0, 25_000.0, 9_000.0);
        let rep = compare(&base, &bloated, &CompareConfig::default()).unwrap();
        assert!(!rep.passed());
    }
}
