//! Deterministic pseudo-random numbers for workloads.
//!
//! Simulation runs must be reproducible bit-for-bit from a seed, so the
//! workload generators use this self-contained xoshiro256** generator
//! rather than an OS-seeded source.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::rng::Rng;
//!
//! let mut a = Rng::seed_from(42);
//! let mut b = Rng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let dice = a.range(1..=6);
//! assert!((1..=6).contains(&dice));
//! ```

use core::ops::RangeInclusive;

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not be seeded all-zero; SplitMix64 of any seed isn't.
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in the inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, r: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Debiased modulo via rejection sampling.
        let span1 = span + 1;
        let zone = u64::MAX - (u64::MAX - span) % span1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span1;
            }
        }
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.f64() < p
    }

    /// An exponentially distributed sample with the given mean
    /// (for Poisson inter-arrival times in workload generators).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Chooses a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.range(0..=(slice.len() as u64 - 1)) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(0..=i as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Rng::seed_from(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(10..=13);
            assert!((10..=13).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(4);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = Rng::seed_from(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(100.0)).sum();
        let mean = sum / n as f64;
        assert!((90.0..110.0).contains(&mean), "sample mean {mean} too far from 100");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from(8);
        let mut v: Vec<u32> = (0..16).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(v, (0..16).collect::<Vec<_>>(), "16 elements should move under this seed");
    }

    #[test]
    fn choose_picks_members() {
        let mut r = Rng::seed_from(9);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = Rng::seed_from(1);
        #[allow(clippy::reversed_empty_ranges)]
        let _ = r.range(5..=4);
    }
}
