//! Shared parsing helpers for the textual spec grammars (chaos fault
//! programs, workload traffic programs).
//!
//! Both grammars are parse/print round-trippable clause languages, and
//! both take durations, probabilities, and nested-paren argument
//! lists. The helpers here are *hardened*: probabilities outside
//! `[0, 1]` or non-finite, and durations whose nanosecond value would
//! overflow a `u64`, are rejected with a clear message instead of
//! silently producing nonsense programs (`loss(1.5)` used to behave
//! as always-drop; `flap(99999999999999s,..)` used to wrap).

use crate::time::Dur;

/// Renders a duration in the largest unit that divides it exactly
/// (`1500000ns` → `1500us`). Inverse of [`parse_dur`].
pub fn fmt_dur(d: Dur) -> String {
    let ns = d.nanos();
    if ns == 0 {
        "0ns".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Parses a duration with a `ns`/`us`/`ms`/`s` suffix. The
/// digits→nanoseconds conversion is checked: values that would
/// overflow `u64` nanoseconds are a parse error, never a silent wrap.
pub fn parse_dur(s: &str) -> Result<Dur, String> {
    let s = s.trim();
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(format!("duration `{s}` needs a ns/us/ms/s suffix"));
    };
    let n: u64 = digits.trim().parse().map_err(|_| format!("bad duration `{s}`"))?;
    let ns = n.checked_mul(mult).ok_or_else(|| format!("duration `{s}` overflows u64 ns"))?;
    Ok(Dur::from_nanos(ns))
}

/// Parses a finite `f64`. `NaN`/`inf` (which `str::parse` happily
/// accepts) are rejected — a schedule with a NaN rate is never what
/// anyone meant.
pub fn parse_f64(s: &str) -> Result<f64, String> {
    let v: f64 = s.trim().parse().map_err(|_| format!("bad number `{s}`"))?;
    if !v.is_finite() {
        return Err(format!("number `{}` must be finite", s.trim()));
    }
    Ok(v)
}

/// Parses a probability: a finite `f64` in `[0, 1]`. Out-of-range
/// rates (`loss(1.5)`, `loss(-0.1)`) are a parse error with the
/// offending token named, not a silently saturating schedule.
pub fn parse_prob(s: &str) -> Result<f64, String> {
    let v = parse_f64(s)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("probability `{}` must be within [0, 1]", s.trim()));
    }
    Ok(v)
}

/// Splits `s` on top-level commas — commas nested inside parentheses
/// stay put, so `poisson(50us),fixed(32)` splits into two fields.
/// Returns an empty list for an all-whitespace input.
pub fn split_top(s: &str) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1).ok_or_else(|| format!("unbalanced `)` in `{s}`"))?
            }
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(format!("unbalanced `(` in `{s}`"));
    }
    out.push(&s[start..]);
    if out.len() == 1 && out[0].trim().is_empty() {
        return Ok(Vec::new());
    }
    Ok(out)
}

/// Splits `kind(a,b,c)` into `("kind", ["a", "b", "c"])`; a bare
/// `kind` has no arguments. The argument split is top-level only
/// (see [`split_top`]), so arguments may themselves be calls.
pub fn parse_call(s: &str) -> Result<(&str, Vec<&str>), String> {
    let s = s.trim();
    match s.find('(') {
        Some(i) => {
            let inner = s[i..]
                .strip_prefix('(')
                .and_then(|a| a.strip_suffix(')'))
                .ok_or_else(|| format!("unterminated args in `{s}`"))?;
            Ok((s[..i].trim(), split_top(inner)?))
        }
        None => Ok((s, Vec::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_round_trip() {
        for s in ["0ns", "1ns", "999ns", "1us", "1500us", "3ms", "2s"] {
            assert_eq!(fmt_dur(parse_dur(s).unwrap()), s);
        }
    }

    #[test]
    fn duration_overflow_is_an_error() {
        assert!(parse_dur("99999999999999s").is_err());
        assert!(parse_dur("18446744073709551615ns").is_ok(), "u64::MAX ns itself fits");
        assert!(parse_dur("18446744073709551615us").is_err());
    }

    #[test]
    fn probabilities_are_validated() {
        assert_eq!(parse_prob("0.5").unwrap(), 0.5);
        assert_eq!(parse_prob("0").unwrap(), 0.0);
        assert_eq!(parse_prob("1").unwrap(), 1.0);
        for bad in ["1.5", "-0.1", "NaN", "inf", "-inf", "x"] {
            assert!(parse_prob(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn f64_rejects_non_finite() {
        assert!(parse_f64("2.5").is_ok());
        for bad in ["NaN", "nan", "inf", "-inf", "infinity"] {
            assert!(parse_f64(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn top_level_split_respects_parens() {
        assert_eq!(split_top("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_top("f(x,y),g(z)").unwrap(), vec!["f(x,y)", "g(z)"]);
        assert_eq!(split_top("").unwrap(), Vec::<&str>::new());
        assert!(split_top("f(x").is_err());
        assert!(split_top("f)x(").is_err());
    }

    #[test]
    fn calls_parse() {
        assert_eq!(parse_call("uniform").unwrap(), ("uniform", vec![]));
        assert_eq!(parse_call("fixed(32)").unwrap(), ("fixed", vec!["32"]));
        let (k, args) = parse_call("bursty(50us,200us,800us)").unwrap();
        assert_eq!(k, "bursty");
        assert_eq!(args, vec!["50us", "200us", "800us"]);
        assert!(parse_call("fixed(32").is_err());
    }
}
