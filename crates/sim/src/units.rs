//! Bandwidth and data-size units.
//!
//! The paper quotes link and bus speeds in two unit families:
//! fibers in megabits per second (100 Mbit/s per TAXI-driven fiber) and
//! memories/buses in megabytes per second (66 MB/s CAB data memory,
//! 10 MB/s VME). [`Bandwidth`] stores bits per second and converts a
//! byte count into the [`Dur`] the transfer occupies the medium.
//!
//! # Examples
//!
//! ```
//! use nectar_sim::units::Bandwidth;
//!
//! let fiber = Bandwidth::from_mbit_per_sec(100);
//! // 1 byte = 8 bits at 100 Mbit/s = 80 ns on the wire.
//! assert_eq!(fiber.transfer_time(1).nanos(), 80);
//! assert_eq!(fiber.transfer_time(1024).nanos(), 81_920);
//! ```

use crate::time::Dur;
use core::fmt;

/// A transfer rate in bits per second.
///
/// # Examples
///
/// ```
/// use nectar_sim::units::Bandwidth;
/// let vme = Bandwidth::from_mbyte_per_sec(10);
/// assert_eq!(vme.bits_per_sec(), 80_000_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth of `bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero: a zero-rate medium would imply infinite
    /// transfer times.
    pub fn from_bits_per_sec(bps: u64) -> Bandwidth {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Creates a bandwidth of `mbps` megabits per second (10^6 bits).
    pub fn from_mbit_per_sec(mbps: u64) -> Bandwidth {
        Bandwidth::from_bits_per_sec(mbps * 1_000_000)
    }

    /// Creates a bandwidth of `gbps` gigabits per second (10^9 bits).
    pub fn from_gbit_per_sec(gbps: u64) -> Bandwidth {
        Bandwidth::from_bits_per_sec(gbps * 1_000_000_000)
    }

    /// Creates a bandwidth of `mbs` megabytes per second (10^6 bytes).
    pub fn from_mbyte_per_sec(mbs: u64) -> Bandwidth {
        Bandwidth::from_bits_per_sec(mbs * 8_000_000)
    }

    /// The rate in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// The rate in megabits per second, as a float (for reporting).
    pub fn as_mbit_per_sec_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The rate in megabytes per second, as a float (for reporting).
    pub fn as_mbyte_per_sec_f64(self) -> f64 {
        self.0 as f64 / 8e6
    }

    /// Time this medium is occupied transferring `bytes` bytes, rounded
    /// up to the next nanosecond (a transfer never completes early).
    ///
    /// # Examples
    ///
    /// ```
    /// use nectar_sim::units::Bandwidth;
    /// let bw = Bandwidth::from_mbit_per_sec(100);
    /// assert_eq!(bw.transfer_time(0).nanos(), 0);
    /// assert_eq!(bw.transfer_time(125).nanos(), 10_000); // 1000 bits
    /// ```
    pub fn transfer_time(self, bytes: usize) -> Dur {
        let bits = bytes as u128 * 8;
        // ceil(bits * 1e9 / bps)
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Dur::from_nanos(u64::try_from(ns).expect("transfer time overflows u64 nanoseconds"))
    }

    /// Bytes that can cross this medium in `d`, rounded down.
    ///
    /// # Examples
    ///
    /// ```
    /// use nectar_sim::{time::Dur, units::Bandwidth};
    /// let bw = Bandwidth::from_mbit_per_sec(100);
    /// assert_eq!(bw.bytes_in(Dur::from_micros(10)), 125);
    /// ```
    pub fn bytes_in(self, d: Dur) -> usize {
        let bits = d.nanos() as u128 * self.0 as u128 / 1_000_000_000;
        usize::try_from(bits / 8).unwrap_or(usize::MAX)
    }

    /// Splits this bandwidth evenly across `n` concurrent consumers.
    ///
    /// Used by the CAB memory model when several DMA channels contend
    /// for the 66 MB/s data memory.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shared_by(self, n: usize) -> Bandwidth {
        assert!(n > 0, "cannot share bandwidth among zero consumers");
        Bandwidth((self.0 / n as u64).max(1))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} Gbit/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} Mbit/s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{} bit/s", self.0)
        }
    }
}

/// Formats a byte count with a binary-unit suffix for reports.
///
/// # Examples
///
/// ```
/// assert_eq!(nectar_sim::units::fmt_bytes(1024), "1.0 KiB");
/// assert_eq!(nectar_sim::units::fmt_bytes(500), "500 B");
/// ```
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_rate_matches_paper() {
        // 100 Mbit/s fiber: a 1 KB packet occupies the wire for 81.92 us.
        let fiber = Bandwidth::from_mbit_per_sec(100);
        assert_eq!(fiber.transfer_time(1024), Dur::from_nanos(81_920));
    }

    #[test]
    fn aggregate_backplane_rate() {
        // 16 ports x 100 Mbit/s = 1.6 Gbit/s aggregate (paper abstract).
        let agg = Bandwidth::from_bits_per_sec(16 * 100_000_000);
        assert_eq!(agg.as_mbit_per_sec_f64(), 1600.0);
    }

    #[test]
    fn byte_units() {
        let vme = Bandwidth::from_mbyte_per_sec(10);
        // 10 MB/s = 100 ns per byte.
        assert_eq!(vme.transfer_time(1), Dur::from_nanos(100));
        assert_eq!(vme.as_mbyte_per_sec_f64(), 10.0);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 bytes at 7 bit/ns-ish rates must round up, never down.
        let bw = Bandwidth::from_bits_per_sec(3_000_000_000);
        // 24 bits / 3e9 bps = 8 ns exactly.
        assert_eq!(bw.transfer_time(3), Dur::from_nanos(8));
        let odd = Bandwidth::from_bits_per_sec(7_000_000_000);
        // 24 / 7 ns = 3.43 -> 4 ns.
        assert_eq!(odd.transfer_time(3), Dur::from_nanos(4));
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::from_mbit_per_sec(100);
        for &n in &[1usize, 10, 128, 1024, 65536] {
            let t = bw.transfer_time(n);
            assert!(bw.bytes_in(t) >= n);
        }
    }

    #[test]
    fn sharing_divides_rate() {
        let mem = Bandwidth::from_mbyte_per_sec(66);
        assert_eq!(mem.shared_by(2).bits_per_sec(), mem.bits_per_sec() / 2);
        assert_eq!(mem.shared_by(1), mem);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bits_per_sec(0);
    }

    #[test]
    fn display() {
        assert_eq!(Bandwidth::from_mbit_per_sec(100).to_string(), "100.00 Mbit/s");
        assert_eq!(Bandwidth::from_gbit_per_sec(2).to_string(), "2.00 Gbit/s");
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(Bandwidth::from_mbit_per_sec(1).transfer_time(0), Dur::ZERO);
    }
}
