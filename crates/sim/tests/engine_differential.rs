//! Differential property test: the slab-indexed engine against a
//! naive reference model.
//!
//! The reference keeps pending events in a plain `Vec` and scans for
//! the `(at, seq)` minimum on every delivery — too slow to ship,
//! trivially correct by inspection. Random interleavings of schedule,
//! cancel, step, batch-drain, and clock advancement must produce
//! identical delivery order, clocks, cancel results, and peeks on both
//! implementations.

use nectar_sim::engine::{Engine, EventId};
use nectar_sim::time::{Dur, Time};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Schedule {
        delay: u64,
    },
    /// Cancel a previously issued handle (live, fired, or cancelled).
    Cancel {
        pick: usize,
    },
    Step,
    StepBatch,
    Advance {
        delta: u64,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..500).prop_map(|delay| Op::Schedule { delay }),
        (0usize..1024).prop_map(|pick| Op::Cancel { pick }),
        Just(Op::Step),
        Just(Op::StepBatch),
        (1u64..300).prop_map(|delta| Op::Advance { delta }),
    ]
}

/// The obviously-correct scheduler: linear scan for the minimum.
struct Model {
    now: Time,
    /// `(at, seq)`; the sequence number doubles as the payload.
    pending: Vec<(Time, u64)>,
}

impl Model {
    fn new() -> Model {
        Model { now: Time::ZERO, pending: Vec::new() }
    }

    fn schedule(&mut self, at: Time, seq: u64) {
        self.pending.push((at, seq));
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s)| s == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn min_index(&self) -> Option<usize> {
        (0..self.pending.len()).min_by_key(|&i| self.pending[i])
    }

    fn peek_time(&self) -> Option<Time> {
        self.min_index().map(|i| self.pending[i].0)
    }

    fn step(&mut self) -> Option<u64> {
        let i = self.min_index()?;
        let (at, seq) = self.pending.remove(i);
        self.now = at;
        Some(seq)
    }

    /// Everything sharing the earliest timestamp, in seq order.
    fn step_batch(&mut self) -> Option<(Time, Vec<u64>)> {
        let i = self.min_index()?;
        let at = self.pending[i].0;
        self.now = at;
        let mut batch: Vec<u64> =
            self.pending.iter().filter(|&&(t, _)| t == at).map(|&(_, s)| s).collect();
        batch.sort_unstable();
        self.pending.retain(|&(t, _)| t != at);
        Some((at, batch))
    }
}

proptest! {
    #[test]
    fn slab_engine_matches_naive_reference(ops in prop::collection::vec(op(), 1..400)) {
        let mut eng: Engine<u64> = Engine::new();
        let mut model = Model::new();
        // Every handle ever issued, so Cancel can hit live, already-
        // fired, and already-cancelled events alike.
        let mut handles: Vec<(EventId, u64)> = Vec::new();
        let mut next = 0u64;
        let mut delivered = 0u64;
        let mut buf: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Schedule { delay } => {
                    let d = Dur::from_nanos(delay);
                    let id = eng.schedule(d, next);
                    model.schedule(model.now + d, next);
                    handles.push((id, next));
                    next += 1;
                }
                Op::Cancel { pick } => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (id, seq) = handles[pick % handles.len()];
                    prop_assert_eq!(eng.cancel(id), model.cancel(seq), "cancel of seq {}", seq);
                }
                Op::Step => {
                    let got = eng.step();
                    let want = model.step();
                    prop_assert_eq!(got, want);
                    if got.is_some() {
                        delivered += 1;
                    }
                }
                Op::StepBatch => {
                    buf.clear();
                    let got_at = eng.step_batch(&mut buf);
                    match model.step_batch() {
                        Some((at, want)) => {
                            prop_assert_eq!(got_at, Some(at));
                            prop_assert_eq!(&buf, &want);
                            delivered += want.len() as u64;
                        }
                        None => {
                            prop_assert_eq!(got_at, None);
                            prop_assert!(buf.is_empty());
                        }
                    }
                }
                Op::Advance { delta } => {
                    let t = model.now + Dur::from_nanos(delta);
                    // advance_to past a pending event panics by
                    // contract; only take legal advances.
                    if model.peek_time().is_none_or(|p| p >= t) {
                        eng.advance_to(t);
                        model.now = t;
                    }
                }
            }
            // Cross-check every observable after every operation.
            prop_assert_eq!(eng.now(), model.now);
            prop_assert_eq!(eng.peek_time(), model.peek_time());
            prop_assert_eq!(eng.pending(), model.pending.len());
            prop_assert_eq!(eng.is_idle(), model.pending.is_empty());
            prop_assert_eq!(eng.events_delivered(), delivered);
        }
        // Drain both to the end: the tails must agree too.
        loop {
            let got = eng.step();
            let want = model.step();
            prop_assert_eq!(got, want);
            prop_assert_eq!(eng.now(), model.now);
            if got.is_none() {
                break;
            }
        }
    }
}
