//! Differential test: the log-bucketed [`Histogram`] against the
//! exact-but-unbounded [`Samples`] collection. The histogram keeps no
//! raw observations, so its quantiles are approximate — but the
//! log-linear bucketing (64 sub-buckets per octave) bounds the
//! relative error of any quantile by the bucket width, ~1.6%.

use nectar_sim::metrics::Histogram;
use nectar_sim::stats::Samples;
use proptest::prelude::*;

const REL_TOL: f64 = 0.02;

fn check_quantiles(values: &[u64]) {
    let mut h = Histogram::new();
    let mut s = Samples::new("exact");
    for &v in values {
        h.observe(v);
        s.record(v as f64);
    }
    prop_assert_eq!(h.count(), values.len() as u64);
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let exact = s.quantile(q);
        let approx = h.quantile(q);
        let tol = (exact * REL_TOL).max(1.0);
        prop_assert!(
            (approx - exact).abs() <= tol,
            "q={} exact={} approx={} tol={}",
            q,
            exact,
            approx,
            tol
        );
    }
    // min/max are tracked exactly, never approximated.
    prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
    prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
}

proptest! {
    #[test]
    fn quantiles_track_exact_samples_small(
        values in prop::collection::vec(0u64..1000, 1..300),
    ) {
        check_quantiles(&values);
    }

    #[test]
    fn quantiles_track_exact_samples_wide(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        check_quantiles(&values);
    }

    #[test]
    fn quantiles_survive_merging(
        a in prop::collection::vec(0u64..100_000, 1..150),
        b in prop::collection::vec(0u64..100_000, 1..150),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut s = Samples::new("exact");
        for &v in &a {
            ha.observe(v);
            s.record(v as f64);
        }
        for &v in &b {
            hb.observe(v);
            s.record(v as f64);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        for q in [0.5, 0.9, 0.99] {
            let exact = s.quantile(q);
            let approx = ha.quantile(q);
            let tol = (exact * REL_TOL).max(1.0);
            prop_assert!((approx - exact).abs() <= tol,
                "merged q={} exact={} approx={}", q, exact, approx);
        }
    }
}
