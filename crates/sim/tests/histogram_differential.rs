//! Differential test: the log-bucketed [`Histogram`] against the
//! exact-but-unbounded [`Samples`] collection. The histogram keeps no
//! raw observations, so its quantiles are approximate — but the
//! log-linear bucketing (64 sub-buckets per octave) bounds the
//! relative error of any quantile by the bucket width, ~1.6%.

use nectar_sim::metrics::Histogram;
use nectar_sim::stats::Samples;
use proptest::prelude::*;

const REL_TOL: f64 = 0.02;

fn check_quantiles(values: &[u64]) {
    let mut h = Histogram::new();
    let mut s = Samples::new("exact");
    for &v in values {
        h.observe(v);
        s.record(v as f64);
    }
    prop_assert_eq!(h.count(), values.len() as u64);
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let exact = s.quantile(q);
        let approx = h.quantile(q);
        let tol = (exact * REL_TOL).max(1.0);
        prop_assert!(
            (approx - exact).abs() <= tol,
            "q={} exact={} approx={} tol={}",
            q,
            exact,
            approx,
            tol
        );
    }
    // min/max are tracked exactly, never approximated.
    prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
    prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
}

proptest! {
    #[test]
    fn quantiles_track_exact_samples_small(
        values in prop::collection::vec(0u64..1000, 1..300),
    ) {
        check_quantiles(&values);
    }

    #[test]
    fn quantiles_track_exact_samples_wide(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        check_quantiles(&values);
    }

    #[test]
    fn quantiles_survive_merging(
        a in prop::collection::vec(0u64..100_000, 1..150),
        b in prop::collection::vec(0u64..100_000, 1..150),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut s = Samples::new("exact");
        for &v in &a {
            ha.observe(v);
            s.record(v as f64);
        }
        for &v in &b {
            hb.observe(v);
            s.record(v as f64);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        for q in [0.5, 0.9, 0.99] {
            let exact = s.quantile(q);
            let approx = ha.quantile(q);
            let tol = (exact * REL_TOL).max(1.0);
            prop_assert!((approx - exact).abs() <= tol,
                "merged q={} exact={} approx={}", q, exact, approx);
        }
    }
}

/// Builds a histogram by observing every value in `values`.
fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// `merge` is commutative: a⊔b and b⊔a are the same histogram,
    /// bucket for bucket (`Histogram` derives `Eq`), and both equal
    /// the oracle built by observing every value into one histogram.
    /// The streaming doctor's sharded folds merge per-shard histograms
    /// in canonical order, but correctness must not depend on it.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&ab, &hist_of(&all));
    }

    /// `merge` is associative: (a⊔b)⊔c == a⊔(b⊔c), so window folds can
    /// combine partial histograms in any grouping.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000_000, 0..120),
        b in prop::collection::vec(0u64..1_000_000_000, 0..120),
        c in prop::collection::vec(0u64..1_000_000_000, 0..120),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty histogram is the identity of `merge` on either side —
    /// merging it must not disturb the exact min/max/sum sidecars.
    #[test]
    fn empty_is_merge_identity(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let ha = hist_of(&a);
        let mut left = Histogram::new();
        left.merge(&ha);
        prop_assert_eq!(&left, &ha);
        let mut right = ha.clone();
        right.merge(&Histogram::new());
        prop_assert_eq!(&right, &ha);
    }

    /// Single-bucket histograms (every observation the same value)
    /// merge into a single-bucket histogram with exact count, mean,
    /// and degenerate quantiles.
    #[test]
    fn single_bucket_merge_is_exact(v in 0u64..1_000_000_000, n in 1usize..64, m in 1usize..64) {
        let mut h = hist_of(&vec![v; n]);
        h.merge(&hist_of(&vec![v; m]));
        prop_assert_eq!(h.count(), (n + m) as u64);
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
        prop_assert!((h.mean() - v as f64).abs() < 1e-9);
        prop_assert_eq!(h.quantile(0.0), v as f64);
        prop_assert_eq!(h.quantile(0.5), v as f64);
        prop_assert_eq!(h.quantile(1.0), v as f64);
    }
}
