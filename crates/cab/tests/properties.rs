//! Property-based tests for CAB hardware invariants: the allocator
//! never hands out overlapping blocks, protection matches a reference
//! model, and the checksum catches every single-bit flip.

use nectar_cab::checksum::fletcher16;
use nectar_cab::dma::{Channel, DmaController};
use nectar_cab::memory::{CabAddr, DataAllocator, DATA_RAM_BASE, DATA_RAM_BYTES};
use nectar_cab::protection::{Domain, Perms, ProtectionTable, PAGE_BYTES};
use nectar_cab::timings::CabTimings;
use nectar_sim::time::Time;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u32),
    Free(usize), // index into live list, modulo its length
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![(1u32..200_000).prop_map(AllocOp::Alloc), any::<usize>().prop_map(AllocOp::Free),]
}

proptest! {
    #[test]
    fn allocator_blocks_never_overlap(ops in prop::collection::vec(alloc_op(), 1..120)) {
        let mut a = DataAllocator::new();
        let mut live: Vec<(u32, u32)> = Vec::new(); // (addr, len)
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(addr) = a.alloc(len) {
                        let len = len.max(1);
                        // In range.
                        prop_assert!(addr.0 >= DATA_RAM_BASE.0);
                        prop_assert!(addr.0 + len <= DATA_RAM_BASE.0 + DATA_RAM_BYTES);
                        // Disjoint from every live block.
                        for &(b, bl) in &live {
                            prop_assert!(
                                addr.0 + len <= b || b + bl <= addr.0,
                                "overlap: [{},{}) vs [{},{})",
                                addr.0, addr.0 + len, b, b + bl
                            );
                        }
                        live.push((addr.0, len));
                    }
                }
                AllocOp::Free(i) => {
                    if !live.is_empty() {
                        let (addr, _) = live.remove(i % live.len());
                        prop_assert!(a.free(CabAddr(addr)).is_ok());
                    }
                }
            }
            // Accounting: free bytes = total - live bytes.
            let live_bytes: u32 = live.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(a.free_bytes(), DATA_RAM_BYTES - live_bytes);
            prop_assert_eq!(a.live_allocations(), live.len());
        }
        // Freeing everything restores one contiguous region.
        for (addr, _) in live {
            a.free(CabAddr(addr)).unwrap();
        }
        prop_assert!(a.alloc(DATA_RAM_BYTES).is_ok(), "coalescing must restore contiguity");
    }

    #[test]
    fn protection_matches_reference_model(
        grants in prop::collection::vec(
            (0u8..32, 0u32..(1 << 24) / PAGE_BYTES, 1u32..40, 0u8..8),
            1..60
        ),
        checks in prop::collection::vec(
            (0u8..32, 0u32..(1 << 24) / PAGE_BYTES, 0u8..8),
            1..60
        ),
    ) {
        let mut table = ProtectionTable::new();
        // Reference: (domain, page) -> perms bits.
        let mut model: HashMap<(u8, u32), u8> = HashMap::new();
        let perms_of = |bits: u8| Perms {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            execute: bits & 4 != 0,
        };
        for (dom, page, pages, bits) in grants {
            let pages = pages.min((1 << 24) / PAGE_BYTES - page);
            if pages == 0 { continue; }
            let addr = CabAddr(page * PAGE_BYTES);
            table.grant(Domain::new(dom), addr, pages * PAGE_BYTES, perms_of(bits));
            for p in page..page + pages {
                model.insert((dom, p), bits);
            }
        }
        for (dom, page, need_bits) in checks {
            let needed = perms_of(need_bits);
            let addr = CabAddr(page * PAGE_BYTES + 7);
            let have_bits = model.get(&(dom, page)).copied().unwrap_or(
                // Kernel domain starts with RWX everywhere.
                if dom == 0 { 7 } else { 0 },
            );
            let expect_ok = perms_of(have_bits).allows(needed);
            let got = table.check(Domain::new(dom), addr, 4, needed).is_ok();
            prop_assert_eq!(got, expect_ok, "dom{} page{} need {:03b}", dom, page, need_bits);
        }
    }

    #[test]
    fn fletcher_catches_every_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..512),
        byte_sel in any::<usize>(),
        bit in 0u8..8,
    ) {
        let sum = fletcher16(&data);
        let mut bad = data.clone();
        let idx = byte_sel % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert_ne!(fletcher16(&bad), sum);
    }

    #[test]
    fn dma_transfers_never_overlap_per_channel(
        reqs in prop::collection::vec((0usize..4, 1usize..100_000), 1..40)
    ) {
        let mut dma = DmaController::new(CabTimings::prototype());
        let mut per_channel: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for (ch_idx, bytes) in reqs {
            let channel = Channel::ALL[ch_idx];
            let t = dma.start(Time::ZERO, channel, bytes);
            prop_assert!(t.complete > t.start || bytes == 0);
            let spans = per_channel.entry(ch_idx).or_default();
            for &(s, e) in spans.iter() {
                prop_assert!(
                    t.start.nanos() >= e || t.complete.nanos() <= s,
                    "channel {channel} transfers overlap"
                );
            }
            spans.push((t.start.nanos(), t.complete.nanos()));
        }
    }
}
