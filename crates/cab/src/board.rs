//! The assembled CAB board.
//!
//! [`Cab`] owns every hardware resource of one communication
//! accelerator board — DMA controller, data-memory allocator,
//! protection tables, timers, fiber interface — as the substrate the
//! CAB kernel (`nectar-kernel`) and protocols (`nectar-proto`) run on.

use crate::dma::DmaController;
use crate::fiber::FiberPort;
use crate::memory::DataAllocator;
use crate::protection::ProtectionTable;
use crate::timer::TimerUnit;
use crate::timings::CabTimings;
use core::fmt;

/// Identifies one CAB in the Nectar system.
///
/// # Examples
///
/// ```
/// use nectar_cab::board::CabId;
/// assert_eq!(CabId::new(3).to_string(), "CAB3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CabId(u16);

impl CabId {
    /// Creates a CAB id.
    pub const fn new(raw: u16) -> CabId {
        CabId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The index form, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for CabId {
    fn from(raw: u16) -> CabId {
        CabId(raw)
    }
}

impl fmt::Display for CabId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CAB{}", self.0)
    }
}

/// One CAB board's hardware resources.
#[derive(Clone, Debug)]
pub struct Cab {
    id: CabId,
    timings: CabTimings,
    /// The four-channel DMA engine.
    pub dma: DmaController,
    /// Allocator over the 1 MB data RAM.
    pub memory: DataAllocator,
    /// Per-domain page protection.
    pub protection: ProtectionTable,
    /// Hardware timers.
    pub timers: TimerUnit,
    /// The fiber interface to the HUB.
    pub fiber: FiberPort,
}

impl Cab {
    /// Builds a board with prototype resources.
    pub fn new(id: CabId, timings: CabTimings) -> Cab {
        Cab {
            id,
            dma: DmaController::new(timings.clone()),
            memory: DataAllocator::new(),
            protection: ProtectionTable::new(),
            timers: TimerUnit::new(),
            fiber: FiberPort::new(1024, timings.fiber_bw),
            timings,
        }
    }

    /// This board's identity.
    pub fn id(&self) -> CabId {
        self.id
    }

    /// The timing model the board was built with.
    pub fn timings(&self) -> &CabTimings {
        &self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::Channel;
    use nectar_sim::time::Time;

    #[test]
    fn board_assembles_prototype_resources() {
        let cab = Cab::new(CabId::new(1), CabTimings::prototype());
        assert_eq!(cab.id(), CabId::new(1));
        assert_eq!(cab.fiber.capacity(), 1024);
        assert_eq!(cab.memory.free_bytes(), 1 << 20);
    }

    #[test]
    fn resources_are_usable_together() {
        let mut cab = Cab::new(CabId::new(0), CabTimings::prototype());
        let buf = cab.memory.alloc(2048).unwrap();
        let xfer = cab
            .dma
            .start_checked(
                Time::ZERO,
                Channel::FiberOut,
                buf,
                2048,
                &cab.protection,
                crate::protection::Domain::KERNEL,
            )
            .unwrap();
        assert!(xfer.complete > xfer.start);
        cab.memory.free(buf).unwrap();
    }

    #[test]
    fn cab_id_roundtrip() {
        for raw in [0u16, 1, 29, 1000] {
            assert_eq!(CabId::new(raw).raw(), raw);
            assert_eq!(CabId::from(raw).index(), raw as usize);
        }
    }
}
