//! CAB memory protection.
//!
//! "The CAB's memory protection facility allows each 1 kilobyte page to
//! be protected separately. Each page of the CAB address space
//! (including the CAB registers and devices) can be assigned any subset
//! of read, write, and execute permissions. [...] The memory protection
//! includes hardware support for multiple protection domains, with a
//! separate page protection table for each domain. Currently the CAB
//! supports 32 protection domains. [...] In addition, accesses from
//! over the VME bus are assigned to a VME-specific protection domain"
//! (§5.2).
//!
//! Checks happen "in parallel with the operation so that no latency is
//! added to memory accesses" — accordingly [`ProtectionTable::check`]
//! has no time cost in the simulation; it only grants or faults.

use crate::memory::{CabAddr, ADDRESS_SPACE_BYTES};
use core::fmt;

/// Page size of the protection unit: 1 KB.
pub const PAGE_BYTES: u32 = 1024;
/// Number of protection domains the CAB supports.
pub const DOMAIN_COUNT: usize = 32;

/// One of the 32 protection domains.
///
/// # Examples
///
/// ```
/// use nectar_cab::protection::Domain;
/// let kernel = Domain::KERNEL;
/// let vme = Domain::VME;
/// assert_ne!(kernel, vme);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Domain(u8);

impl Domain {
    /// The CAB kernel's domain (full access by convention).
    pub const KERNEL: Domain = Domain(0);
    /// The domain assigned to accesses arriving over the VME bus.
    pub const VME: Domain = Domain(31);

    /// Creates a user-task domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not below [`DOMAIN_COUNT`].
    pub fn new(id: u8) -> Domain {
        assert!((id as usize) < DOMAIN_COUNT, "CAB supports 32 protection domains");
        Domain(id)
    }

    /// The domain index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Access permissions on one page, a subset of read/write/execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub execute: bool,
}

impl Perms {
    /// No access at all (the default for user domains).
    pub const NONE: Perms = Perms { read: false, write: false, execute: false };
    /// Read-only.
    pub const R: Perms = Perms { read: true, write: false, execute: false };
    /// Read/write.
    pub const RW: Perms = Perms { read: true, write: true, execute: false };
    /// Read/execute (program pages).
    pub const RX: Perms = Perms { read: true, write: false, execute: true };
    /// Everything (kernel pages).
    pub const RWX: Perms = Perms { read: true, write: true, execute: true };

    /// `true` if `self` allows every access `needed` asks for.
    pub fn allows(self, needed: Perms) -> bool {
        (!needed.read || self.read)
            && (!needed.write || self.write)
            && (!needed.execute || self.execute)
    }

    fn bits(self) -> u8 {
        self.read as u8 | (self.write as u8) << 1 | (self.execute as u8) << 2
    }

    fn from_bits(bits: u8) -> Perms {
        Perms { read: bits & 1 != 0, write: bits & 2 != 0, execute: bits & 4 != 0 }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// A protection fault: the access was denied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtectionFault {
    /// The domain that attempted the access.
    pub domain: Domain,
    /// The faulting address.
    pub addr: CabAddr,
    /// What the access needed.
    pub needed: Perms,
    /// What the page allowed.
    pub had: Perms,
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protection fault: {} needed {} at {} but page allows {}",
            self.domain, self.needed, self.addr, self.had
        )
    }
}

impl std::error::Error for ProtectionFault {}

/// Per-domain page-protection tables for the whole 24-bit CAB address
/// space.
#[derive(Clone)]
pub struct ProtectionTable {
    /// `perms[domain][page]`, 3 bits used per entry.
    perms: Vec<Vec<u8>>,
}

impl fmt::Debug for ProtectionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtectionTable")
            .field("domains", &self.perms.len())
            .field("pages_per_domain", &self.perms[0].len())
            .finish()
    }
}

impl Default for ProtectionTable {
    fn default() -> Self {
        ProtectionTable::new()
    }
}

impl ProtectionTable {
    /// A table where the kernel domain has full access everywhere and
    /// every other domain (including VME) has none — the kernel must
    /// grant pages explicitly, "the kernel can therefore ensure that
    /// the CAB system software is protected from user tasks and that
    /// user tasks are protected from one another" (§5.2).
    pub fn new() -> ProtectionTable {
        let pages = (ADDRESS_SPACE_BYTES / PAGE_BYTES) as usize;
        let mut perms = vec![vec![0u8; pages]; DOMAIN_COUNT];
        perms[Domain::KERNEL.index()] = vec![Perms::RWX.bits(); pages];
        ProtectionTable { perms }
    }

    fn page_of(addr: CabAddr) -> usize {
        (addr.0 / PAGE_BYTES) as usize
    }

    /// Grants `perms` on every page overlapping `[addr, addr+len)` for
    /// `domain` (replacing previous permissions on those pages).
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the 24-bit address space.
    pub fn grant(&mut self, domain: Domain, addr: CabAddr, len: u32, perms: Perms) {
        if len == 0 {
            return;
        }
        let end = addr.0.checked_add(len).expect("range overflow");
        assert!(end <= ADDRESS_SPACE_BYTES, "range leaves the CAB address space");
        let first = Self::page_of(addr);
        let last = Self::page_of(CabAddr(end - 1));
        for page in first..=last {
            self.perms[domain.index()][page] = perms.bits();
        }
    }

    /// Revokes all access to the range for `domain`.
    pub fn revoke(&mut self, domain: Domain, addr: CabAddr, len: u32) {
        self.grant(domain, addr, len, Perms::NONE);
    }

    /// The permissions `domain` holds on the page containing `addr`.
    pub fn perms_at(&self, domain: Domain, addr: CabAddr) -> Perms {
        Perms::from_bits(self.perms[domain.index()][Self::page_of(addr)])
    }

    /// Checks an access of `len` bytes at `addr` needing `needed`.
    ///
    /// # Errors
    ///
    /// Returns the [`ProtectionFault`] for the first page that denies
    /// the access.
    pub fn check(
        &self,
        domain: Domain,
        addr: CabAddr,
        len: u32,
        needed: Perms,
    ) -> Result<(), ProtectionFault> {
        if len == 0 {
            return Ok(());
        }
        let end = addr.0.saturating_add(len).min(ADDRESS_SPACE_BYTES);
        let first = Self::page_of(addr);
        let last = Self::page_of(CabAddr(end - 1));
        for page in first..=last {
            let had = Perms::from_bits(self.perms[domain.index()][page]);
            if !had.allows(needed) {
                return Err(ProtectionFault {
                    domain,
                    addr: CabAddr(page as u32 * PAGE_BYTES),
                    needed,
                    had,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DATA_RAM_BASE;

    #[test]
    fn kernel_has_full_access_by_default() {
        let t = ProtectionTable::new();
        assert!(t.check(Domain::KERNEL, DATA_RAM_BASE, 4096, Perms::RWX).is_ok());
    }

    #[test]
    fn user_domains_start_with_nothing() {
        let t = ProtectionTable::new();
        let fault = t.check(Domain::new(5), DATA_RAM_BASE, 4, Perms::R).unwrap_err();
        assert_eq!(fault.had, Perms::NONE);
        assert!(fault.to_string().contains("protection fault"));
    }

    #[test]
    fn grant_is_page_granular() {
        let mut t = ProtectionTable::new();
        let d = Domain::new(3);
        // Granting 1 byte grants the whole 1 KB page.
        t.grant(d, CabAddr(DATA_RAM_BASE.0 + 100), 1, Perms::RW);
        assert!(t.check(d, DATA_RAM_BASE, 1024, Perms::RW).is_ok());
        // The next page is still protected.
        assert!(t.check(d, CabAddr(DATA_RAM_BASE.0 + 1024), 1, Perms::R).is_err());
    }

    #[test]
    fn write_needs_write_permission() {
        let mut t = ProtectionTable::new();
        let d = Domain::new(1);
        t.grant(d, DATA_RAM_BASE, 2048, Perms::R);
        assert!(t.check(d, DATA_RAM_BASE, 8, Perms::R).is_ok());
        let fault = t.check(d, DATA_RAM_BASE, 8, Perms::RW).unwrap_err();
        assert_eq!(fault.needed, Perms::RW);
    }

    #[test]
    fn check_spans_pages_and_faults_on_first_denial() {
        let mut t = ProtectionTable::new();
        let d = Domain::new(2);
        t.grant(d, DATA_RAM_BASE, 1024, Perms::RW);
        // Pages 0 granted, page 1 not: a 2 KB access faults at page 1.
        let fault = t.check(d, DATA_RAM_BASE, 2048, Perms::RW).unwrap_err();
        assert_eq!(fault.addr.0, DATA_RAM_BASE.0 + 1024);
    }

    #[test]
    fn vme_domain_is_isolated_until_granted() {
        let mut t = ProtectionTable::new();
        assert!(t.check(Domain::VME, DATA_RAM_BASE, 4, Perms::R).is_err());
        // The kernel maps a shared buffer for the node.
        t.grant(Domain::VME, DATA_RAM_BASE, 8192, Perms::RW);
        assert!(t.check(Domain::VME, DATA_RAM_BASE, 8192, Perms::RW).is_ok());
    }

    #[test]
    fn revoke_restores_isolation() {
        let mut t = ProtectionTable::new();
        let d = Domain::new(7);
        t.grant(d, DATA_RAM_BASE, 4096, Perms::RW);
        t.revoke(d, DATA_RAM_BASE, 4096);
        assert!(t.check(d, DATA_RAM_BASE, 1, Perms::R).is_err());
    }

    #[test]
    #[should_panic]
    fn domain_ids_are_bounded() {
        let _ = Domain::new(32);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }

    #[test]
    fn zero_length_access_always_ok() {
        let t = ProtectionTable::new();
        assert!(t.check(Domain::new(9), DATA_RAM_BASE, 0, Perms::RWX).is_ok());
    }
}
