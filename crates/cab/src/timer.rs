//! CAB hardware timers.
//!
//! "Hardware timers allow time-outs to be set by the software with low
//! overhead" (§5.1). The unit hands out timer ids; the simulation loop
//! owns actual scheduling, and [`TimerUnit::fire`] filters stale
//! expirations after a [`cancel`](TimerUnit::cancel) — exactly the race
//! a retransmission timer must survive.

use nectar_sim::time::{Dur, Time};
use std::collections::HashMap;

/// Handle to one armed timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// The CAB timer device.
///
/// # Examples
///
/// ```
/// use nectar_cab::timer::TimerUnit;
/// use nectar_sim::time::{Dur, Time};
///
/// let mut timers = TimerUnit::new();
/// let (id, expiry) = timers.arm(Time::ZERO, Dur::from_micros(500));
/// assert_eq!(expiry, Time::from_micros(500));
/// timers.cancel(id);
/// assert!(!timers.fire(id), "cancelled timers do not fire");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimerUnit {
    next: u64,
    armed: HashMap<TimerId, Time>,
}

impl TimerUnit {
    /// A unit with no timers armed.
    pub fn new() -> TimerUnit {
        TimerUnit::default()
    }

    /// Arms a timer for `delay` from `now`; returns its id and expiry
    /// time (which the caller schedules in its event loop).
    pub fn arm(&mut self, now: Time, delay: Dur) -> (TimerId, Time) {
        let id = TimerId(self.next);
        self.next += 1;
        let expiry = now + delay;
        self.armed.insert(id, expiry);
        (id, expiry)
    }

    /// Cancels an armed timer. Returns `true` if it was still armed.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.armed.remove(&id).is_some()
    }

    /// Consumes an expiry event. Returns `true` exactly when the timer
    /// is still armed — a cancelled or already-fired timer returns
    /// `false` and the caller must ignore the event.
    pub fn fire(&mut self, id: TimerId) -> bool {
        self.armed.remove(&id).is_some()
    }

    /// Number of currently armed timers.
    pub fn armed_count(&self) -> usize {
        self.armed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_cycle() {
        let mut t = TimerUnit::new();
        let (id, expiry) = t.arm(Time::from_micros(10), Dur::from_micros(5));
        assert_eq!(expiry, Time::from_micros(15));
        assert_eq!(t.armed_count(), 1);
        assert!(t.fire(id));
        assert!(!t.fire(id), "double fire is filtered");
        assert_eq!(t.armed_count(), 0);
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut t = TimerUnit::new();
        let (id, _) = t.arm(Time::ZERO, Dur::from_micros(1));
        assert!(t.cancel(id));
        assert!(!t.cancel(id));
        assert!(!t.fire(id));
    }

    #[test]
    fn ids_are_unique() {
        let mut t = TimerUnit::new();
        let (a, _) = t.arm(Time::ZERO, Dur::from_micros(1));
        let (b, _) = t.arm(Time::ZERO, Dur::from_micros(1));
        assert_ne!(a, b);
        assert_eq!(t.armed_count(), 2);
    }
}
