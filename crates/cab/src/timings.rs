//! CAB cost-model constants.
//!
//! The paper gives hard numbers for some CAB costs (thread switch
//! "between 10 and 15 microseconds", 16 MHz SPARC, 66 MB/s data
//! memory, 10 MB/s VME) and end-to-end *goals* for the rest
//! (CAB-to-CAB process latency under 30 µs). [`CabTimings`] collects
//! every per-operation cost the software model charges; the defaults
//! are the published numbers where they exist and calibrated estimates
//! elsewhere, chosen so the end-to-end budgets land where the paper
//! says they should. EXPERIMENTS.md records the calibration.

use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// Per-operation costs charged by the CAB software model.
///
/// # Examples
///
/// ```
/// use nectar_cab::timings::CabTimings;
///
/// let t = CabTimings::prototype();
/// // Paper §6.1: "thread switching takes between 10 and 15 us".
/// assert!(t.thread_switch.as_micros_f64() >= 10.0);
/// assert!(t.thread_switch.as_micros_f64() <= 15.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CabTimings {
    /// One SPARC cycle at 16 MHz: 62.5 ns (rounded up to 63 ns).
    pub cpu_cycle: Dur,
    /// Coroutine thread switch — "almost all of this time is spent
    /// saving and restoring the SPARC register windows" (§6.1).
    pub thread_switch: Dur,
    /// Entering an interrupt handler; "the SPARC architecture helps
    /// reduce the overhead for critical interrupts by reserving a
    /// register window for trap handling" (§6.2.1).
    pub interrupt_entry: Dur,
    /// One upcall from the datalink interrupt handler into a transport
    /// routine (§6.2.1, after Clark's structuring-with-upcalls).
    pub upcall: Dur,
    /// Building or checking one transport-protocol header.
    pub transport_header: Dur,
    /// Datalink bookkeeping per packet (connection cache lookup,
    /// command-packet construction).
    pub datalink_packet: Dur,
    /// Programming one DMA channel descriptor.
    pub dma_setup: Dur,
    /// One mailbox operation (append or consume a message descriptor).
    pub mailbox_op: Dur,
    /// Arming or cancelling a hardware timer ("hardware timers allow
    /// time-outs to be set by the software with low overhead", §5.1).
    pub timer_op: Dur,
    /// Data-memory bandwidth: 66 MB/s of fast static RAM (§5.2).
    pub data_memory_bw: Bandwidth,
    /// VME bandwidth to/from the node: 10 MB/s (§5.2).
    pub vme_bw: Bandwidth,
    /// Fiber rate the CAB must keep up with, each direction (§5.1).
    pub fiber_bw: Bandwidth,
}

impl CabTimings {
    /// The prototype CAB as published, with calibrated software costs.
    pub fn prototype() -> CabTimings {
        CabTimings {
            cpu_cycle: Dur::from_nanos(63),
            thread_switch: Dur::from_nanos(12_000),
            interrupt_entry: Dur::from_nanos(1_500),
            upcall: Dur::from_nanos(500),
            transport_header: Dur::from_nanos(1_500),
            datalink_packet: Dur::from_nanos(1_000),
            dma_setup: Dur::from_nanos(1_000),
            mailbox_op: Dur::from_nanos(1_000),
            timer_op: Dur::from_nanos(500),
            data_memory_bw: Bandwidth::from_mbyte_per_sec(66),
            vme_bw: Bandwidth::from_mbyte_per_sec(10),
            fiber_bw: Bandwidth::from_mbit_per_sec(100),
        }
    }

    /// Cost of `cycles` CPU cycles.
    pub fn cycles(&self, cycles: u64) -> Dur {
        self.cpu_cycle * cycles
    }

    /// The send-side software path for one packet on the CAB:
    /// transport header + datalink + DMA setup (no context switch —
    /// the sender runs in the calling thread, §6.2.1).
    pub fn send_path(&self) -> Dur {
        self.transport_header + self.datalink_packet + self.dma_setup
    }

    /// The receive-side software path for one packet on the CAB:
    /// interrupt entry + upcall + header check + DMA setup to the
    /// destination mailbox.
    pub fn recv_path(&self) -> Dur {
        self.interrupt_entry + self.upcall + self.transport_header + self.dma_setup
    }
}

impl Default for CabTimings {
    fn default() -> CabTimings {
        CabTimings::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants() {
        let t = CabTimings::prototype();
        assert_eq!(t.data_memory_bw.as_mbyte_per_sec_f64(), 66.0);
        assert_eq!(t.vme_bw.as_mbyte_per_sec_f64(), 10.0);
        assert_eq!(t.fiber_bw.as_mbit_per_sec_f64(), 100.0);
        assert_eq!(t.thread_switch, Dur::from_micros(12));
    }

    #[test]
    fn software_paths_fit_the_30us_budget() {
        // Send path + receive path + a thread switch to the receiving
        // process must leave room under the paper's 30 us CAB-to-CAB
        // goal once ~1.7 us of wire/HUB time for a small packet is added.
        let t = CabTimings::prototype();
        let software = t.send_path() + t.recv_path() + t.thread_switch + t.mailbox_op * 2;
        assert!(
            software.as_micros_f64() < 28.0,
            "software path {} must leave room for wire time",
            software
        );
    }

    #[test]
    fn cycles_scale() {
        let t = CabTimings::prototype();
        assert_eq!(t.cycles(2), Dur::from_nanos(126));
    }
}
