//! The CAB's on-board memories.
//!
//! "The on-board CAB memory is split into two regions: one intended for
//! use as program memory, the other as data memory. DMA transfers are
//! supported for data memory only. [...] the total bandwidth of the
//! data memory is 66 megabytes/second, sufficient to support [...]
//! concurrent accesses" (§5.2). This module models region layout and
//! simple bump/free-list allocation; bandwidth arbitration lives in
//! [`crate::dma`].

use core::fmt;

/// Which memory region an address falls in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// 128 KB PROM: executable, not writable.
    Prom,
    /// 512 KB program RAM.
    ProgramRam,
    /// 1 MB data RAM — the only region DMA may touch.
    DataRam,
    /// CAB device registers (mapped at the top of the address space).
    Devices,
}

/// A CAB-local address (the CAB occupies a 24-bit region of the node's
/// VME address space, §5.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CabAddr(pub u32);

impl fmt::Display for CabAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#08x}", self.0)
    }
}

/// Size of the PROM region.
pub const PROM_BYTES: u32 = 128 << 10;
/// Size of the program RAM region.
pub const PROGRAM_RAM_BYTES: u32 = 512 << 10;
/// Size of the data RAM region.
pub const DATA_RAM_BYTES: u32 = 1 << 20;
/// Total addressable span (24-bit VME window).
pub const ADDRESS_SPACE_BYTES: u32 = 1 << 24;

/// Base of the PROM region.
pub const PROM_BASE: CabAddr = CabAddr(0);
/// Base of the program RAM region.
pub const PROGRAM_RAM_BASE: CabAddr = CabAddr(PROM_BYTES);
/// Base of the data RAM region.
pub const DATA_RAM_BASE: CabAddr = CabAddr(PROM_BYTES + PROGRAM_RAM_BYTES);
/// Base of the device-register region.
pub const DEVICE_BASE: CabAddr = CabAddr(ADDRESS_SPACE_BYTES - (64 << 10));

/// Classifies an address into its region, or `None` for unmapped holes.
///
/// # Examples
///
/// ```
/// use nectar_cab::memory::{region_of, Region, DATA_RAM_BASE};
/// assert_eq!(region_of(DATA_RAM_BASE), Some(Region::DataRam));
/// ```
pub fn region_of(addr: CabAddr) -> Option<Region> {
    let a = addr.0;
    if a < PROM_BYTES {
        Some(Region::Prom)
    } else if a < PROM_BYTES + PROGRAM_RAM_BYTES {
        Some(Region::ProgramRam)
    } else if a < PROM_BYTES + PROGRAM_RAM_BYTES + DATA_RAM_BYTES {
        Some(Region::DataRam)
    } else if (DEVICE_BASE.0..ADDRESS_SPACE_BYTES).contains(&a) {
        Some(Region::Devices)
    } else {
        None
    }
}

/// `true` if a `len`-byte range starting at `addr` lies wholly in data
/// RAM (the only DMA-capable region, §5.2).
pub fn dma_capable(addr: CabAddr, len: u32) -> bool {
    let end = match addr.0.checked_add(len) {
        Some(e) => e,
        None => return false,
    };
    region_of(addr) == Some(Region::DataRam)
        && (len == 0 || region_of(CabAddr(end - 1)) == Some(Region::DataRam))
}

/// Errors from the data-memory allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous free data RAM.
    OutOfMemory {
        /// Bytes requested.
        requested: u32,
    },
    /// Freeing a block that was never allocated (double free / bad ptr).
    BadFree {
        /// Address passed to `free`.
        addr: CabAddr,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of CAB data memory (requested {requested} bytes)")
            }
            AllocError::BadFree { addr } => write!(f, "bad free at {addr}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit allocator over the 1 MB data RAM, used for mailbox
/// buffers and packet staging ("another CAB function is to provide
/// temporary buffer space for messages in an efficient way", §6.1).
#[derive(Clone, Debug)]
pub struct DataAllocator {
    /// Sorted, disjoint free extents (addr, len).
    free: Vec<(u32, u32)>,
    /// Live allocations addr -> len.
    live: std::collections::BTreeMap<u32, u32>,
}

impl Default for DataAllocator {
    fn default() -> Self {
        DataAllocator::new()
    }
}

impl DataAllocator {
    /// An allocator owning all of data RAM.
    pub fn new() -> DataAllocator {
        DataAllocator {
            free: vec![(DATA_RAM_BASE.0, DATA_RAM_BYTES)],
            live: std::collections::BTreeMap::new(),
        }
    }

    /// Allocates `len` bytes of data RAM (first fit).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when no free extent is large enough.
    pub fn alloc(&mut self, len: u32) -> Result<CabAddr, AllocError> {
        let len = len.max(1);
        for i in 0..self.free.len() {
            let (base, flen) = self.free[i];
            if flen >= len {
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (base + len, flen - len);
                }
                self.live.insert(base, len);
                return Ok(CabAddr(base));
            }
        }
        Err(AllocError::OutOfMemory { requested: len })
    }

    /// Frees a block returned by [`alloc`](DataAllocator::alloc),
    /// coalescing adjacent free extents.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if `addr` is not a live allocation.
    pub fn free(&mut self, addr: CabAddr) -> Result<(), AllocError> {
        let len = self.live.remove(&addr.0).ok_or(AllocError::BadFree { addr })?;
        let pos = self.free.partition_point(|&(b, _)| b < addr.0);
        self.free.insert(pos, (addr.0, len));
        // Coalesce around `pos`.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u32 {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_layout_matches_paper() {
        assert_eq!(region_of(CabAddr(0)), Some(Region::Prom));
        assert_eq!(region_of(PROGRAM_RAM_BASE), Some(Region::ProgramRam));
        assert_eq!(region_of(DATA_RAM_BASE), Some(Region::DataRam));
        assert_eq!(region_of(CabAddr(DATA_RAM_BASE.0 + DATA_RAM_BYTES - 1)), Some(Region::DataRam));
        assert_eq!(region_of(CabAddr(DATA_RAM_BASE.0 + DATA_RAM_BYTES)), None);
        assert_eq!(region_of(DEVICE_BASE), Some(Region::Devices));
    }

    #[test]
    fn dma_only_in_data_ram() {
        assert!(dma_capable(DATA_RAM_BASE, 1024));
        assert!(!dma_capable(PROGRAM_RAM_BASE, 16), "DMA to program memory is not supported");
        assert!(!dma_capable(CabAddr(DATA_RAM_BASE.0 + DATA_RAM_BYTES - 8), 16), "crosses the end");
        assert!(!dma_capable(CabAddr(u32::MAX - 4), 16), "overflow is rejected");
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = DataAllocator::new();
        let total = a.free_bytes();
        let b1 = a.alloc(1024).unwrap();
        let b2 = a.alloc(4096).unwrap();
        assert_ne!(b1, b2);
        assert_eq!(a.free_bytes(), total - 5120);
        a.free(b1).unwrap();
        a.free(b2).unwrap();
        assert_eq!(a.free_bytes(), total);
        assert_eq!(a.live_allocations(), 0);
    }

    #[test]
    fn coalescing_restores_contiguity() {
        let mut a = DataAllocator::new();
        let blocks: Vec<_> = (0..8).map(|_| a.alloc(128 << 10).unwrap()).collect();
        assert!(a.alloc(1 << 20).is_err(), "all of data RAM is allocated");
        for b in blocks {
            a.free(b).unwrap();
        }
        // After coalescing, one full-size allocation fits again.
        assert!(a.alloc(1 << 20).is_ok());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = DataAllocator::new();
        let b = a.alloc(64).unwrap();
        a.free(b).unwrap();
        assert_eq!(a.free(b), Err(AllocError::BadFree { addr: b }));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut a = DataAllocator::new();
        assert!(matches!(
            a.alloc(2 << 20),
            Err(AllocError::OutOfMemory { requested }) if requested == 2 << 20
        ));
    }

    #[test]
    fn zero_sized_alloc_rounds_up() {
        let mut a = DataAllocator::new();
        let b = a.alloc(0).unwrap();
        a.free(b).unwrap();
    }
}
