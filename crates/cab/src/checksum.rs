//! The CAB's hardware checksum unit.
//!
//! "Hardware checksum computation removes this burden from protocol
//! software" (§5.1) and checking happens in parallel with DMA, so the
//! simulation charges *zero time* for checksums — the function here
//! exists so the transport protocols can actually detect the corrupted
//! packets the fault-injection experiments create.
//!
//! The algorithm is Fletcher-16, a classic choice for 1980s protocol
//! hardware: position-sensitive (catches reordered bytes, which a plain
//! sum misses) and computable in one pass.

/// Computes the Fletcher-16 checksum of `data`.
///
/// The inner loop is word-at-a-time (SWAR): each 8-byte little-endian
/// word is folded into the two running sums with three multiplies
/// instead of eight dependent byte additions. For a word with bytes
/// `b0..b7` starting from sums `(s1, s2)`, Fletcher's recurrence
/// telescopes to
///
/// ```text
/// s2' = s2 + 8*s1 + (8*b0 + 7*b1 + 6*b2 + 5*b3 + 4*b4 + 3*b5 + 2*b6 + b7)
/// s1' = s1 + (b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7)
/// ```
///
/// and both bracketed sums come out of lane-wise multiplies: pair the
/// bytes into four 16-bit lanes, multiply by an all-ones constant for
/// the plain sum and by the taper `[7,5,3,1]` (plus the even bytes
/// once more) for the weighted sum, and read the answer off the top
/// lane. The `% 255` reductions are deferred to once per 4 MiB block —
/// the `u64` accumulators cannot overflow within one (s2 stays below
/// 2^52) — and Fletcher's sums are mod-255 homomorphic, so deferral
/// does not change the result.
///
/// # Examples
///
/// ```
/// use nectar_cab::checksum::fletcher16;
/// assert_eq!(fletcher16(b"abcde"), 0xC8F0);
/// assert_ne!(fletcher16(b"abcde"), fletcher16(b"abdce")); // order matters
/// ```
pub fn fletcher16(data: &[u8]) -> u16 {
    /// Selects the even byte of each 16-bit lane.
    const M8: u64 = 0x00FF_00FF_00FF_00FF;
    /// Lane-wise sum: the top lane of `x * ONES` is `x`'s lane total.
    const ONES: u64 = 0x0001_0001_0001_0001;
    /// Positional taper: top lane of `x * TAPER` is `7*x0 + 5*x1 +
    /// 3*x2 + 1*x3` over `x`'s lanes (low lane first).
    const TAPER: u64 = 0x0007_0005_0003_0001;
    /// Reduction interval (a multiple of 8): by block end `s1 < 2^30`
    /// and `s2 < 2^52`, far from overflowing.
    const BLOCK: usize = 1 << 22;
    let mut s1: u64 = 0;
    let mut s2: u64 = 0;
    for block in data.chunks(BLOCK) {
        let mut words = block.chunks_exact(8);
        for w in words.by_ref() {
            let w = u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes"));
            // Four lanes of byte pairs: lane k = b[2k] + b[2k+1].
            let pairs = (w & M8) + ((w >> 8) & M8);
            let bsum = pairs.wrapping_mul(ONES) >> 48;
            // Weights [8,7,6,5,4,3,2,1] = [7,7,5,5,3,3,1,1] on the
            // pairs plus one extra count of each even-position byte.
            let esum = (w & M8).wrapping_mul(ONES) >> 48;
            let wsum = (pairs.wrapping_mul(TAPER) >> 48) + esum;
            s2 += 8 * s1 + wsum;
            s1 += bsum;
        }
        for &b in words.remainder() {
            s1 += b as u64;
            s2 += s1;
        }
        s1 %= 255;
        s2 %= 255;
    }
    ((s2 as u16) << 8) | s1 as u16
}

/// Verifies `data` against an expected checksum.
pub fn verify(data: &[u8], expected: u16) -> bool {
    fletcher16(data) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard Fletcher-16 test vectors.
        assert_eq!(fletcher16(b"abcde"), 0xC8F0);
        assert_eq!(fletcher16(b"abcdef"), 0x2057);
        assert_eq!(fletcher16(b"abcdefgh"), 0x0627);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(fletcher16(&[]), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5Au8; 1024];
        let sum = fletcher16(&data);
        for byte in [0usize, 100, 1023] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(fletcher16(&corrupted), sum, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_transpositions() {
        let sum = fletcher16(b"network backplane");
        assert_ne!(fletcher16(b"network backplena"), sum);
    }

    #[test]
    fn large_blocks_do_not_overflow() {
        // One block larger than the internal reduction interval.
        let data = vec![0xFFu8; 100_000];
        let sum = fletcher16(&data);
        assert!(verify(&data, sum));
    }

    /// The textbook one-byte-at-a-time Fletcher-16, kept as the oracle
    /// for the SWAR implementation.
    fn fletcher16_reference(data: &[u8]) -> u16 {
        let mut s1: u32 = 0;
        let mut s2: u32 = 0;
        for chunk in data.chunks(5802) {
            for &b in chunk {
                s1 += b as u32;
                s2 += s1;
            }
            s1 %= 255;
            s2 %= 255;
        }
        ((s2 as u16) << 8) | s1 as u16
    }

    #[test]
    fn swar_matches_bytewise_reference() {
        // Every alignment tail (0..8 leftover bytes), tiny inputs, and
        // sizes straddling the old 5802-byte reduction interval.
        let mut data = Vec::new();
        let mut x: u32 = 0x12345678;
        for _ in 0..20_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        for len in (0..64).chain([5801, 5802, 5803, 8192, 11_604, 20_000]) {
            assert_eq!(fletcher16(&data[..len]), fletcher16_reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn verify_matches() {
        let data = b"message";
        assert!(verify(data, fletcher16(data)));
        assert!(!verify(data, fletcher16(data) ^ 1));
    }
}
