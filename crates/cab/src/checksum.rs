//! The CAB's hardware checksum unit.
//!
//! "Hardware checksum computation removes this burden from protocol
//! software" (§5.1) and checking happens in parallel with DMA, so the
//! simulation charges *zero time* for checksums — the function here
//! exists so the transport protocols can actually detect the corrupted
//! packets the fault-injection experiments create.
//!
//! The algorithm is Fletcher-16, a classic choice for 1980s protocol
//! hardware: position-sensitive (catches reordered bytes, which a plain
//! sum misses) and computable in one pass.

/// Computes the Fletcher-16 checksum of `data`.
///
/// # Examples
///
/// ```
/// use nectar_cab::checksum::fletcher16;
/// assert_eq!(fletcher16(b"abcde"), 0xC8F0);
/// assert_ne!(fletcher16(b"abcde"), fletcher16(b"abdce")); // order matters
/// ```
pub fn fletcher16(data: &[u8]) -> u16 {
    let mut sum1: u32 = 0;
    let mut sum2: u32 = 0;
    for chunk in data.chunks(5802) {
        // 5802 is the largest block with no u32 overflow before reduction.
        for &b in chunk {
            sum1 += b as u32;
            sum2 += sum1;
        }
        sum1 %= 255;
        sum2 %= 255;
    }
    ((sum2 as u16) << 8) | sum1 as u16
}

/// Verifies `data` against an expected checksum.
pub fn verify(data: &[u8], expected: u16) -> bool {
    fletcher16(data) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard Fletcher-16 test vectors.
        assert_eq!(fletcher16(b"abcde"), 0xC8F0);
        assert_eq!(fletcher16(b"abcdef"), 0x2057);
        assert_eq!(fletcher16(b"abcdefgh"), 0x0627);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(fletcher16(&[]), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5Au8; 1024];
        let sum = fletcher16(&data);
        for byte in [0usize, 100, 1023] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(fletcher16(&corrupted), sum, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_transpositions() {
        let sum = fletcher16(b"network backplane");
        assert_ne!(fletcher16(b"network backplena"), sum);
    }

    #[test]
    fn large_blocks_do_not_overflow() {
        // One block larger than the internal reduction interval.
        let data = vec![0xFFu8; 100_000];
        let sum = fletcher16(&data);
        assert!(verify(&data, sum));
    }

    #[test]
    fn verify_matches() {
        let data = b"message";
        assert!(verify(data, fletcher16(data)));
        assert!(!verify(data, fletcher16(data) ^ 1));
    }
}
