//! The CAB DMA controller.
//!
//! "The DMA controller is able to manage simultaneous data transfers
//! between the incoming and outgoing fibers and CAB memory, as well as
//! between VME and CAB memory, leaving the CAB CPU free for protocol
//! and application processing" (§5.1). Four channels exist; each is
//! paced by its medium (fiber 100 Mbit/s, VME 10 MB/s) and all share
//! the 66 MB/s data memory. "The DMA controller also handles flow
//! control during a transfer" (§5.2) — a channel simply stays busy
//! until its bytes have moved at the effective rate.

use crate::memory::{dma_capable, CabAddr};
use crate::protection::{Domain, Perms, ProtectionFault, ProtectionTable};
use crate::timings::CabTimings;
use core::fmt;
use nectar_sim::time::Time;
use nectar_sim::units::Bandwidth;

/// One of the four DMA channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Incoming fiber → data memory.
    FiberIn,
    /// Data memory → outgoing fiber.
    FiberOut,
    /// VME (node memory) → data memory.
    VmeIn,
    /// Data memory → VME (node memory).
    VmeOut,
}

impl Channel {
    /// All four channels.
    pub const ALL: [Channel; 4] =
        [Channel::FiberIn, Channel::FiberOut, Channel::VmeIn, Channel::VmeOut];

    const fn index(self) -> usize {
        match self {
            Channel::FiberIn => 0,
            Channel::FiberOut => 1,
            Channel::VmeIn => 2,
            Channel::VmeOut => 3,
        }
    }

    /// The channel number (0–3), for telemetry and display.
    pub const fn number(self) -> u8 {
        self.index() as u8
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Channel::FiberIn => "fiber-in",
            Channel::FiberOut => "fiber-out",
            Channel::VmeIn => "vme-in",
            Channel::VmeOut => "vme-out",
        };
        f.write_str(s)
    }
}

/// A scheduled DMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// The channel used.
    pub channel: Channel,
    /// Bytes moved.
    pub bytes: usize,
    /// When the transfer began moving data (after queueing behind any
    /// earlier transfer on the same channel).
    pub start: Time,
    /// When the last byte lands.
    pub complete: Time,
}

/// Why a checked DMA transfer was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// The CAB-side buffer is outside data RAM ("DMA transfers are
    /// supported for data memory only", §5.2).
    NotDataMemory {
        /// Offending address.
        addr: CabAddr,
    },
    /// The protection check failed.
    Fault(ProtectionFault),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::NotDataMemory { addr } => {
                write!(f, "DMA target {addr} is not in data memory")
            }
            DmaError::Fault(fault) => fault.fmt(f),
        }
    }
}

impl std::error::Error for DmaError {}

impl From<ProtectionFault> for DmaError {
    fn from(f: ProtectionFault) -> DmaError {
        DmaError::Fault(f)
    }
}

/// The four-channel DMA engine with shared-memory arbitration.
///
/// # Examples
///
/// ```
/// use nectar_cab::dma::{Channel, DmaController};
/// use nectar_cab::timings::CabTimings;
/// use nectar_sim::time::Time;
///
/// let mut dma = DmaController::new(CabTimings::prototype());
/// let t = dma.start(Time::ZERO, Channel::FiberOut, 1024);
/// // 1 KB at 100 Mbit/s = 81.92 us on the outgoing fiber.
/// assert_eq!((t.complete - t.start).nanos(), 81_920);
/// ```
#[derive(Clone, Debug)]
pub struct DmaController {
    timings: CabTimings,
    busy_until: [Time; 4],
    transfers_started: u64,
    bytes_moved: u64,
}

impl DmaController {
    /// A controller with all channels idle.
    pub fn new(timings: CabTimings) -> DmaController {
        DmaController { timings, busy_until: [Time::ZERO; 4], transfers_started: 0, bytes_moved: 0 }
    }

    /// The medium rate of a channel.
    pub fn channel_rate(&self, channel: Channel) -> Bandwidth {
        match channel {
            Channel::FiberIn | Channel::FiberOut => self.timings.fiber_bw,
            Channel::VmeIn | Channel::VmeOut => self.timings.vme_bw,
        }
    }

    /// Channels still moving data at `now` (used for memory-bandwidth
    /// arbitration).
    pub fn active_channels(&self, now: Time) -> usize {
        self.busy_until.iter().filter(|&&t| t > now).count()
    }

    /// When `channel` finishes its current transfer (or `now` if idle).
    pub fn free_at(&self, channel: Channel) -> Time {
        self.busy_until[channel.index()]
    }

    /// Starts a transfer of `bytes` on `channel`; it queues behind any
    /// in-flight transfer on the same channel.
    ///
    /// The effective rate is the channel's medium rate capped by a fair
    /// share of data-memory bandwidth over the channels active at start
    /// (a start-time approximation of the hardware's cycle-by-cycle
    /// arbitration; the 66 MB/s memory exceeds the sum of both fibers
    /// plus VME, so the cap binds only in deliberate overload tests).
    pub fn start(&mut self, now: Time, channel: Channel, bytes: usize) -> Transfer {
        let start = now.max(self.busy_until[channel.index()]);
        let concurrent = (self.active_channels(start) + 1).max(1);
        let share = self.timings.data_memory_bw.shared_by(concurrent);
        let media = self.channel_rate(channel);
        let rate = if share.bits_per_sec() < media.bits_per_sec() { share } else { media };
        let complete = start + rate.transfer_time(bytes);
        self.busy_until[channel.index()] = complete;
        self.transfers_started += 1;
        self.bytes_moved += bytes as u64;
        Transfer { channel, bytes, start, complete }
    }

    /// Starts a transfer after checking that the CAB-side buffer lies
    /// in data memory and that `domain` holds the needed permissions
    /// (read for outbound channels, write for inbound).
    ///
    /// # Errors
    ///
    /// [`DmaError::NotDataMemory`] or [`DmaError::Fault`]; no channel
    /// state changes on error.
    pub fn start_checked(
        &mut self,
        now: Time,
        channel: Channel,
        addr: CabAddr,
        bytes: usize,
        prot: &ProtectionTable,
        domain: Domain,
    ) -> Result<Transfer, DmaError> {
        if !dma_capable(addr, bytes as u32) {
            return Err(DmaError::NotDataMemory { addr });
        }
        let needed = match channel {
            Channel::FiberOut | Channel::VmeOut => Perms::R,
            Channel::FiberIn | Channel::VmeIn => Perms { read: false, write: true, execute: false },
        };
        prot.check(domain, addr, bytes as u32, needed)?;
        Ok(self.start(now, channel, bytes))
    }

    /// Total transfers started since power-on.
    pub fn transfers_started(&self) -> u64 {
        self.transfers_started
    }

    /// Total bytes moved since power-on.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Registers the controller's counters into `reg` under `prefix`
    /// (e.g. `cab0.dma.`).
    pub fn register_into(&self, reg: &mut nectar_sim::metrics::MetricsRegistry, prefix: &str) {
        reg.counter_add(&format!("{prefix}transfers"), self.transfers_started);
        reg.counter_add(&format!("{prefix}bytes_moved"), self.bytes_moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{DATA_RAM_BASE, PROGRAM_RAM_BASE};
    use nectar_sim::time::Dur;

    fn dma() -> DmaController {
        DmaController::new(CabTimings::prototype())
    }

    #[test]
    fn fiber_transfer_paced_at_fiber_rate() {
        let mut d = dma();
        let t = d.start(Time::ZERO, Channel::FiberOut, 1024);
        assert_eq!(t.complete - t.start, Dur::from_nanos(81_920));
    }

    #[test]
    fn vme_transfer_paced_at_10_mb_per_sec() {
        let mut d = dma();
        let t = d.start(Time::ZERO, Channel::VmeOut, 1_000_000);
        // 1 MB at 10 MB/s = 100 ms.
        assert_eq!(t.complete - t.start, Dur::from_millis(100));
    }

    #[test]
    fn same_channel_transfers_queue() {
        let mut d = dma();
        let a = d.start(Time::ZERO, Channel::FiberOut, 1000);
        let b = d.start(Time::ZERO, Channel::FiberOut, 1000);
        assert_eq!(b.start, a.complete, "second transfer waits for the channel");
    }

    #[test]
    fn different_channels_run_concurrently() {
        let mut d = dma();
        let a = d.start(Time::ZERO, Channel::FiberIn, 10_000);
        let b = d.start(Time::ZERO, Channel::FiberOut, 10_000);
        let c = d.start(Time::ZERO, Channel::VmeOut, 10_000);
        assert_eq!(a.start, Time::ZERO);
        assert_eq!(b.start, Time::ZERO);
        assert_eq!(c.start, Time::ZERO);
        // Memory (66 MB/s) exceeds 12.5 + 12.5 + 10 MB/s: media rates hold.
        assert_eq!(a.complete, b.complete);
        assert!(d.active_channels(Time::from_nanos(1)) == 3);
    }

    #[test]
    fn memory_bandwidth_caps_overload() {
        // Shrink memory bandwidth so sharing binds: 20 MB/s across two
        // active fibers -> 10 MB/s each, below the 12.5 MB/s fiber rate.
        let timings = CabTimings {
            data_memory_bw: Bandwidth::from_mbyte_per_sec(20),
            ..CabTimings::prototype()
        };
        let mut d = DmaController::new(timings);
        let _a = d.start(Time::ZERO, Channel::FiberIn, 100_000);
        let b = d.start(Time::ZERO, Channel::FiberOut, 100_000);
        // 100 KB at 10 MB/s = 10 ms (not 8 ms at full fiber rate).
        assert_eq!(b.complete - b.start, Dur::from_millis(10));
    }

    #[test]
    fn checked_transfer_requires_data_memory() {
        let mut d = dma();
        let prot = ProtectionTable::new();
        let err = d
            .start_checked(
                Time::ZERO,
                Channel::FiberOut,
                PROGRAM_RAM_BASE,
                64,
                &prot,
                Domain::KERNEL,
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::NotDataMemory { .. }));
        assert_eq!(d.transfers_started(), 0, "no state change on error");
    }

    #[test]
    fn checked_transfer_enforces_protection() {
        let mut d = dma();
        let prot = ProtectionTable::new();
        let user = Domain::new(4);
        let err = d
            .start_checked(Time::ZERO, Channel::FiberOut, DATA_RAM_BASE, 64, &prot, user)
            .unwrap_err();
        assert!(matches!(err, DmaError::Fault(_)));
        let mut prot = prot;
        prot.grant(user, DATA_RAM_BASE, 1024, Perms::RW);
        assert!(d
            .start_checked(Time::ZERO, Channel::FiberOut, DATA_RAM_BASE, 64, &prot, user)
            .is_ok());
    }

    #[test]
    fn inbound_needs_write_permission() {
        let mut d = dma();
        let mut prot = ProtectionTable::new();
        let user = Domain::new(4);
        prot.grant(user, DATA_RAM_BASE, 1024, Perms::R);
        let err = d
            .start_checked(Time::ZERO, Channel::FiberIn, DATA_RAM_BASE, 64, &prot, user)
            .unwrap_err();
        assert!(matches!(err, DmaError::Fault(_)));
    }

    #[test]
    fn accounting() {
        let mut d = dma();
        d.start(Time::ZERO, Channel::FiberOut, 100);
        d.start(Time::ZERO, Channel::VmeIn, 200);
        assert_eq!(d.transfers_started(), 2);
        assert_eq!(d.bytes_moved(), 300);
        let mut reg = nectar_sim::metrics::MetricsRegistry::new();
        d.register_into(&mut reg, "cab0.dma.");
        assert_eq!(reg.counter("cab0.dma.transfers"), 2);
        assert_eq!(reg.counter("cab0.dma.bytes_moved"), 300);
    }
}
