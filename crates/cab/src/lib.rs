//! # nectar-cab — the communication accelerator board
//!
//! The CAB is "the interface between a node and the Nectar-net"
//! (paper §5): a SPARC-based board that off-loads protocol processing
//! from the node. This crate models its *hardware*:
//!
//! * [`timings`] — every per-operation cost constant ([`CabTimings`](timings::CabTimings)).
//! * [`memory`] — PROM / program RAM / 1 MB data RAM layout and a
//!   buffer allocator; DMA is legal only in data RAM.
//! * [`protection`] — 1 KB-page protection, 32 domains, VME domain.
//! * [`dma`] — the four-channel DMA controller with shared 66 MB/s
//!   data-memory bandwidth and 10 MB/s VME pacing.
//! * [`checksum`] — the hardware Fletcher-16 unit (zero time cost).
//! * [`timer`] — low-overhead hardware timers.
//! * [`fiber`] — the 1 KB fiber input/output queues and the upcall
//!   drain deadline of §6.2.1.
//! * [`board`] — [`Cab`](board::Cab) assembling all of the above.
//!
//! The CAB's *software* (kernel threads, mailboxes, protocols) lives in
//! `nectar-kernel` and `nectar-proto`.
//!
//! # Examples
//!
//! ```
//! use nectar_cab::prelude::*;
//! use nectar_sim::time::Time;
//!
//! let mut cab = Cab::new(CabId::new(0), CabTimings::prototype());
//! let buf = cab.memory.alloc(1024)?;
//! let xfer = cab.dma.start_checked(
//!     Time::ZERO, Channel::FiberOut, buf, 1024, &cab.protection, Domain::KERNEL,
//! )?;
//! // 1 KB leaves at fiber rate: 81.92 us.
//! assert_eq!((xfer.complete - xfer.start).nanos(), 81_920);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod checksum;
pub mod dma;
pub mod fiber;
pub mod memory;
pub mod protection;
pub mod timer;
pub mod timings;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::board::{Cab, CabId};
    pub use crate::checksum::fletcher16;
    pub use crate::dma::{Channel, DmaController, DmaError, Transfer};
    pub use crate::fiber::FiberPort;
    pub use crate::memory::{CabAddr, DataAllocator, Region};
    pub use crate::protection::{Domain, Perms, ProtectionFault, ProtectionTable};
    pub use crate::timer::{TimerId, TimerUnit};
    pub use crate::timings::CabTimings;
}
