//! The CAB's fiber interface.
//!
//! "The fiber interface uses the same circuit as the HUB I/O port"
//! (§5.2): a 1 KB input queue and an output queue per direction. The
//! critical real-time constraint it imposes is §6.2.1's: "the transport
//! layer upcalls must determine the destination mailbox and return to
//! the datalink layer before incoming data overflows the CAB input
//! queue". [`FiberPort::drain_deadline`] computes exactly that budget,
//! and the datalink model checks it when a packet arrives.

use nectar_sim::time::Time;
use nectar_sim::units::Bandwidth;

/// One direction pair of the CAB's fiber interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiberPort {
    capacity: usize,
    bandwidth: Bandwidth,
    overruns: u64,
}

impl FiberPort {
    /// The prototype interface: 1 KB queues at 100 Mbit/s.
    pub fn prototype() -> FiberPort {
        FiberPort::new(1024, Bandwidth::from_mbit_per_sec(100))
    }

    /// A port with explicit queue capacity and fiber rate.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, bandwidth: Bandwidth) -> FiberPort {
        assert!(capacity > 0, "fiber queue capacity must be positive");
        FiberPort { capacity, bandwidth, overruns: 0 }
    }

    /// Queue capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The fiber's serialization rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Latest time the receive DMA may start draining a packet of
    /// `bytes` whose head arrived at `head_at`, before the input queue
    /// overruns. Packets no larger than the queue can always buffer
    /// fully, so their deadline is unbounded ([`Time::MAX`]).
    pub fn drain_deadline(&self, head_at: Time, bytes: usize) -> Time {
        if bytes <= self.capacity {
            Time::MAX
        } else {
            head_at + self.bandwidth.transfer_time(self.capacity)
        }
    }

    /// Records and counts an input-queue overrun (the datalink layer
    /// calls this when a drain started after its deadline).
    pub fn record_overrun(&mut self) {
        self.overruns += 1;
    }

    /// Input-queue overruns since creation.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }
}

impl Default for FiberPort {
    fn default() -> FiberPort {
        FiberPort::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_sim::time::Dur;

    #[test]
    fn prototype_matches_hub_port_circuit() {
        let p = FiberPort::prototype();
        assert_eq!(p.capacity(), 1024);
        assert_eq!(p.bandwidth().as_mbit_per_sec_f64(), 100.0);
    }

    #[test]
    fn small_packets_buffer_fully() {
        let p = FiberPort::prototype();
        assert_eq!(p.drain_deadline(Time::from_micros(5), 1024), Time::MAX);
    }

    #[test]
    fn large_packets_must_cut_through() {
        let p = FiberPort::prototype();
        // A 4 KB packet fills the 1 KB queue 81.92 us after its head.
        let deadline = p.drain_deadline(Time::ZERO, 4096);
        assert_eq!(deadline, Time::ZERO + Dur::from_nanos(81_920));
    }

    #[test]
    fn overrun_accounting() {
        let mut p = FiberPort::prototype();
        p.record_overrun();
        p.record_overrun();
        assert_eq!(p.overruns(), 2);
    }
}
