//! The deterministic case runner: configuration and PRNG.

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
///
/// Only the fields the workspace uses are present; construct with
/// struct-update syntax over [`ProptestConfig::default`].
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (compat constructor).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// SplitMix64: tiny, fast, and statistically fine for test sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n = 0` means the full 64-bit range.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return self.next_u64();
        }
        // Multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the plain approach is irrelevant for test data, but
        // this is just as cheap.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Drives one property test: owns the config and derives per-case RNGs.
#[derive(Clone, Debug)]
pub struct TestRunner {
    cases: u32,
    seed_base: u64,
}

/// FNV-1a, used to turn the test name into a stable seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// A runner for the test called `name`.
    ///
    /// The `PROPTEST_CASES` environment variable overrides the
    /// configured case count, like the real crate.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        TestRunner { cases, seed_base: fnv1a(name.as_bytes()) }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The deterministic RNG for case `case`.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.seed_base ^ ((case as u64) << 1 | 1).wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn runner_seeds_differ_per_case_and_name() {
        let r = TestRunner::new(ProptestConfig::default(), "alpha");
        let s = TestRunner::new(ProptestConfig::default(), "beta");
        assert_ne!(r.rng_for(0).next_u64(), r.rng_for(1).next_u64());
        assert_ne!(r.rng_for(0).next_u64(), s.rng_for(0).next_u64());
    }
}
