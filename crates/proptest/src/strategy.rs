//! Strategies: composable recipes for sampling random values.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for producing values of [`Strategy::Value`].
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// a strategy is just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a natural "uniform over the whole domain" sampler; the
/// target of [`any`](crate::any).
pub trait ArbitrarySample {
    /// Samples one uniformly random value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`any`](crate::any).
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    pub(crate) fn new() -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64 - lo as u64).wrapping_add(1); // 0 means full u64 range
                lo + rng.below(span) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as u64 - lo as u64).wrapping_add(1);
                lo + rng.below(span) as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitrarySample for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> ArbitrarySample for [u8; N] {
    fn arbitrary_sample(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Strategy for `Vec`s with a length drawn from `size` and elements
/// from `element`; built by `prop::collection::vec`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Builds a [`VecStrategy`]. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u16..).sample(&mut rng);
            assert!(w >= 1);
            let x = (5usize..=9).sample(&mut rng);
            assert!((5..=9).contains(&x));
        }
    }

    #[test]
    fn vec_lengths_stay_in_bounds() {
        let mut rng = TestRng::new(2);
        let strat = vec(crate::any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(3);
        let strat = crate::prop_oneof![(0u8..10).prop_map(|x| x as u32), Just(99u32),];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v < 10 || v == 99);
        }
    }

    crate::proptest! {
        #![proptest_config(crate::ProptestConfig { cases: 16, ..Default::default() })]

        #[test]
        fn macro_samples_all_args(a in 0u8..4, b in crate::prop::collection::vec(crate::any::<bool>(), 0..5)) {
            crate::prop_assert!(a < 4);
            crate::prop_assert!(b.len() < 5);
        }
    }
}
