//! A vendored, offline subset of the `proptest` API.
//!
//! The build environment for this repository has no access to
//! crates.io, so the real `proptest` crate cannot be fetched. This
//! crate implements the slice of its surface that the workspace's
//! property tests actually use — `proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `any`, `Just`, range and tuple strategies,
//! `prop::collection::vec`, and `ProptestConfig` — over a small
//! deterministic PRNG.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs
//!   left to the assertion message; it is not minimised.
//! - **Deterministic by construction.** The seed for each case is
//!   derived from the test's name and the case index, so a failure
//!   reproduces on every run and on every machine.
//! - **`prop_assert*!` panic** instead of returning `Err`, which is
//!   equivalent under this runner.
//!
//! The number of cases per test defaults to [`ProptestConfig::default`]
//! and can be raised globally with the `PROPTEST_CASES` environment
//! variable, mirroring the real crate's knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use test_runner::{ProptestConfig, TestRng, TestRunner};

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, VecStrategy};
    }
}

/// Creates a strategy producing uniformly random values of `T`.
pub fn any<T: strategy::ArbitrarySample>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Any, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng, TestRunner};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
///
/// Unlike the real proptest (which records the failure and shrinks),
/// this shim panics immediately, which fails the test identically.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Builds a strategy choosing uniformly among the listed strategies.
///
/// All branches must produce the same value type. The real crate's
/// `weight => strategy` form is not supported (unused here).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...)` body
/// runs once per sampled case.
///
/// Supports the optional leading
/// `#![proptest_config(ProptestConfig { .. })]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
