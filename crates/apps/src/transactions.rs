//! Distributed transactions over Nectar (§7).
//!
//! "Examples of such applications include distributed transaction
//! systems, such as Camelot" (§7, citing Spector et al.). The workload
//! is a two-phase commit: a coordinator CAB drives PREPARE and COMMIT
//! rounds over the request-response transport against a set of
//! participant CABs, each of which "writes" a log record (a modelled
//! disk/NVRAM cost) before voting. Commit latency is dominated by two
//! RPC rounds — tens of microseconds on Nectar versus multiple
//! milliseconds on a LAN, which is what makes distributed transactions
//! at this granularity viable.

use nectar_core::system::NectarSystem;
use nectar_core::world::SystemConfig;
use nectar_sim::rng::Rng;
use nectar_sim::stats::Samples;
use nectar_sim::time::{Dur, Time};

/// Transaction workload parameters.
#[derive(Clone, Debug)]
pub struct TxnConfig {
    /// Participant CABs (the coordinator is one more).
    pub participants: usize,
    /// Transactions to run.
    pub transactions: usize,
    /// Payload of each prepare/commit record.
    pub record_bytes: usize,
    /// Modelled log-force time at each participant per round (NVRAM-
    /// class; a 1989 disk force would add ~20 ms and drown the net).
    pub log_force: Dur,
    /// Probability a participant votes abort.
    pub abort_probability: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for TxnConfig {
    fn default() -> TxnConfig {
        TxnConfig {
            participants: 3,
            transactions: 25,
            record_bytes: 128,
            log_force: Dur::from_micros(50),
            abort_probability: 0.1,
            seed: 11,
        }
    }
}

/// Results of a transaction run.
#[derive(Clone, Debug)]
pub struct TxnReport {
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted (some participant voted no).
    pub aborted: usize,
    /// End-to-end latency of committed transactions (ns).
    pub commit_latency: Samples,
    /// Total simulated time.
    pub elapsed: Dur,
}

impl TxnReport {
    /// Committed transactions per second.
    pub fn commit_rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

const REPLY_MB: u16 = 5;
const SERVICE_MB: u16 = 80;

/// Runs two-phase commit with the coordinator on CAB 0 and
/// participants on CABs `1..=participants`.
///
/// # Panics
///
/// Panics if the system cannot host the CABs or an RPC round wedges.
pub fn run_transactions(cfg: &TxnConfig, sys_cfg: SystemConfig) -> TxnReport {
    assert!(cfg.participants >= 1, "a transaction needs participants");
    assert!(cfg.participants < sys_cfg.hub.ports, "participants + coordinator on one HUB");
    let mut sys = NectarSystem::single_hub(cfg.participants + 1, sys_cfg);
    let coordinator = 0usize;
    let mut rng = Rng::seed_from(cfg.seed);
    let mut commit_latency = Samples::new("commit latency (ns)");
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let t_start = sys.world().now();

    for txn in 0..cfg.transactions {
        let t0 = sys.world().now();
        // Phase 1: PREPARE to every participant (parallel RPCs).
        let votes = rpc_round(
            &mut sys,
            coordinator,
            cfg,
            txn as u32 * 2,
            |r| {
                // Each participant forces its log then votes.
                !r.chance(cfg.abort_probability)
            },
            &mut rng,
        );
        let all_yes = votes.iter().all(|&v| v);
        // Phase 2: COMMIT or ABORT (parallel RPCs; participants ack
        // after forcing the outcome record).
        let _acks = rpc_round(&mut sys, coordinator, cfg, txn as u32 * 2 + 1, |_| true, &mut rng);
        let latency = sys.world().now().saturating_since(t0);
        if all_yes {
            committed += 1;
            commit_latency.record_dur(latency);
        } else {
            aborted += 1;
        }
    }

    TxnReport {
        committed,
        aborted,
        commit_latency,
        elapsed: sys.world().now().saturating_since(t_start),
    }
}

/// One parallel RPC round from the coordinator to every participant;
/// returns each participant's boolean vote. The modelled log force is
/// inserted between request delivery and the response.
fn rpc_round(
    sys: &mut NectarSystem,
    coordinator: usize,
    cfg: &TxnConfig,
    _round: u32,
    mut vote: impl FnMut(&mut Rng) -> bool,
    rng: &mut Rng,
) -> Vec<bool> {
    let n = cfg.participants;
    let record = vec![0xC4u8; cfg.record_bytes];
    let before = sys.world().deliveries.len();
    let mut txs = Vec::with_capacity(n);
    for p in 1..=n {
        let tx = sys.world_mut().send_rpc_now(coordinator, p, REPLY_MB, SERVICE_MB, &record);
        txs.push((p, tx));
    }
    // Wait for all requests to land.
    run_until_count(sys, before + n);
    // Every participant forces its log, then responds with its vote.
    let mut votes = Vec::with_capacity(n);
    let force = cfg.log_force;
    let resume = sys.world().now() + force;
    sys.world_mut().run_until(resume);
    let before_resp = sys.world().deliveries.len();
    for &(p, tx) in &txs {
        let v = vote(rng);
        votes.push(v);
        let body = if v { vec![1u8] } else { vec![0u8] };
        assert!(sys.world_mut().rpc_respond_now(p, coordinator, tx, &body));
        // Consume the request from the participant's service mailbox.
        let _ = sys.world_mut().mailbox_take(p, SERVICE_MB);
    }
    // Wait for all responses at the coordinator.
    run_until_count(sys, before_resp + n);
    for _ in 0..n {
        let _ = sys.world_mut().mailbox_take(coordinator, REPLY_MB);
    }
    votes
}

fn run_until_count(sys: &mut NectarSystem, count: usize) {
    let deadline = sys.world().now() + Dur::from_millis(100);
    while sys.world().deliveries.len() < count {
        let Some(next) = sys.world().next_event_time() else {
            panic!("transaction round wedged");
        };
        assert!(next <= deadline, "transaction round timed out");
        sys.world_mut().run_until(next);
    }
    let _ = Time::ZERO;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_commit_and_abort() {
        let cfg = TxnConfig { transactions: 20, ..TxnConfig::default() };
        let report = run_transactions(&cfg, SystemConfig::default());
        assert_eq!(report.committed + report.aborted, 20);
        assert!(report.committed > 0, "10% abort probability cannot kill everything");
        assert_eq!(report.commit_latency.len(), report.committed);
    }

    #[test]
    fn commit_latency_is_two_rounds_plus_log_forces() {
        // Two RPC rounds (~38 us each measured) + two 50 us log forces
        // + fan-out serialization: commits land well under a
        // millisecond.
        let report = run_transactions(&TxnConfig::default(), SystemConfig::default());
        assert!(
            report.commit_latency.max() < 1_000_000.0,
            "commit max {} ns",
            report.commit_latency.max()
        );
        assert!(
            report.commit_latency.mean() > 100_000.0,
            "two rounds + forces cannot be cheaper than 100 us: {}",
            report.commit_latency.mean()
        );
    }

    #[test]
    fn abort_probability_zero_commits_everything() {
        let cfg = TxnConfig { abort_probability: 0.0, transactions: 10, ..TxnConfig::default() };
        let report = run_transactions(&cfg, SystemConfig::default());
        assert_eq!(report.committed, 10);
        assert_eq!(report.aborted, 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_transactions(&TxnConfig::default(), SystemConfig::default());
        let b = run_transactions(&TxnConfig::default(), SystemConfig::default());
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.elapsed, b.elapsed);
    }
}
