//! The vision application (§7).
//!
//! "One of the first Nectar applications is in the area of vision. The
//! application uses a Warp machine for low-level vision analysis and
//! Sun workstations for manipulating image features that are stored in
//! a distributed spatial database. It requires both high bandwidth for
//! image transfer and low latency for communication between nodes in
//! the database" (§7).
//!
//! The workload: a Warp node streams image tiles to database nodes
//! (bulk, bandwidth-bound) while a recognition task issues spatial
//! queries against the database (small RPCs, latency-bound). The
//! experiment (E16) checks that both coexist: tile transfer approaches
//! the fiber rate *and* query latency stays within the paper's
//! interactive budget.

use nectar_core::system::NectarSystem;
use nectar_core::world::SystemConfig;
use nectar_sim::stats::Samples;
use nectar_sim::time::{Dur, Time};
use nectar_sim::units::Bandwidth;

/// Vision workload parameters.
#[derive(Clone, Debug)]
pub struct VisionConfig {
    /// Frames to process.
    pub frames: usize,
    /// Bytes per frame (512×512 8-bit image = 256 KB).
    pub image_bytes: usize,
    /// Tiles each frame is split into (one message per tile).
    pub tiles_per_frame: usize,
    /// Database nodes (Sun workstations).
    pub db_nodes: usize,
    /// Spatial queries issued per frame.
    pub queries_per_frame: usize,
    /// Query/response payload bytes.
    pub query_bytes: usize,
}

impl Default for VisionConfig {
    fn default() -> VisionConfig {
        VisionConfig {
            frames: 4,
            image_bytes: 256 * 1024,
            tiles_per_frame: 16,
            db_nodes: 3,
            queries_per_frame: 8,
            query_bytes: 64,
        }
    }
}

/// Results of a vision run.
#[derive(Clone, Debug)]
pub struct VisionReport {
    /// Frames processed.
    pub frames: usize,
    /// Mean time from first tile sent to last tile delivered per frame.
    pub frame_transfer: Samples,
    /// Achieved image throughput over the whole run.
    pub image_throughput: Bandwidth,
    /// Query round-trip latencies (nanoseconds).
    pub query_rtt: Samples,
    /// Total simulated time.
    pub elapsed: Dur,
    /// Simulation events the run processed.
    pub events: u64,
}

impl VisionReport {
    /// Frames per second the pipeline sustained.
    pub fn frame_rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.frames as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs the vision pipeline on a single-HUB system: CAB 0 is the Warp,
/// CABs `1..=db_nodes` are the database Suns, and the last CAB hosts
/// the recognition task issuing queries.
///
/// # Panics
///
/// Panics if the system cannot fit `db_nodes + 2` CABs on one HUB.
pub fn run_vision(cfg: &VisionConfig, sys_cfg: SystemConfig) -> VisionReport {
    let cabs = cfg.db_nodes + 2;
    assert!(cabs <= sys_cfg.hub.ports, "vision system needs {cabs} ports");
    let mut sys = NectarSystem::single_hub(cabs, sys_cfg);
    let warp = 0usize;
    let recognizer = cabs - 1;
    let tile_bytes = cfg.image_bytes / cfg.tiles_per_frame;
    let mut frame_transfer = Samples::new("frame transfer (ns)");
    let mut query_rtt = Samples::new("query rtt (ns)");
    let t_start = sys.world().now();

    for frame in 0..cfg.frames {
        // Phase 1: the Warp streams this frame's tiles round-robin over
        // the database nodes.
        let t0 = sys.world().now();
        let before = sys.world().deliveries.len();
        for tile in 0..cfg.tiles_per_frame {
            let db = 1 + (tile % cfg.db_nodes);
            let payload = vec![(frame ^ tile) as u8; tile_bytes];
            sys.world_mut().send_stream_now(warp, db, 1, 2, &payload);
        }
        let target = before + cfg.tiles_per_frame;
        while sys.world().deliveries.len() < target {
            let Some(next) = sys.world().next_event_time() else {
                panic!("tile transfer wedged at frame {frame}");
            };
            sys.world_mut().run_until(next);
        }
        let last_tile = sys.world().deliveries.last().expect("tiles delivered").at;
        frame_transfer.record_dur(last_tile.saturating_since(t0));
        // Drain the tile mailboxes (the database "ingests" the tiles).
        for db in 1..=cfg.db_nodes {
            while sys.world_mut().mailbox_take(db, 2).is_some() {}
        }

        // Phase 2: the recognition task queries the spatial database.
        for q in 0..cfg.queries_per_frame {
            let db = 1 + (q % cfg.db_nodes);
            let rtt = sys.measure_rpc_rtt(recognizer, db, cfg.query_bytes, cfg.query_bytes);
            query_rtt.record_dur(rtt);
        }
    }

    let elapsed = sys.world().now().saturating_since(t_start);
    let total_image_bytes = (cfg.frames * cfg.tiles_per_frame * tile_bytes) as u64;
    let image_throughput = if elapsed.is_zero() {
        Bandwidth::from_bits_per_sec(1)
    } else {
        Bandwidth::from_bits_per_sec(
            ((total_image_bytes as u128 * 8 * 1_000_000_000 / elapsed.nanos() as u128) as u64)
                .max(1),
        )
    };
    let _ = Time::ZERO; // keep the Time import honest for future probes
    VisionReport {
        frames: cfg.frames,
        frame_transfer,
        image_throughput,
        query_rtt,
        elapsed,
        events: sys.world().events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_moves_frames_and_answers_queries() {
        let cfg = VisionConfig { frames: 2, image_bytes: 64 * 1024, ..VisionConfig::default() };
        let report = run_vision(&cfg, SystemConfig::default());
        assert_eq!(report.frames, 2);
        assert_eq!(report.frame_transfer.len(), 2);
        assert_eq!(report.query_rtt.len(), 16);
        // Queries stay interactive even while frames move.
        assert!(
            report.query_rtt.max() < 200_000.0,
            "query rtt p100 {} ns exceeds 200 us",
            report.query_rtt.max()
        );
    }

    #[test]
    fn image_transfer_uses_the_fiber_well() {
        let cfg = VisionConfig { frames: 2, ..VisionConfig::default() };
        let report = run_vision(&cfg, SystemConfig::default());
        // The Warp's single outgoing fiber bounds the tile stream.
        let mbit = report.image_throughput.as_mbit_per_sec_f64();
        assert!(mbit > 40.0, "tile stream too slow: {mbit:.1} Mbit/s");
        assert!(mbit <= 100.0);
    }

    #[test]
    fn video_rate_is_reachable_for_modest_frames() {
        // A 64 KB feature frame at the fiber's ~100 Mbit/s moves in
        // ~6 ms; with queries the pipeline should still beat 30 frames
        // per second ("megabyte images at video rates" motivates the
        // full-size budget, §2.3).
        let cfg = VisionConfig {
            frames: 3,
            image_bytes: 64 * 1024,
            queries_per_frame: 4,
            ..VisionConfig::default()
        };
        let report = run_vision(&cfg, SystemConfig::default());
        assert!(report.frame_rate() > 30.0, "frame rate {:.1}", report.frame_rate());
    }
}
