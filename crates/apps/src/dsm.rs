//! Distributed shared virtual memory over Nectar (§7).
//!
//! "Examples of such applications include distributed transaction
//! systems, such as Camelot, and the simulation of shared virtual
//! memory over a distributed system using Mach. In these applications,
//! the CAB will play a critical role as an operating system
//! co-processor" (§7).
//!
//! The workload: a home node keeps the master copy of every page;
//! client CABs take read and write faults. A read fault is an RPC to
//! the home followed by a byte-stream transfer of the 4 KB page; a
//! write fault additionally invalidates all cached copies with one
//! hardware-multicast message before the grant. Fault latency is the
//! paper's motivating metric: at LAN speeds a page fault costs
//! milliseconds, at Nectar speeds it is a few hundred microseconds —
//! the difference between DSM being a toy and a tool.

use nectar_core::system::NectarSystem;
use nectar_core::world::SystemConfig;
use nectar_sim::rng::Rng;
use nectar_sim::stats::Samples;
use nectar_sim::time::{Dur, Time};
use std::collections::HashSet;

/// DSM workload parameters.
#[derive(Clone, Debug)]
pub struct DsmConfig {
    /// Client CABs taking faults (the home node is one more).
    pub clients: usize,
    /// Shared pages.
    pub pages: usize,
    /// Page size in bytes (Mach-era 4 KB).
    pub page_bytes: usize,
    /// Faults to drive.
    pub faults: usize,
    /// Probability a fault is a write (needs invalidation).
    pub write_ratio: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for DsmConfig {
    fn default() -> DsmConfig {
        DsmConfig { clients: 4, pages: 16, page_bytes: 4096, faults: 40, write_ratio: 0.3, seed: 4 }
    }
}

/// Results of a DSM run.
#[derive(Clone, Debug)]
pub struct DsmReport {
    /// Read-fault service latency (request to page-in-memory, ns).
    pub read_fault: Samples,
    /// Write-fault service latency (includes invalidation, ns).
    pub write_fault: Samples,
    /// Invalidation messages multicast.
    pub invalidations: u64,
    /// Total simulated time.
    pub elapsed: Dur,
}

const REPLY_MB: u16 = 5;
const SERVICE_MB: u16 = 80;
const PAGE_MB: u16 = 9;
const INVALIDATE_MB: u16 = 10;

/// Runs the DSM fault workload. The home node is CAB 0; clients are
/// CABs `1..=clients`.
///
/// # Panics
///
/// Panics if the system cannot host `clients + 1` CABs, or if a fault
/// wedges (deadline 50 ms per fault).
pub fn run_dsm(cfg: &DsmConfig, sys_cfg: SystemConfig) -> DsmReport {
    assert!(cfg.clients >= 2, "DSM needs at least two clients");
    assert!(cfg.clients < sys_cfg.hub.ports, "clients + home must fit one HUB");
    let mut sys = NectarSystem::single_hub(cfg.clients + 1, sys_cfg);
    let home = 0usize;
    let mut rng = Rng::seed_from(cfg.seed);
    let mut read_fault = Samples::new("read fault (ns)");
    let mut write_fault = Samples::new("write fault (ns)");
    let mut invalidations = 0u64;
    // Which clients hold a cached copy of each page.
    let mut cached: Vec<HashSet<usize>> = vec![HashSet::new(); cfg.pages];
    let t_start = sys.world().now();

    for fault_no in 0..cfg.faults {
        let client = 1 + (rng.range(0..=(cfg.clients as u64 - 1)) as usize);
        let page = rng.range(0..=(cfg.pages as u64 - 1)) as usize;
        let is_write = rng.chance(cfg.write_ratio);
        if cached[page].contains(&client) && !is_write {
            continue; // hit, no fault
        }
        let t0 = sys.world().now();

        // 1. Fault RPC to the home node.
        let deliveries_before = sys.world().deliveries.len();
        let tx = sys.world_mut().send_rpc_now(client, home, REPLY_MB, SERVICE_MB, &[page as u8]);
        run_until_count(&mut sys, deliveries_before + 1, fault_no);

        // 2. Write faults invalidate every other cached copy first —
        //    one hardware multicast from the home node.
        if is_write {
            let holders: Vec<usize> =
                cached[page].iter().copied().filter(|&c| c != client).collect();
            if !holders.is_empty() {
                let before = sys.world().deliveries.len();
                sys.world_mut().send_multicast_now(
                    home,
                    &holders,
                    INVALIDATE_MB,
                    INVALIDATE_MB,
                    &[page as u8],
                );
                invalidations += 1;
                run_until_count(&mut sys, before + holders.len(), fault_no);
                for &h in &holders {
                    let _ = sys.world_mut().mailbox_take(h, INVALIDATE_MB);
                }
            }
            cached[page].clear();
        }

        // 3. The home grants (RPC response) and streams the page.
        let before = sys.world().deliveries.len();
        assert!(sys.world_mut().rpc_respond_now(home, client, tx, &[1]));
        let page_data = vec![page as u8; cfg.page_bytes];
        sys.world_mut().send_stream_now(home, client, PAGE_MB, PAGE_MB, &page_data);
        // Wait for both the grant and the page.
        run_until_count(&mut sys, before + 2, fault_no);
        let page_msg = sys.world_mut().mailbox_take(client, PAGE_MB).expect("page arrived");
        assert_eq!(page_msg.len(), cfg.page_bytes);
        let _ = sys.world_mut().mailbox_take(client, REPLY_MB);

        cached[page].insert(client);
        let latency = sys.world().now().saturating_since(t0);
        if is_write {
            write_fault.record_dur(latency);
        } else {
            read_fault.record_dur(latency);
        }
    }

    DsmReport {
        read_fault,
        write_fault,
        invalidations,
        elapsed: sys.world().now().saturating_since(t_start),
    }
}

fn run_until_count(sys: &mut NectarSystem, count: usize, fault_no: usize) {
    let deadline = sys.world().now() + Dur::from_millis(50);
    while sys.world().deliveries.len() < count {
        let Some(next) = sys.world().next_event_time() else {
            panic!("DSM fault {fault_no} wedged: no pending events");
        };
        assert!(next <= deadline, "DSM fault {fault_no} timed out");
        sys.world_mut().run_until(next);
    }
    let _ = Time::ZERO;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_complete_and_pages_arrive() {
        let cfg = DsmConfig { faults: 20, ..DsmConfig::default() };
        let report = run_dsm(&cfg, SystemConfig::default());
        assert!(report.read_fault.len() + report.write_fault.len() > 0);
        assert!(report.elapsed > Dur::ZERO);
    }

    #[test]
    fn fault_latency_is_sub_millisecond() {
        // A 4 KB page at 100 Mbit/s is ~330 us of wire; with RPC and
        // software the fault must stay well under a millisecond — the
        // co-processor claim of §7.
        let report = run_dsm(&DsmConfig::default(), SystemConfig::default());
        if !report.read_fault.is_empty() {
            assert!(
                report.read_fault.max() < 1_000_000.0,
                "read fault max {} ns",
                report.read_fault.max()
            );
        }
        if !report.write_fault.is_empty() {
            assert!(report.write_fault.max() < 2_000_000.0);
        }
    }

    #[test]
    fn writes_trigger_invalidations_once_shared() {
        let cfg = DsmConfig {
            faults: 60,
            pages: 2, // force sharing
            write_ratio: 0.5,
            ..DsmConfig::default()
        };
        let report = run_dsm(&cfg, SystemConfig::default());
        assert!(report.invalidations > 0, "shared pages must get invalidated");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_dsm(&DsmConfig::default(), SystemConfig::default());
        let b = run_dsm(&DsmConfig::default(), SystemConfig::default());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.invalidations, b.invalidations);
    }
}
