//! # nectar-apps — the paper's application workloads
//!
//! Section 7 of the paper names the first Nectar applications; this
//! crate implements them as measurable workloads over `nectar-core`:
//!
//! * [`vision`] — the Warp-fed vision pipeline with a distributed
//!   spatial database: bulk image tiles plus latency-critical queries.
//! * [`production`] — the parallel production system: a distributed
//!   RETE match with fine-grained token traffic.
//! * [`scientific`] — iPSC-ported kernels: a 1-D Jacobi stencil and
//!   parallel simulated annealing with ring exchange.
//! * [`dsm`] — shared virtual memory over Nectar (the Mach DSM use of
//!   §7), with multicast invalidation.
//! * [`transactions`] — Camelot-style two-phase commit over the
//!   request-response transport (§7).
//!
//! Each workload returns a report the experiment harness (E16/E17)
//! prints alongside the paper's qualitative claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsm;
pub mod production;
pub mod scientific;
pub mod transactions;
pub mod vision;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::dsm::{run_dsm, DsmConfig, DsmReport};
    pub use crate::production::{run_production, ProductionConfig, ProductionReport};
    pub use crate::scientific::{
        run_annealing, run_jacobi, AnnealingConfig, AnnealingReport, JacobiConfig, JacobiReport,
    };
    pub use crate::transactions::{run_transactions, TxnConfig, TxnReport};
    pub use crate::vision::{run_vision, VisionConfig, VisionReport};
}
