//! The parallel production system (§7).
//!
//! "We are implementing a parallel production system as an example of
//! an application that requires run-time load balancing. Matching is
//! performed in parallel using a distributed RETE network, and tokens
//! that propagate through the network are stored in a distributed task
//! queue. The low latency communication of Nectar provides good support
//! for the fine-grained parallelism required by this application" (§7).
//!
//! The workload: worker CABs hold partitions of a RETE match network.
//! A token delivered to a worker costs a (configurable) match time and
//! probabilistically emits successor tokens to other workers. The
//! experiment (E17) measures token throughput and per-hop latency —
//! the quantities that collapse when each token costs a millisecond of
//! LAN software instead of tens of microseconds of Nectar.

use nectar_core::system::NectarSystem;
use nectar_core::world::{AppSend, SystemConfig};
use nectar_sim::rng::Rng;
use nectar_sim::stats::Samples;
use nectar_sim::time::{Dur, Time};
use std::sync::Arc;

/// How successor tokens pick their worker (§7: the production system
/// is "an example of an application that requires run-time load
/// balancing").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Balance {
    /// Uniformly random worker (no balancing).
    Random,
    /// The worker with the fewest outstanding tokens (the distributed
    /// task queue's balancing policy).
    LeastLoaded,
}

/// Production-system workload parameters.
#[derive(Clone, Debug)]
pub struct ProductionConfig {
    /// Worker CABs holding RETE partitions.
    pub workers: usize,
    /// Tokens injected at the start.
    pub seed_tokens: usize,
    /// Stop after this many tokens have been matched.
    pub max_tokens: usize,
    /// CPU time one match costs on the worker.
    pub match_cost: Dur,
    /// Probability a match emits a successor token (per slot, two
    /// slots: expected fan-out = 2 × this).
    pub fanout_probability: f64,
    /// Token payload bytes (working-memory element reference).
    pub token_bytes: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Successor-placement policy.
    pub balance: Balance,
}

impl Default for ProductionConfig {
    fn default() -> ProductionConfig {
        ProductionConfig {
            workers: 6,
            seed_tokens: 8,
            max_tokens: 400,
            match_cost: Dur::from_micros(20),
            fanout_probability: 0.45,
            token_bytes: 48,
            seed: 1989,
            balance: Balance::Random,
        }
    }
}

/// Results of a production-system run.
#[derive(Clone, Debug)]
pub struct ProductionReport {
    /// Tokens matched before the run stopped.
    pub tokens_matched: usize,
    /// Simulated time the run took.
    pub elapsed: Dur,
    /// Per-token network latency (send to delivery, nanoseconds).
    pub token_latency: Samples,
    /// Peak number of tokens outstanding at one worker.
    pub peak_worker_backlog: usize,
    /// Simulation events the run processed.
    pub events: u64,
}

impl ProductionReport {
    /// Matched tokens per simulated second.
    pub fn token_rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.tokens_matched as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs the distributed match on a single-HUB system of
/// `cfg.workers` CABs.
///
/// # Panics
///
/// Panics if the workers do not fit one HUB, or if token flow wedges.
pub fn run_production(cfg: &ProductionConfig, sys_cfg: SystemConfig) -> ProductionReport {
    assert!(cfg.workers >= 2, "need at least two workers");
    assert!(cfg.workers <= sys_cfg.hub.ports, "workers must fit one HUB");
    let mut sys = NectarSystem::single_hub(cfg.workers, sys_cfg);
    let mut rng = Rng::seed_from(cfg.seed);
    let mut token_latency = Samples::new("token latency (ns)");
    const TOKEN_MAILBOX: u16 = 7;
    let t_start = sys.world().now();

    // Seed the task queue.
    for i in 0..cfg.seed_tokens {
        let src = i % cfg.workers;
        let dst = pick_other(&mut rng, cfg.workers, src);
        let payload = vec![i as u8; cfg.token_bytes];
        sys.world_mut().send_datagram_now(src, dst, TOKEN_MAILBOX, TOKEN_MAILBOX, &payload);
    }

    let mut matched = 0usize;
    let mut processed_deliveries = 0usize;
    let mut idle_rounds = 0u32;
    let mut outstanding = vec![0usize; cfg.workers];
    let mut peak_backlog = 0usize;
    while matched < cfg.max_tokens {
        // Advance to the next network event.
        match sys.world().next_event_time() {
            Some(next) => {
                sys.world_mut().run_until(next);
                idle_rounds = 0;
            }
            None => {
                idle_rounds += 1;
                assert!(
                    idle_rounds < 3,
                    "token flow died out after {matched} matches; raise seed_tokens or fanout"
                );
                // Re-seed: RETE networks receive new working-memory
                // elements from outside; inject a fresh token.
                let dst = pick_other(&mut rng, cfg.workers, 0);
                let payload = vec![0xEEu8; cfg.token_bytes];
                sys.world_mut().send_datagram_now(0, dst, TOKEN_MAILBOX, TOKEN_MAILBOX, &payload);
                continue;
            }
        }
        // Process every new delivery: match it and emit successors.
        while processed_deliveries < sys.world().deliveries.len() && matched < cfg.max_tokens {
            let d = sys.world().deliveries[processed_deliveries].clone();
            processed_deliveries += 1;
            if d.mailbox != TOKEN_MAILBOX {
                continue;
            }
            let worker = d.cab;
            // Consume the token from the mailbox.
            let _ = sys.world_mut().mailbox_take(worker, TOKEN_MAILBOX);
            outstanding[worker] = outstanding[worker].saturating_sub(1);
            matched += 1;
            // The match costs CPU; successors leave afterwards.
            let emit_at = d.at + cfg.match_cost;
            for _ in 0..2 {
                if rng.chance(cfg.fanout_probability) {
                    let dst = match cfg.balance {
                        Balance::Random => pick_other(&mut rng, cfg.workers, worker),
                        Balance::LeastLoaded => least_loaded_other(&outstanding, worker),
                    };
                    outstanding[dst] += 1;
                    peak_backlog = peak_backlog.max(outstanding[dst]);
                    let payload: Arc<[u8]> = Arc::from(vec![matched as u8; cfg.token_bytes]);
                    let at = emit_at.max(sys.world().now());
                    sys.world_mut().schedule_send(
                        at,
                        worker,
                        AppSend::Datagram {
                            dst,
                            src_mailbox: TOKEN_MAILBOX,
                            dst_mailbox: TOKEN_MAILBOX,
                            data: payload,
                        },
                    );
                }
            }
        }
    }

    // Token latency: reconstruct from delivery records (datagram sends
    // happen at schedule time; deliveries carry arrival time).
    // The per-token latency sample set uses the measured CAB-to-CAB
    // probe on the same (idle) system for the baseline figure.
    let probe = sys.measure_cab_to_cab(0, 1, cfg.token_bytes);
    token_latency.record_dur(probe.latency);
    let elapsed = sys.world().now().saturating_since(t_start);
    let _ = Time::ZERO;
    ProductionReport {
        tokens_matched: matched,
        elapsed,
        token_latency,
        peak_worker_backlog: peak_backlog,
        events: sys.world().events_processed(),
    }
}

/// The worker (other than `not`) with the fewest outstanding tokens.
fn least_loaded_other(outstanding: &[usize], not: usize) -> usize {
    outstanding
        .iter()
        .enumerate()
        .filter(|&(w, _)| w != not)
        .min_by_key(|&(_, load)| *load)
        .map(|(w, _)| w)
        .expect("at least two workers")
}

fn pick_other(rng: &mut Rng, n: usize, not: usize) -> usize {
    let pick = rng.range(0..=(n as u64 - 2)) as usize;
    if pick >= not {
        pick + 1
    } else {
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_propagate_to_completion() {
        let cfg = ProductionConfig { max_tokens: 100, ..ProductionConfig::default() };
        let report = run_production(&cfg, SystemConfig::default());
        assert_eq!(report.tokens_matched, 100);
        assert!(report.elapsed > Dur::ZERO);
    }

    #[test]
    fn token_rate_reflects_low_latency() {
        // With ~30 us per network hop and 20 us matches, several
        // thousand tokens per second must flow through 6 workers.
        let cfg = ProductionConfig { max_tokens: 200, ..ProductionConfig::default() };
        let report = run_production(&cfg, SystemConfig::default());
        assert!(
            report.token_rate() > 5_000.0,
            "token rate {:.0}/s is too slow for fine-grained parallelism",
            report.token_rate()
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = ProductionConfig { max_tokens: 60, ..ProductionConfig::default() };
        let a = run_production(&cfg, SystemConfig::default());
        let b = run_production(&cfg, SystemConfig::default());
        assert_eq!(a.tokens_matched, b.tokens_matched);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn load_balancing_flattens_worker_backlog() {
        // §7: "an application that requires run-time load balancing" —
        // the least-loaded policy must bound worker backlog below the
        // random policy's peak.
        let base = ProductionConfig {
            max_tokens: 300,
            fanout_probability: 0.49,
            ..ProductionConfig::default()
        };
        let random = run_production(
            &ProductionConfig { balance: Balance::Random, ..base.clone() },
            SystemConfig::default(),
        );
        let balanced = run_production(
            &ProductionConfig { balance: Balance::LeastLoaded, ..base },
            SystemConfig::default(),
        );
        assert!(
            balanced.peak_worker_backlog <= random.peak_worker_backlog,
            "balanced peak {} vs random peak {}",
            balanced.peak_worker_backlog,
            random.peak_worker_backlog
        );
        assert_eq!(balanced.tokens_matched, 300);
    }

    #[test]
    fn picker_never_selects_self() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..500 {
            let w = pick_other(&mut rng, 6, 3);
            assert!(w < 6 && w != 3);
        }
    }
}
