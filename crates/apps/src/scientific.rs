//! Scientific codes ported through the iPSC library (§7).
//!
//! "Several large applications are being ported to Nectar using this
//! approach, including simulated annealing and a solid modeling system
//! [...] Large-scale scientific applications that execute well on
//! loosely-coupled arrays of processors are also easily ported" (§7).
//!
//! Two representative kernels run on the [`Ipsc`] layer:
//!
//! * a 1-D domain-decomposed **Jacobi stencil** — per-iteration halo
//!   exchange with both neighbours, the classic loosely-coupled
//!   pattern;
//! * a **simulated-annealing exchange**: nodes anneal independently and
//!   periodically swap their best solutions around the ring.

use nectar_core::ipsc::Ipsc;
use nectar_core::world::SystemConfig;
use nectar_sim::rng::Rng;
use nectar_sim::stats::Samples;
use nectar_sim::time::Dur;

/// Jacobi workload parameters.
#[derive(Clone, Debug)]
pub struct JacobiConfig {
    /// Hypercube nodes.
    pub nodes: usize,
    /// Grid points per node.
    pub points_per_node: usize,
    /// Iterations to run.
    pub iterations: usize,
}

impl Default for JacobiConfig {
    fn default() -> JacobiConfig {
        JacobiConfig { nodes: 4, points_per_node: 4096, iterations: 8 }
    }
}

/// Results of a Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiReport {
    /// Communication time per iteration (halo exchange, nanoseconds).
    pub comm_per_iteration: Samples,
    /// Final residual (for correctness checks).
    pub residual: f64,
}

const HALO_LEFT: u32 = 100;
const HALO_RIGHT: u32 = 101;

/// Runs the 1-D Jacobi stencil over the iPSC layer.
///
/// Each node owns `points_per_node` f64 cells; boundaries are fixed at
/// 0.0 and 1.0 so the solution converges toward a linear ramp.
///
/// # Panics
///
/// Panics if fewer than two nodes are configured or a halo exchange
/// times out.
pub fn run_jacobi(cfg: &JacobiConfig, sys_cfg: SystemConfig) -> JacobiReport {
    assert!(cfg.nodes >= 2, "decomposition needs at least two nodes");
    let mut cube = Ipsc::new(cfg.nodes, sys_cfg);
    let n = cfg.nodes;
    let ppn = cfg.points_per_node;
    // Global grid with fixed boundary conditions 0.0 .. 1.0.
    let mut grids: Vec<Vec<f64>> = (0..n).map(|_| vec![0.5; ppn]).collect();
    grids[0][0] = 0.0;
    grids[n - 1][ppn - 1] = 1.0;
    let mut comm = Samples::new("halo exchange (ns)");
    let timeout = Dur::from_millis(100);

    for _iter in 0..cfg.iterations {
        let t0 = cube.system_mut().world().now();
        // Exchange halos: everyone sends, then everyone receives.
        for (node, grid) in grids.iter().enumerate() {
            if node > 0 {
                let left_edge = grid[0].to_be_bytes().to_vec();
                cube.csend(HALO_RIGHT, &left_edge, node, node - 1);
            }
            if node + 1 < n {
                let right_edge = grid[ppn - 1].to_be_bytes().to_vec();
                cube.csend(HALO_LEFT, &right_edge, node, node + 1);
            }
        }
        let mut halos_left = vec![f64::NAN; n];
        let mut halos_right = vec![f64::NAN; n];
        for node in 0..n {
            if node + 1 < n {
                let bytes = cube.crecv(node, HALO_RIGHT, timeout).expect("right halo");
                halos_right[node] = f64::from_be_bytes(bytes.try_into().expect("8 bytes"));
            }
            if node > 0 {
                let bytes = cube.crecv(node, HALO_LEFT, timeout).expect("left halo");
                halos_left[node] = f64::from_be_bytes(bytes.try_into().expect("8 bytes"));
            }
        }
        comm.record_dur(cube.system_mut().world().now().saturating_since(t0));
        // Local relaxation sweep.
        for node in 0..n {
            let old = grids[node].clone();
            for i in 0..ppn {
                let is_global_boundary = (node == 0 && i == 0) || (node == n - 1 && i == ppn - 1);
                if is_global_boundary {
                    continue;
                }
                let left = if i == 0 { halos_left[node] } else { old[i - 1] };
                let right = if i + 1 == ppn { halos_right[node] } else { old[i + 1] };
                grids[node][i] = 0.5 * (left + right);
            }
        }
    }

    // Residual: deviation from the converged linear ramp's monotonicity.
    let mut residual = 0.0f64;
    let mut prev = f64::NEG_INFINITY;
    let mut monotone_violation = 0.0f64;
    for g in &grids {
        for &v in g {
            residual += (v - 0.5).abs();
            if v < prev {
                monotone_violation += prev - v;
            }
            prev = v;
        }
    }
    let _ = residual;
    JacobiReport { comm_per_iteration: comm, residual: monotone_violation }
}

/// Simulated-annealing exchange parameters.
#[derive(Clone, Debug)]
pub struct AnnealingConfig {
    /// Annealing nodes.
    pub nodes: usize,
    /// Local annealing steps between exchanges.
    pub steps_per_round: usize,
    /// Exchange rounds.
    pub rounds: usize,
    /// Problem size (cities in a toy tour).
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> AnnealingConfig {
        AnnealingConfig { nodes: 4, steps_per_round: 200, rounds: 4, size: 24, seed: 7 }
    }
}

/// Results of the annealing exchange.
#[derive(Clone, Debug)]
pub struct AnnealingReport {
    /// Best tour cost found anywhere.
    pub best_cost: f64,
    /// Initial (round-0) best cost, to show improvement.
    pub initial_cost: f64,
    /// Time spent in the exchange phases (nanoseconds).
    pub exchange_time: Samples,
}

fn tour_cost(tour: &[u8], xs: &[f64], ys: &[f64]) -> f64 {
    let mut cost = 0.0;
    for w in 0..tour.len() {
        let a = tour[w] as usize;
        let b = tour[(w + 1) % tour.len()] as usize;
        cost += ((xs[a] - xs[b]).powi(2) + (ys[a] - ys[b]).powi(2)).sqrt();
    }
    cost
}

/// Runs parallel simulated annealing with ring exchange of best tours.
///
/// # Panics
///
/// Panics if an exchange times out.
pub fn run_annealing(cfg: &AnnealingConfig, sys_cfg: SystemConfig) -> AnnealingReport {
    assert!(cfg.nodes >= 2 && cfg.size <= 256, "ring needs nodes; cities fit a byte");
    let mut cube = Ipsc::new(cfg.nodes, sys_cfg);
    let mut rng = Rng::seed_from(cfg.seed);
    // A shared toy TSP instance.
    let xs: Vec<f64> = (0..cfg.size).map(|_| rng.f64()).collect();
    let ys: Vec<f64> = (0..cfg.size).map(|_| rng.f64()).collect();
    let mut tours: Vec<Vec<u8>> = (0..cfg.nodes)
        .map(|_| {
            let mut t: Vec<u8> = (0..cfg.size as u8).collect();
            rng.shuffle(&mut t);
            t
        })
        .collect();
    let initial_cost = tours.iter().map(|t| tour_cost(t, &xs, &ys)).fold(f64::INFINITY, f64::min);
    let mut temperature = 1.0f64;
    let mut exchange_time = Samples::new("exchange (ns)");
    const TOUR: u32 = 200;

    for _round in 0..cfg.rounds {
        // Local annealing (2-opt moves with Metropolis acceptance).
        for tour in &mut tours {
            for _ in 0..cfg.steps_per_round {
                let i = rng.range(0..=(cfg.size as u64 - 1)) as usize;
                let j = rng.range(0..=(cfg.size as u64 - 1)) as usize;
                let before = tour_cost(tour, &xs, &ys);
                tour.swap(i, j);
                let after = tour_cost(tour, &xs, &ys);
                let accept = after <= before || rng.chance((-(after - before) / temperature).exp());
                if !accept {
                    tour.swap(i, j);
                }
            }
        }
        temperature *= 0.7;
        // Ring exchange: everyone passes its tour to the next node; each
        // node keeps the better of (its own, the received one).
        let t0 = cube.system_mut().world().now();
        for (node, tour) in tours.iter().enumerate() {
            cube.csend(TOUR, tour, node, (node + 1) % cfg.nodes);
        }
        let mut received = Vec::with_capacity(cfg.nodes);
        for node in 0..cfg.nodes {
            let bytes = cube.crecv(node, TOUR, Dur::from_millis(100)).expect("tour exchange");
            received.push(bytes);
        }
        exchange_time.record_dur(cube.system_mut().world().now().saturating_since(t0));
        for (node, incoming) in received.into_iter().enumerate() {
            if tour_cost(&incoming, &xs, &ys) < tour_cost(&tours[node], &xs, &ys) {
                tours[node] = incoming;
            }
        }
    }

    let best_cost = tours.iter().map(|t| tour_cost(t, &xs, &ys)).fold(f64::INFINITY, f64::min);
    AnnealingReport { best_cost, initial_cost, exchange_time }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_halos_flow_every_iteration() {
        let cfg = JacobiConfig { nodes: 4, points_per_node: 64, iterations: 5 };
        let report = run_jacobi(&cfg, SystemConfig::default());
        assert_eq!(report.comm_per_iteration.len(), 5);
        // Halo exchange of 8-byte values: well under a millisecond.
        assert!(report.comm_per_iteration.max() < 1_000_000.0);
    }

    #[test]
    fn jacobi_smooths_toward_a_monotone_ramp() {
        let cfg = JacobiConfig { nodes: 3, points_per_node: 16, iterations: 60 };
        let report = run_jacobi(&cfg, SystemConfig::default());
        assert!(
            report.residual < 1e-6,
            "after enough sweeps the solution is monotone (violation {})",
            report.residual
        );
    }

    #[test]
    fn annealing_improves_and_exchanges() {
        let report = run_annealing(&AnnealingConfig::default(), SystemConfig::default());
        assert!(report.best_cost <= report.initial_cost, "annealing never worsens the best");
        assert_eq!(report.exchange_time.len(), 4);
        assert!(report.best_cost > 0.0);
    }

    #[test]
    fn tour_cost_is_cycle_invariant() {
        let xs = vec![0.0, 1.0, 1.0, 0.0];
        let ys = vec![0.0, 0.0, 1.0, 1.0];
        let square = tour_cost(&[0, 1, 2, 3], &xs, &ys);
        let rotated = tour_cost(&[1, 2, 3, 0], &xs, &ys);
        assert!((square - 4.0).abs() < 1e-12);
        assert!((square - rotated).abs() < 1e-12);
    }
}
