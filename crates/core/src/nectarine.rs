//! Nectarine: the application programming interface.
//!
//! "Nectarine presents the programmer with a simple communication
//! abstraction: applications consist of tasks that communicate by
//! transferring messages between user-specified buffers. Tasks are
//! processes on any CAB or node. [...] Using Nectarine, the programmer
//! can create tasks, manage buffers, and send and receive messages"
//! (§6.3).
//!
//! # Examples
//!
//! ```
//! use nectar_core::nectarine::Nectarine;
//! use nectar_core::world::SystemConfig;
//! use nectar_sim::time::Dur;
//!
//! let mut app = Nectarine::single_hub(4, SystemConfig::default());
//! let producer = app.create_task("producer", 0);
//! let consumer = app.create_task("consumer", 1);
//! app.send(producer, consumer, b"frame 0");
//! let msg = app.receive_blocking(consumer, Dur::from_millis(1)).expect("delivered");
//! assert_eq!(msg.data(), b"frame 0");
//! ```

use crate::system::NectarSystem;
use crate::world::SystemConfig;
use core::fmt;
use nectar_kernel::mailbox::Message;
use nectar_sim::time::{Dur, Time};

/// Handle to one Nectarine task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Task {
    name: String,
    cab: usize,
    mailbox: u16,
}

/// The Nectarine runtime: tasks, buffers, and message passing over a
/// [`NectarSystem`].
pub struct Nectarine {
    system: NectarSystem,
    tasks: Vec<Task>,
    next_mailbox: Vec<u16>,
}

impl Nectarine {
    /// Wraps an existing system.
    pub fn new(system: NectarSystem) -> Nectarine {
        let cabs = system.world().topology().cab_count();
        Nectarine { system, tasks: Vec::new(), next_mailbox: vec![16; cabs] }
    }

    /// Convenience: a single-HUB system with `cabs` CABs.
    pub fn single_hub(cabs: usize, cfg: SystemConfig) -> Nectarine {
        Nectarine::new(NectarSystem::single_hub(cabs, cfg))
    }

    /// Convenience: a `rows × cols` mesh with `cabs_per_hub` CABs each.
    pub fn mesh(rows: usize, cols: usize, cabs_per_hub: usize, cfg: SystemConfig) -> Nectarine {
        Nectarine::new(NectarSystem::mesh(rows, cols, cabs_per_hub, cfg))
    }

    /// The underlying system (for probes).
    pub fn system(&self) -> &NectarSystem {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut NectarSystem {
        &mut self.system
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.system.world().now()
    }

    /// Advances the simulation by `dur`.
    pub fn run_for(&mut self, dur: Dur) {
        self.system.world_mut().run_for(dur);
    }

    /// Creates a task on CAB `cab` with its own receive mailbox.
    ///
    /// # Panics
    ///
    /// Panics if `cab` is out of range.
    pub fn create_task(&mut self, name: impl Into<String>, cab: usize) -> TaskId {
        assert!(cab < self.next_mailbox.len(), "no CAB{cab} in this system");
        let mailbox = self.next_mailbox[cab];
        self.next_mailbox[cab] += 1;
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task { name: name.into(), cab, mailbox });
        id
    }

    /// The task's name.
    pub fn task_name(&self, task: TaskId) -> &str {
        &self.tasks[task.0].name
    }

    /// The CAB a task lives on.
    pub fn task_cab(&self, task: TaskId) -> usize {
        self.tasks[task.0].cab
    }

    /// The task's mailbox address (its "buffer" in CAB memory).
    pub fn task_mailbox(&self, task: TaskId) -> u16 {
        self.tasks[task.0].mailbox
    }

    /// Sends `data` reliably from `from` to `to` (byte-stream).
    /// Returns the message id.
    ///
    /// # Panics
    ///
    /// Panics if both tasks live on the same CAB — co-resident tasks
    /// share memory and do not cross the Nectar-net.
    pub fn send(&mut self, from: TaskId, to: TaskId, data: &[u8]) -> u32 {
        let (f, t) = (&self.tasks[from.0], &self.tasks[to.0]);
        self.system.world_mut().send_stream_now(f.cab, t.cab, f.mailbox, t.mailbox, data)
    }

    /// Sends `data` unreliably (datagram). Returns the message id.
    pub fn send_unreliable(&mut self, from: TaskId, to: TaskId, data: &[u8]) -> u32 {
        let (f, t) = (&self.tasks[from.0], &self.tasks[to.0]);
        self.system.world_mut().send_datagram_now(f.cab, t.cab, f.mailbox, t.mailbox, data)
    }

    /// Multicasts `data` to several tasks using the HUB's hardware
    /// fan-out (§4.2.2). All destinations must share a mailbox address,
    /// so this allocates none: it targets each task's own mailbox only
    /// when all destination mailboxes are equal; otherwise it panics.
    ///
    /// # Panics
    ///
    /// Panics if the destination tasks do not share one mailbox
    /// address (create them in the same order on each CAB).
    pub fn multicast(&mut self, from: TaskId, to: &[TaskId], data: &[u8]) {
        assert!(!to.is_empty(), "multicast needs destinations");
        let mailbox = self.tasks[to[0].0].mailbox;
        assert!(
            to.iter().all(|t| self.tasks[t.0].mailbox == mailbox),
            "hardware multicast carries one destination mailbox address"
        );
        let f = &self.tasks[from.0];
        let dsts: Vec<usize> = to.iter().map(|t| self.tasks[t.0].cab).collect();
        let (src_cab, src_mb) = (f.cab, f.mailbox);
        self.system.world_mut().send_multicast_now(src_cab, &dsts, src_mb, mailbox, data);
    }

    /// Non-blocking receive: the next message in the task's mailbox.
    pub fn receive(&mut self, task: TaskId) -> Option<Message> {
        let t = &self.tasks[task.0];
        self.system.world_mut().mailbox_take(t.cab, t.mailbox)
    }

    /// Blocking receive: runs the simulation until a message arrives or
    /// `timeout` elapses.
    pub fn receive_blocking(&mut self, task: TaskId, timeout: Dur) -> Option<Message> {
        let deadline = self.now() + timeout;
        loop {
            if let Some(msg) = self.receive(task) {
                return Some(msg);
            }
            if self.now() >= deadline {
                return None;
            }
            let progressed = self.system.world_mut().run_for(Dur::from_micros(20));
            if progressed == 0 && self.system.world().pending_events() == 0 {
                return self.receive(task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Nectarine {
        Nectarine::single_hub(4, SystemConfig::default())
    }

    #[test]
    fn tasks_get_distinct_mailboxes() {
        let mut a = app();
        let t1 = a.create_task("a", 0);
        let t2 = a.create_task("b", 0);
        let t3 = a.create_task("c", 1);
        assert_ne!(a.task_mailbox(t1), a.task_mailbox(t2));
        assert_eq!(a.task_cab(t3), 1);
        assert_eq!(a.task_name(t1), "a");
    }

    #[test]
    fn send_receive_roundtrip() {
        let mut a = app();
        let p = a.create_task("p", 0);
        let c = a.create_task("c", 1);
        a.send(p, c, b"hello");
        let msg = a.receive_blocking(c, Dur::from_millis(5)).expect("delivered");
        assert_eq!(msg.data(), b"hello");
        assert!(a.receive(c).is_none(), "mailbox drained");
    }

    #[test]
    fn unreliable_send_also_arrives_on_a_clean_net() {
        let mut a = app();
        let p = a.create_task("p", 0);
        let c = a.create_task("c", 1);
        a.send_unreliable(p, c, b"dgram");
        let msg = a.receive_blocking(c, Dur::from_millis(5)).expect("delivered");
        assert_eq!(msg.data(), b"dgram");
    }

    #[test]
    fn receive_times_out_when_nothing_is_sent() {
        let mut a = app();
        let c = a.create_task("c", 1);
        assert!(a.receive_blocking(c, Dur::from_micros(100)).is_none());
    }

    #[test]
    fn multicast_reaches_all_destinations() {
        let mut a = app();
        let p = a.create_task("p", 0);
        // Created in the same order on each CAB: same mailbox address.
        let c1 = a.create_task("c1", 1);
        let c2 = a.create_task("c2", 2);
        a.multicast(p, &[c1, c2], b"to all");
        let m1 = a.receive_blocking(c1, Dur::from_millis(5)).expect("c1");
        let m2 = a.receive_blocking(c2, Dur::from_millis(5)).expect("c2");
        assert_eq!(m1.data(), b"to all");
        assert_eq!(m2.data(), b"to all");
    }

    #[test]
    #[should_panic]
    fn mismatched_multicast_mailboxes_rejected() {
        let mut a = app();
        let p = a.create_task("p", 0);
        let c1 = a.create_task("c1", 1);
        let _filler = a.create_task("filler", 2);
        let c2 = a.create_task("c2", 2); // different mailbox index
        a.multicast(p, &[c1, c2], b"x");
    }

    #[test]
    fn large_messages_travel_reliably() {
        let mut a = app();
        let p = a.create_task("p", 0);
        let c = a.create_task("c", 1);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        a.send(p, c, &data);
        let msg = a.receive_blocking(c, Dur::from_millis(50)).expect("delivered");
        assert_eq!(msg.data(), &data[..]);
    }
}
