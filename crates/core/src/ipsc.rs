//! iPSC hypercube compatibility library.
//!
//! "To run hypercube applications on Nectar, we have implemented the
//! Intel iPSC communication library on top of Nectarine. Since
//! Nectarine is functionally a superset of the iPSC primitives, this
//! implementation is relatively simple" (§7). The iPSC model: numbered
//! nodes exchange *typed* messages; `csend` names a destination node
//! and a message type, `crecv` blocks for the next message of a type.
//!
//! # Examples
//!
//! ```
//! use nectar_core::ipsc::Ipsc;
//! use nectar_core::world::SystemConfig;
//! use nectar_sim::time::Dur;
//!
//! let mut cube = Ipsc::new(4, SystemConfig::default());
//! cube.csend(7, &[1, 2, 3], 0, 2); // type 7, node 0 -> node 2
//! let msg = cube.crecv(2, 7, Dur::from_millis(5)).expect("typed receive");
//! assert_eq!(msg, vec![1, 2, 3]);
//! ```

use crate::system::NectarSystem;
use crate::world::SystemConfig;
use nectar_sim::time::Dur;

/// Base mailbox address for iPSC message types (leaves low addresses
/// for Nectarine tasks).
const TYPE_MAILBOX_BASE: u16 = 0x4000;

/// An iPSC-style view of a Nectar system: one "hypercube node" per CAB,
/// typed send/receive.
pub struct Ipsc {
    system: NectarSystem,
    nodes: usize,
}

impl Ipsc {
    /// Builds a cube of `nodes` nodes on a single-HUB Nectar system.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds the HUB's port count.
    pub fn new(nodes: usize, cfg: SystemConfig) -> Ipsc {
        Ipsc { system: NectarSystem::single_hub(nodes, cfg), nodes }
    }

    /// Builds a cube spread over a mesh of HUB clusters.
    pub fn on_mesh(rows: usize, cols: usize, cabs_per_hub: usize, cfg: SystemConfig) -> Ipsc {
        let system = NectarSystem::mesh(rows, cols, cabs_per_hub, cfg);
        let nodes = system.world().topology().cab_count();
        Ipsc { system, nodes }
    }

    /// Number of nodes (`numnodes()` in iPSC).
    pub fn numnodes(&self) -> usize {
        self.nodes
    }

    /// The underlying system (for probes).
    pub fn system_mut(&mut self) -> &mut NectarSystem {
        &mut self.system
    }

    fn mailbox_for(msg_type: u32) -> u16 {
        TYPE_MAILBOX_BASE + (msg_type % 0x4000) as u16
    }

    /// `csend`: reliably sends a typed message from node `from` to node
    /// `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to` (iPSC
    /// nodes do not self-send over the network).
    pub fn csend(&mut self, msg_type: u32, data: &[u8], from: usize, to: usize) {
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        let mb = Self::mailbox_for(msg_type);
        self.system.world_mut().send_stream_now(from, to, mb, mb, data);
    }

    /// `crecv`: blocks (runs the simulation) until a message of
    /// `msg_type` arrives at `node`, or `timeout` elapses.
    pub fn crecv(&mut self, node: usize, msg_type: u32, timeout: Dur) -> Option<Vec<u8>> {
        assert!(node < self.nodes, "node out of range");
        let mb = Self::mailbox_for(msg_type);
        let deadline = self.system.world().now() + timeout;
        loop {
            if let Some(msg) = self.system.world_mut().mailbox_take(node, mb) {
                return Some(msg.data().to_vec());
            }
            if self.system.world().now() >= deadline {
                return None;
            }
            let progressed = self.system.world_mut().run_for(Dur::from_micros(20));
            if progressed == 0 && self.system.world().pending_events() == 0 {
                return self.system.world_mut().mailbox_take(node, mb).map(|m| m.data().to_vec());
            }
        }
    }

    /// Non-blocking probe: `true` if a message of `msg_type` waits at
    /// `node` (`iprobe` in iPSC).
    pub fn iprobe(&mut self, node: usize, msg_type: u32) -> bool {
        // A peek would do, but take-and-put-back keeps Mailbox simple;
        // instead run zero time and inspect via the world's records.
        let mb = Self::mailbox_for(msg_type);
        self.system.world().deliveries.iter().any(|d| d.cab == node && d.mailbox == mb)
    }

    /// Global synchronization: node 0 collects a token from every other
    /// node, then broadcasts the release (`gsync` in iPSC).
    ///
    /// # Panics
    ///
    /// Panics if synchronization does not complete within `timeout`.
    pub fn gsync(&mut self, timeout: Dur) {
        const SYNC_TYPE: u32 = 0x3FFF;
        for node in 1..self.nodes {
            self.csend(SYNC_TYPE, &[node as u8], node, 0);
        }
        for _ in 1..self.nodes {
            self.crecv(0, SYNC_TYPE, timeout).expect("gsync gather");
        }
        for node in 1..self.nodes {
            self.csend(SYNC_TYPE, &[0], 0, node);
        }
        for node in 1..self.nodes {
            self.crecv(node, SYNC_TYPE, timeout).expect("gsync release");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_messages_route_by_type() {
        let mut cube = Ipsc::new(3, SystemConfig::default());
        cube.csend(1, b"type one", 0, 1);
        cube.csend(2, b"type two", 0, 1);
        // Receive type 2 first although type 1 arrived earlier.
        assert_eq!(cube.crecv(1, 2, Dur::from_millis(5)).unwrap(), b"type two");
        assert_eq!(cube.crecv(1, 1, Dur::from_millis(5)).unwrap(), b"type one");
    }

    #[test]
    fn crecv_times_out() {
        let mut cube = Ipsc::new(2, SystemConfig::default());
        assert!(cube.crecv(1, 9, Dur::from_micros(200)).is_none());
    }

    #[test]
    fn gsync_converges() {
        let mut cube = Ipsc::new(4, SystemConfig::default());
        cube.gsync(Dur::from_millis(50));
    }

    #[test]
    fn ring_exchange() {
        // Classic hypercube pattern: every node passes a token around.
        let mut cube = Ipsc::new(4, SystemConfig::default());
        for node in 0..4 {
            cube.csend(5, &[node as u8], node, (node + 1) % 4);
        }
        for node in 0..4 {
            let got = cube.crecv(node, 5, Dur::from_millis(10)).unwrap();
            assert_eq!(got, vec![((node + 3) % 4) as u8]);
        }
    }
}
