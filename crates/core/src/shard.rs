//! Sharded conservative-parallel execution: one simulated Nectar,
//! all cores, bit-identical results.
//!
//! The Nectar-net is parallel in space: HUB clusters are joined by
//! fibers whose minimum latency — [`HubConfig::lookahead`] plus
//! propagation — lower-bounds how soon one cluster can affect
//! another. [`ShardedWorld`] exploits that bound with a bounded-lag /
//! YAWNS window protocol: the topology is partitioned into shards
//! (each HUB with its attached CABs, in configurable contiguous
//! groups), each shard runs its own [`World`] with its own engine,
//! and all shards repeatedly
//!
//! 1. publish their next event time and agree on the global minimum
//!    `T`,
//! 2. execute every local event in the window `[T, T + lookahead)`,
//!    collecting cross-shard fiber traffic into per-destination
//!    outboxes (every such event lands at `>= T + lookahead` — that
//!    is what lookahead means), and
//! 3. exchange outboxes at a barrier and ingest.
//!
//! The exchange is **batched**: each window moves whole
//! per-destination vectors through a lock-uncontended N×N slot grid
//! (one buffer swap per non-empty source→destination pair, zero
//! allocation in steady state) instead of pushing events one at a
//! time through shared mutexes. The barrier itself backs off in three
//! stages — spin, yield, park — and accounts the nanoseconds every
//! shard spends waiting, so `nectar-doctor` and `report --scaling`
//! can attribute synchronization overhead precisely.
//!
//! Determinism is non-negotiable and does not come from the window
//! protocol alone: it comes from **keyed event ordering**. Every
//! event carries a tie-break key derived from its source component
//! and a per-source counter (see `Engine::schedule_at_keyed`), so
//! same-instant events pop in an order intrinsic to the simulated
//! system rather than to scheduling history. The sequential [`World`]
//! uses the same keys, which is why `ShardedWorld` with any shard
//! count produces bit-identical metrics, invariant verdicts, and
//! (canonically sorted) telemetry to a plain sequential run.
//!
//! The same property makes **rebalancing** sound: since *any*
//! partition of the components replays the identical event order, the
//! partition may change between windows without changing a single
//! observable. [`RebalancePolicy`] moves whole HUB clusters between
//! shards at window-barrier epochs — state, pending events (with
//! their timestamps and keys preserved verbatim), timer tables, and
//! chaos RNG streams — steered by deterministic simulated-time load
//! attribution, so a skewed run repartitions itself identically on
//! every rerun.
//!
//! [`HubConfig::lookahead`]: nectar_hub::config::HubConfig::lookahead

use crate::topology::Topology;
use crate::world::{join_flights, AppSend, Delivery, Ev, QuiescenceOutcome, SystemConfig, World};
use nectar_sim::analysis::streaming::{StreamConfig, StreamingDoctor};
use nectar_sim::chaos::{ChaosSchedule, ChaosStats};
use nectar_sim::metrics::{Histogram, MetricsRegistry};
use nectar_sim::profile::{self, AnalyzeCtx, HostProfile, Phase, ProfileAnalysis, Profiler};
use nectar_sim::telemetry::TelemetryEvent;
use nectar_sim::time::{Dur, Time};
use nectar_sim::workload::WorkloadSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Maps every HUB (and, through its attachment, every CAB) to a
/// shard. Shards are contiguous HUB ranges: HUB indices produced by
/// the [`Topology`] constructors place topologically close clusters
/// at adjacent indices, so contiguous blocks keep most fiber edges
/// internal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of_hub: Vec<usize>,
    shards: usize,
}

impl ShardPlan {
    /// Partitions `topo`'s HUBs into `shards` contiguous blocks of
    /// near-equal size. The shard count is clamped to `1..=hub_count`
    /// — more shards than HUBs cannot help, since a HUB is the unit
    /// of ownership (a CAB always lives with its attachment HUB, so
    /// CAB-HUB edges are never cross-shard).
    pub fn contiguous(topo: &Topology, shards: usize) -> ShardPlan {
        let hubs = topo.hub_count();
        let shards = shards.clamp(1, hubs);
        let shard_of_hub = (0..hubs).map(|h| h * shards / hubs).collect();
        ShardPlan { shard_of_hub, shards }
    }

    /// Partitions `topo`'s HUBs into `shards` contiguous blocks of
    /// near-equal **weight** (one weight per HUB cluster; a greedy
    /// prefix scan closes each shard once its share of the total is
    /// reached, while guaranteeing every shard at least one HUB).
    /// Equal weights reproduce [`contiguous`](ShardPlan::contiguous)'s
    /// near-equal-size blocks; skewed weights shrink the hot shards.
    ///
    /// # Panics
    ///
    /// Panics unless `weights.len() == topo.hub_count()`.
    pub fn weighted(topo: &Topology, shards: usize, weights: &[u64]) -> ShardPlan {
        let hubs = topo.hub_count();
        assert_eq!(weights.len(), hubs, "one weight per HUB");
        let shards = shards.clamp(1, hubs);
        // +1 per HUB keeps zero-weight prefixes from collapsing every
        // idle cluster into shard 0.
        let total: u128 = weights.iter().map(|&w| w as u128 + 1).sum();
        let mut shard_of_hub = vec![0usize; hubs];
        let mut s = 0usize;
        let mut cum: u128 = 0;
        for h in 0..hubs {
            shard_of_hub[h] = s;
            cum += weights[h] as u128 + 1;
            let hubs_left = hubs - h - 1;
            let shards_left = shards - s - 1;
            // Close shard `s` when it holds its proportional share —
            // or when the remaining shards need every remaining HUB.
            if shards_left > 0
                && (hubs_left == shards_left || cum * shards as u128 >= (s as u128 + 1) * total)
            {
                s += 1;
            }
        }
        ShardPlan { shard_of_hub, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning HUB `hub`.
    pub fn shard_of_hub(&self, hub: usize) -> usize {
        self.shard_of_hub[hub]
    }

    /// The shard owning CAB `cab` (its attachment HUB's shard).
    pub fn shard_of_cab(&self, topo: &Topology, cab: usize) -> usize {
        self.shard_of_hub[topo.cab_attachment(cab).0]
    }
}

/// When (and how) a running [`ShardedWorld`] repartitions itself.
///
/// Plan changes only ever happen at window-barrier epochs, where
/// migration is provably order-preserving (see the module docs); every
/// policy is a pure function of simulated-time quantities, so the
/// window at which a rebalance fires — and the plan it installs — is
/// identical on every rerun.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum RebalancePolicy {
    /// Never repartition (the default).
    #[default]
    Off,
    /// Every `every_windows` windows, recompute a weighted plan from
    /// the per-cluster busy time observed *in that epoch* and adopt it
    /// if it improves the heaviest shard's load by at least 10%
    /// (hysteresis: marginal wins don't pay the migration and
    /// thread-respawn cost).
    Adaptive {
        /// Epoch length in windows (clamped to at least 1).
        every_windows: u64,
    },
    /// Switch to `plan` once `window` windows have run — the test and
    /// experiment hook for forcing a mid-run plan change at a chosen
    /// epoch. `window` must be at least 1.
    ForceAt {
        /// Total-window count at which the switch happens.
        window: u64,
        /// The plan to install.
        plan: ShardPlan,
    },
}

/// Per-shard routing context carried by a shard's [`World`]: where
/// every HUB lives, which shard this world is, and the per-destination
/// outbox filled during a window and exchanged at the barrier.
pub(crate) struct ShardCtx {
    pub(crate) plan: Arc<ShardPlan>,
    pub(crate) id: usize,
    pub(crate) outbox: Vec<Vec<(Time, u64, Ev)>>,
}

/// Spin iterations before the first yield. Windows are sub-microsecond
/// when shards hold their own cores, so the fast path must resolve in
/// the spin stage; 2^14 pause-loop iterations is a few microseconds —
/// past any healthy window, so reaching yield means a genuinely
/// stalled peer (page fault, preemption), not an ordinary imbalance.
const SPIN_LIMIT: u32 = 1 << 14;

/// Yields between the spin stage and parking. Each yield donates the
/// timeslice; a peer that still hasn't arrived after these is blocked
/// on something long enough that a condvar park (microseconds to wake)
/// no longer dominates.
const YIELD_LIMIT: u32 = 64;

/// A three-stage backoff barrier: spin, then yield, then park on a
/// condvar — and it reports how long each waiter waited.
///
/// One barrier serves both regimes the old code split across two
/// types. When every shard holds a core, waiters resolve in the spin
/// stage at ~100 ns per crossing. When shards outnumber cores,
/// spinning burns the timeslice the *arriving* thread needs, so the
/// spin stage is skipped entirely (`spin_limit == 0`) and waiters
/// yield briefly, then park. The returned wait time feeds the
/// `barrier_wait_ns` runtime counters — the number `report --scaling`
/// and `nectar-doctor` use to attribute synchronization overhead.
struct BackoffBarrier {
    n: usize,
    spin_limit: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl BackoffBarrier {
    fn new(n: usize) -> BackoffBarrier {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        BackoffBarrier {
            n,
            spin_limit: if n <= cores { SPIN_LIMIT } else { 0 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `n` threads; returns the nanoseconds this caller
    /// spent waiting (0 for the last arriver, which never waits).
    fn wait(&self) -> u64 {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::SeqCst);
            // Publish the new generation under the park lock so a
            // waiter that checked the generation and is about to park
            // cannot miss the wakeup.
            let guard = self.lock.lock().expect("no panics hold this lock");
            self.generation.fetch_add(1, Ordering::SeqCst);
            drop(guard);
            self.cv.notify_all();
            return 0;
        }
        let start = Instant::now();
        let mut tries = 0u32;
        while self.generation.load(Ordering::SeqCst) == gen {
            tries = tries.wrapping_add(1);
            if tries <= self.spin_limit {
                std::hint::spin_loop();
            } else if tries <= self.spin_limit + YIELD_LIMIT {
                std::thread::yield_now();
            } else {
                let mut guard = self.lock.lock().expect("no panics hold this lock");
                while self.generation.load(Ordering::SeqCst) == gen {
                    guard = self.cv.wait(guard).expect("no panics hold this lock");
                }
                break;
            }
        }
        start.elapsed().as_nanos() as u64
    }
}

/// One cell of the batched exchange grid: the window's event batch
/// from one source shard to one destination shard.
///
/// The mutex is never contended — the window protocol's barriers
/// separate the producer phase (source `i` touches only row `i`,
/// between run-window and the exchange barrier) from the consumer
/// phase (destination `d` touches only column `d`, after it) — it
/// exists to keep the grid in safe Rust. The `filled` flag spares the
/// consumer a lock acquisition per empty cell, which is most cells:
/// cross-shard traffic is sparse by construction (topology-local
/// workloads are the whole point of the partition).
struct ExchangeCell {
    filled: AtomicBool,
    batch: Mutex<Vec<(Time, u64, Ev)>>,
}

/// The N×N grid of [`ExchangeCell`]s. Buffer capacities ping-pong
/// between each world's outbox and its row's cells (a swap moves a
/// full buffer in and an empty-but-warm buffer back), so the steady
/// state allocates nothing and copies events exactly once — from the
/// producer's buffer into the consumer's engine.
struct ExchangeGrid {
    n: usize,
    cells: Vec<ExchangeCell>,
}

impl ExchangeGrid {
    fn new(n: usize) -> ExchangeGrid {
        let cells = (0..n * n)
            .map(|_| ExchangeCell { filled: AtomicBool::new(false), batch: Mutex::new(Vec::new()) })
            .collect();
        ExchangeGrid { n, cells }
    }

    fn cell(&self, src: usize, dst: usize) -> &ExchangeCell {
        &self.cells[src * self.n + dst]
    }
}

/// How one shard's epoch ended.
#[derive(Clone, Copy, Debug)]
enum EpochExit {
    /// The global minimum event time: `u64::MAX` (quiescent) or past
    /// the deadline. Every shard computes the same value.
    Done(u64),
    /// The epoch's window budget ran out — the main thread gets
    /// single-threaded access for a rebalance decision.
    Budget,
}

/// One shard worker's accounting for one epoch.
struct EpochResult {
    events: u64,
    windows: u64,
    wait_ns: u64,
    exchanged: u64,
    exit: EpochExit,
}

/// Wall-clock/runtime counters for the parallel runner itself. Kept
/// strictly apart from [`ShardedWorld::metrics`]: the simulated
/// registry is bit-compared against sequential runs, and barrier wait
/// times are properties of the host, not of the simulated system.
#[derive(Clone, Debug, Default)]
struct RuntimeStats {
    windows: u64,
    rebalances: u64,
    barrier_wait_ns: Vec<u64>,
    exchanged_events: Vec<u64>,
}

/// A [`World`] partitioned across OS threads, with the same API
/// surface and — by construction — the same observable results.
///
/// # Examples
///
/// ```
/// use nectar_core::prelude::*;
/// use nectar_sim::time::Time;
/// use std::sync::Arc;
///
/// let topo = Topology::fat_star(4, 2, 16);
/// let mut seq = World::new(topo.clone(), SystemConfig::default());
/// let mut par = ShardedWorld::new(topo, SystemConfig::default(), 4);
/// for _ in 0..2 {
///     let payload: Arc<[u8]> = vec![7u8; 600].into();
///     let send = AppSend::Stream { dst: 1, src_mailbox: 1, dst_mailbox: 9, data: payload };
///     seq.schedule_send(Time::from_micros(5), 0, send.clone());
///     par.schedule_send(Time::from_micros(5), 0, send);
/// }
/// seq.run_to_quiescence(Time::from_millis(50));
/// par.run_to_quiescence(Time::from_millis(50));
/// assert_eq!(seq.metrics().to_json(), par.metrics().to_json());
/// ```
pub struct ShardedWorld {
    topo: Topology,
    plan: Arc<ShardPlan>,
    worlds: Vec<World>,
    /// Window width: `HubConfig::lookahead()` + fiber propagation.
    lookahead: Dur,
    policy: RebalancePolicy,
    /// Cumulative per-cluster weights at the last adaptive epoch, so
    /// each epoch rebalances on the weight *deltas* (recent load, not
    /// run-lifetime totals).
    prev_weights: Vec<u64>,
    /// Window count at which [`RebalancePolicy::Adaptive`] next
    /// evaluates. Streaming shortens epochs below `every_windows`, so
    /// the adaptive cadence is tracked here instead of being implied
    /// by the epoch budget.
    next_adaptive: u64,
    /// Streaming fold state for multi-shard runs (the 1-shard path
    /// delegates to `worlds[0]`'s own drain-per-step streaming).
    stream: Option<Box<ShardStream>>,
    runtime: RuntimeStats,
    /// Host-time span rings, one per shard worker plus one for the
    /// main thread (telemetry drain / stream fold / rebalance).
    /// Disabled by default: each scope edge in the worker loop is then
    /// a single branch, preserving the profiler-off wall time.
    profs: Vec<Profiler>,
}

/// The [`StreamingDoctor`] and its scratch buffers when streaming is
/// attached to a multi-shard world: every shard's rings drain into one
/// fold on the main thread at epoch boundaries, where the global
/// minimum next-event time bounds which events are final.
struct ShardStream {
    doctor: StreamingDoctor,
    /// Drained events not yet final (stamped at or after the global
    /// minimum next event time).
    pending: Vec<TelemetryEvent>,
    /// Scratch batch handed to the doctor each fold.
    batch: Vec<TelemetryEvent>,
    /// Epoch budget cap in windows: folds must happen often enough
    /// that no per-shard ring fills between them.
    cadence: u64,
}

/// Epoch cap (in windows) for a given smallest ring capacity: drain
/// well before even a dense window sequence could fill a ring.
fn stream_cadence(min_capacity: usize) -> u64 {
    (min_capacity as u64 / 64).clamp(4, 256)
}

impl ShardedWorld {
    /// Partitions `topo` into `shards` shards (clamped to the HUB
    /// count) and builds one engine per shard. `shards == 1` behaves
    /// exactly like — and runs as fast as — a sequential [`World`].
    pub fn new(topo: Topology, cfg: SystemConfig, shards: usize) -> ShardedWorld {
        let plan = Arc::new(ShardPlan::contiguous(&topo, shards));
        let lookahead = cfg.hub.lookahead() + cfg.propagation;
        let worlds: Vec<World> = (0..plan.shards())
            .map(|i| World::new_shard(topo.clone(), cfg.clone(), Arc::clone(&plan), i))
            .collect();
        let n = worlds.len();
        let prev_weights = vec![0; topo.hub_count()];
        ShardedWorld {
            topo,
            plan,
            worlds,
            lookahead,
            policy: RebalancePolicy::Off,
            prev_weights,
            next_adaptive: 0,
            stream: None,
            runtime: RuntimeStats {
                barrier_wait_ns: vec![0; n],
                exchanged_events: vec![0; n],
                ..RuntimeStats::default()
            },
            profs: (0..=n).map(|_| Profiler::disabled()).collect(),
        }
    }

    /// Number of shards actually running.
    pub fn shards(&self) -> usize {
        self.worlds.len()
    }

    /// The topology this world runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The partition in force (rebalancing replaces it mid-run).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Sets the rebalancing policy. Takes effect at the next epoch
    /// boundary; see [`RebalancePolicy`].
    pub fn set_rebalance(&mut self, policy: RebalancePolicy) {
        self.policy = policy;
    }

    /// The window width: the lookahead every shard may run ahead of
    /// the global minimum event time.
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }

    fn shard_of_cab(&self, cab: usize) -> usize {
        self.plan.shard_of_cab(&self.topo, cab)
    }

    /// Switches on the flight recorder in every shard (see
    /// [`World::enable_observability`]).
    pub fn enable_observability(&mut self) {
        for w in &mut self.worlds {
            w.enable_observability();
        }
    }

    /// Switches on the host-time profiler: every shard worker records
    /// phase spans (step, outbox fill, exchange drain, barrier wait)
    /// and the main thread records drain/fold/rebalance spans. Host
    /// time never feeds the simulated metrics, so results stay
    /// bit-identical with the profiler on or off.
    pub fn enable_profiling(&mut self) {
        for p in &mut self.profs {
            p.set_enabled(true);
        }
    }

    /// Whether host-time spans are being recorded.
    pub fn profiling_enabled(&self) -> bool {
        self.profs[0].is_enabled()
    }

    /// The collected host-time profile (one track per shard worker,
    /// one for the main thread), or `None` when profiling is off.
    pub fn host_profile(&self) -> Option<HostProfile> {
        if !self.profiling_enabled() {
            return None;
        }
        Some(HostProfile {
            shards: self.worlds.len(),
            tracks: self.profs.iter().map(|p| p.spans().copied().collect()).collect(),
            dropped: self.profs.iter().map(|p| p.dropped()).sum(),
        })
    }

    /// Per-HUB simulated-time load attribution summed across shards
    /// (only the owning shard contributes nonzero weight): the input
    /// the scaling doctor uses to *name* the hot cluster behind a
    /// load-imbalance verdict, and the same quantity adaptive
    /// rebalancing partitions on.
    pub fn cluster_weights(&self) -> Vec<u64> {
        (0..self.topo.hub_count())
            .map(|h| self.worlds.iter().map(|w| w.cluster_weight(h)).sum())
            .collect()
    }

    /// Runs the scaling doctor over the collected profile: phase
    /// breakdown per shard, straggler attribution, parallel
    /// efficiency, Karp–Flatt serial fraction, and ranked verdicts.
    /// `None` when profiling is off.
    pub fn profile_analysis(&self) -> Option<ProfileAnalysis> {
        let hp = self.host_profile()?;
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let ctx = AnalyzeCtx {
            cores,
            cluster_weights: self.cluster_weights(),
            shard_of_hub: (0..self.topo.hub_count()).map(|h| self.plan.shard_of_hub(h)).collect(),
        };
        Some(profile::analyze(&hp, &ctx))
    }

    /// Installs the same chaos schedule in every shard. Clause RNG
    /// streams are per-(clause, component), and each component's
    /// arrivals happen in exactly one shard, so the compiled
    /// injectors collectively consume the same draws as a sequential
    /// run's single injector.
    pub fn set_chaos(&mut self, schedule: ChaosSchedule) {
        for w in &mut self.worlds {
            w.set_chaos(schedule.clone());
        }
    }

    /// Installs the same workload program in every shard. Each shard
    /// seeds initial events only for the CABs it owns, and generator
    /// RNG streams are per-(class, CAB) — each CAB's draws happen in
    /// exactly one shard — so the shards collectively offer the same
    /// traffic, in the same `(time, key)` order, as a sequential run.
    pub fn set_workload(&mut self, spec: &WorkloadSpec) -> Result<(), String> {
        for w in &mut self.worlds {
            w.set_workload(spec)?;
        }
        Ok(())
    }

    /// The attached workload spec, if any (for replay lines).
    pub fn workload_spec(&self) -> Option<&WorkloadSpec> {
        self.worlds[0].workload_spec()
    }

    /// Schedules an application send on the shard owning `cab`.
    pub fn schedule_send(&mut self, at: Time, cab: usize, send: AppSend) {
        let s = self.shard_of_cab(cab);
        self.worlds[s].schedule_send(at, cab, send);
    }

    /// Attaches a [`StreamingDoctor`]; mirrors
    /// [`World::attach_streaming`]. With one shard the world streams
    /// for itself (drain cadence in engine events); with several, the
    /// main thread drains every shard's rings at epoch boundaries and
    /// folds the events below the global minimum next-event time —
    /// those are final in *every* shard, because cross-shard traffic
    /// can only land a full lookahead later. Events reach the fold in
    /// canonical order regardless of shard count, so the verdict is
    /// bit-identical to a sequential streaming run.
    pub fn attach_streaming(&mut self, cfg: StreamConfig) {
        if self.worlds.len() == 1 {
            self.worlds[0].attach_streaming(cfg);
            return;
        }
        self.enable_observability();
        for w in &mut self.worlds {
            w.enable_telemetry_spill();
        }
        let min_cap =
            self.worlds.iter().map(|w| w.min_telemetry_capacity()).min().unwrap_or(usize::MAX);
        self.stream = Some(Box::new(ShardStream {
            doctor: StreamingDoctor::new(cfg),
            pending: Vec::new(),
            batch: Vec::new(),
            cadence: stream_cadence(min_cap),
        }));
    }

    /// Resizes every shard's telemetry rings (see
    /// [`World::set_telemetry_capacity`]) and retunes the streaming
    /// fold cadence to the new bound.
    pub fn set_telemetry_capacity(&mut self, capacity: usize) {
        for w in &mut self.worlds {
            w.set_telemetry_capacity(capacity);
        }
        if let Some(st) = &mut self.stream {
            st.cadence = stream_cadence(capacity);
        }
    }

    /// The attached streaming doctor, for live checkpoint polls.
    pub fn stream_doctor(&self) -> Option<&StreamingDoctor> {
        if self.worlds.len() == 1 {
            return self.worlds[0].stream_doctor();
        }
        self.stream.as_ref().map(|st| &st.doctor)
    }

    /// Detaches the streaming doctor after folding everything still
    /// pending in any shard's rings; mirrors
    /// [`World::finish_streaming`].
    pub fn finish_streaming(&mut self) -> Option<StreamingDoctor> {
        if self.worlds.len() == 1 {
            return self.worlds[0].finish_streaming();
        }
        self.stream.as_ref()?;
        self.stream_fold(true);
        let mut st = self.stream.take()?;
        let (hwm, dropped) = self.telemetry_pressure();
        st.doctor.note_ring(hwm, dropped);
        Some(st.doctor)
    }

    /// Capture pressure across all shards: highest single-ring
    /// occupancy ever reached, and total events lost to overflow.
    pub fn telemetry_pressure(&self) -> (u64, u64) {
        let mut hwm = 0u64;
        let mut dropped = 0u64;
        for w in &self.worlds {
            let (h, d) = w.telemetry_pressure();
            hwm = hwm.max(h);
            dropped += d;
        }
        (hwm, dropped)
    }

    /// Drains every shard's rings and folds all **final** events:
    /// those stamped strictly before the global minimum next-event
    /// time. No shard can still record an earlier event — record
    /// sites stamp at-or-after their processing instant, and
    /// cross-shard arrivals land at least a lookahead past the
    /// window floor. With `finish` everything pending folds.
    fn stream_fold(&mut self, finish: bool) {
        let Some(mut st) = self.stream.take() else { return };
        let main = self.worlds.len();
        let window = self.runtime.windows;
        let t0 = self.profs[main].begin();
        for w in &mut self.worlds {
            w.take_spill(&mut st.pending);
        }
        let boundary = if finish {
            None
        } else {
            self.worlds.iter().filter_map(|w| w.next_event_time()).min()
        };
        match boundary {
            None => st.batch.append(&mut st.pending),
            Some(b) => {
                let mut i = 0;
                while i < st.pending.len() {
                    if st.pending[i].at < b {
                        st.batch.push(st.pending.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.profs[main].end(Phase::TelemetryDrain, window, t0);
        let t0 = self.profs[main].begin();
        st.doctor.ingest(&mut st.batch);
        self.profs[main].end(Phase::StreamFold, window, t0);
        self.stream = Some(st);
    }

    /// Runs the window protocol until every shard's queue drains or
    /// the global clock would pass `deadline`; mirrors
    /// [`World::run_to_quiescence`] including final clock position.
    pub fn run_to_quiescence(&mut self, deadline: Time) -> (u64, QuiescenceOutcome) {
        if self.worlds.len() == 1 {
            // No window protocol with one shard: the whole run is one
            // step span, so 1-shard profiles still carry the wall time
            // the speedup curve's reference point needs.
            let t0 = self.profs[0].begin();
            let out = self.worlds[0].run_to_quiescence(deadline);
            self.profs[0].end(Phase::Step, 0, t0);
            return out;
        }
        let (n, outcome) = self.drive(deadline);
        let settle = match outcome {
            QuiescenceOutcome::Quiescent => {
                self.worlds.iter().map(|w| w.now()).max().unwrap_or(Time::ZERO)
            }
            QuiescenceOutcome::DeadlineReached => deadline,
        };
        for w in &mut self.worlds {
            w.advance_clock(settle);
        }
        (n, outcome)
    }

    /// Runs until quiet or past `deadline`, then advances every shard
    /// clock to `deadline`; mirrors [`World::run_until`].
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        if self.worlds.len() == 1 {
            let t0 = self.profs[0].begin();
            let out = self.worlds[0].run_until(deadline);
            self.profs[0].end(Phase::Step, 0, t0);
            return out;
        }
        let (n, _) = self.drive(deadline);
        for w in &mut self.worlds {
            w.advance_clock(deadline);
        }
        n
    }

    /// Window budget for the next epoch: how many windows the workers
    /// may run before handing the main thread a rebalance opportunity
    /// — or, with streaming attached, a drain-and-fold opportunity
    /// (whichever cadence is shorter).
    fn epoch_budget(&self) -> u64 {
        let policy = match &self.policy {
            RebalancePolicy::Off => u64::MAX,
            RebalancePolicy::Adaptive { every_windows } => (*every_windows).max(1),
            RebalancePolicy::ForceAt { window, .. } => {
                if self.runtime.windows < *window {
                    *window - self.runtime.windows
                } else {
                    u64::MAX
                }
            }
        };
        match &self.stream {
            Some(st) => policy.min(st.cadence),
            None => policy,
        }
    }

    /// The threaded YAWNS loop. On return every shard has processed
    /// exactly the events a sequential run would process up to
    /// `deadline` (inclusive); clocks are *not* yet normalized.
    ///
    /// Structured as a sequence of epochs: worker threads run the
    /// window protocol for at most [`epoch_budget`] windows, then
    /// join, giving the main thread single-threaded access to every
    /// shard world for a rebalance decision; fresh workers then
    /// continue from the exact barrier state. With
    /// [`RebalancePolicy::Off`] the budget is unbounded and exactly
    /// one epoch runs.
    ///
    /// [`epoch_budget`]: ShardedWorld::epoch_budget
    fn drive(&mut self, deadline: Time) -> (u64, QuiescenceOutcome) {
        let n = self.worlds.len();
        let lookahead = self.lookahead.nanos().max(1);
        let deadline_ns = deadline.nanos();
        // Window-end cap: events AT the deadline still run (sequential
        // semantics), anything later stays queued.
        let cap = deadline_ns.saturating_add(1);
        let peeks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let grid = ExchangeGrid::new(n);
        let barrier = BackoffBarrier::new(n);
        let (peeks, grid, barrier) = (&peeks, &grid, &barrier);
        let mut total_events = 0u64;
        let streaming = self.stream.is_some();
        loop {
            let budget = self.epoch_budget();
            // Worker-side spill buffers: each worker drains its own
            // shard's telemetry rings here every window, so ring
            // pressure never depends on the epoch fold cadence.
            let mut spills: Vec<Vec<TelemetryEvent>> = (0..n).map(|_| Vec::new()).collect();
            // Global index of this epoch's first window, so spans from
            // successive epochs number windows continuously.
            let base = self.runtime.windows;
            let mut results: Vec<EpochResult> = Vec::with_capacity(n);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .worlds
                    .iter_mut()
                    .zip(self.profs.iter_mut())
                    .zip(spills.iter_mut())
                    .enumerate()
                    .map(|(i, ((world, prof), spill))| {
                        s.spawn(move || {
                            let mut res = EpochResult {
                                events: 0,
                                windows: 0,
                                wait_ns: 0,
                                exchanged: 0,
                                exit: EpochExit::Budget,
                            };
                            loop {
                                let win = base + res.windows;
                                let peek = world.next_event_time().map_or(u64::MAX, |t| t.nanos());
                                peeks[i].store(peek, Ordering::SeqCst);
                                // Barrier spans take the barrier's own
                                // measured wait, so profile barrier
                                // time and `runner.barrier_wait_ns`
                                // agree exactly.
                                let t0 = prof.begin();
                                let waited = barrier.wait();
                                prof.end_with(Phase::BarrierWait, win, t0, waited);
                                res.wait_ns += waited;
                                // Every worker reads the same snapshot
                                // (no store happens until after the
                                // *next* barrier), so every worker
                                // computes the same T and the loop
                                // exits in lockstep.
                                let t = peeks
                                    .iter()
                                    .map(|p| p.load(Ordering::SeqCst))
                                    .min()
                                    .expect("at least one shard");
                                if t == u64::MAX || t > deadline_ns {
                                    res.exit = EpochExit::Done(t);
                                    return res;
                                }
                                let end = Time::from_nanos(t.saturating_add(lookahead).min(cap));
                                let t0 = prof.begin();
                                res.events += world.run_window(end);
                                prof.end(Phase::Step, win, t0);
                                if streaming {
                                    // Collect the in-window spill (see
                                    // `World::spill_tick`) plus ring
                                    // residue from the worker, so ring
                                    // pressure never depends on the
                                    // epoch fold cadence. Folding still
                                    // happens only at epoch boundaries,
                                    // below the finality watermark.
                                    let t0 = prof.begin();
                                    world.take_spill(spill);
                                    prof.end(Phase::TelemetryDrain, win, t0);
                                }
                                // Producer phase: swap every non-empty
                                // outbox into this shard's row of the
                                // grid. The swapped-in buffer is the
                                // (empty, warm) one the consumer left
                                // behind last round.
                                let t0 = prof.begin();
                                for dst in 0..n {
                                    if dst != i && world.outbox_filled(dst) {
                                        let cell = grid.cell(i, dst);
                                        let mut batch =
                                            cell.batch.lock().expect("no panics hold this lock");
                                        world.swap_outbox(dst, &mut batch);
                                        res.exchanged += batch.len() as u64;
                                        drop(batch);
                                        cell.filled.store(true, Ordering::Release);
                                    }
                                }
                                prof.end(Phase::OutboxFill, win, t0);
                                let t0 = prof.begin();
                                let waited = barrier.wait();
                                prof.end_with(Phase::BarrierWait, win, t0, waited);
                                res.wait_ns += waited;
                                // Consumer phase: drain this shard's
                                // column, capacities staying in the
                                // cells for the next producer swap.
                                let t0 = prof.begin();
                                for src in 0..n {
                                    if src != i
                                        && grid.cell(src, i).filled.swap(false, Ordering::Acquire)
                                    {
                                        let mut batch = grid
                                            .cell(src, i)
                                            .batch
                                            .lock()
                                            .expect("no panics hold this lock");
                                        world.ingest_drain(&mut batch);
                                    }
                                }
                                prof.end(Phase::ExchangeDrain, win, t0);
                                res.windows += 1;
                                if res.windows >= budget {
                                    return res;
                                }
                            }
                        })
                    })
                    .collect();
                results =
                    handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
            });
            if let Some(st) = &mut self.stream {
                for spill in &mut spills {
                    st.pending.append(spill);
                }
            }
            total_events += results.iter().map(|r| r.events).sum::<u64>();
            self.runtime.windows += results[0].windows;
            for (i, r) in results.iter().enumerate() {
                debug_assert_eq!(r.windows, results[0].windows, "shards ran lockstep windows");
                self.runtime.barrier_wait_ns[i] += r.wait_ns;
                self.runtime.exchanged_events[i] += r.exchanged;
            }
            match results[0].exit {
                EpochExit::Done(t) => {
                    // Fold what's final so rings stay empty between
                    // drive() calls; at quiescence every shard peek is
                    // None and everything folds.
                    self.stream_fold(false);
                    let outcome = if t == u64::MAX {
                        QuiescenceOutcome::Quiescent
                    } else {
                        QuiescenceOutcome::DeadlineReached
                    };
                    return (total_events, outcome);
                }
                EpochExit::Budget => {
                    // Drain before any migration so rings travel empty.
                    self.stream_fold(false);
                    let main = self.worlds.len();
                    let window = self.runtime.windows;
                    let t0 = self.profs[main].begin();
                    self.rebalance();
                    self.profs[main].end(Phase::Rebalance, window, t0);
                }
            }
        }
    }

    /// The epoch-boundary rebalance step (main thread, workers
    /// joined): decide on a plan, migrate the clusters whose shard
    /// changed, and install the plan everywhere.
    fn rebalance(&mut self) {
        let hubs = self.topo.hub_count();
        let new_plan = match self.policy.clone() {
            RebalancePolicy::Off => return,
            RebalancePolicy::ForceAt { window, plan } => {
                if self.runtime.windows != window {
                    return;
                }
                plan
            }
            RebalancePolicy::Adaptive { every_windows } => {
                // Streaming may shorten epochs below `every_windows`;
                // only evaluate on the policy's own cadence.
                if self.runtime.windows < self.next_adaptive {
                    return;
                }
                self.next_adaptive = self.runtime.windows + every_windows.max(1);
                let cum: Vec<u64> = (0..hubs)
                    .map(|h| self.worlds.iter().map(|w| w.cluster_weight(h)).sum())
                    .collect();
                let delta: Vec<u64> =
                    cum.iter().zip(&self.prev_weights).map(|(c, p)| c.saturating_sub(*p)).collect();
                self.prev_weights = cum;
                let cand = ShardPlan::weighted(&self.topo, self.plan.shards(), &delta);
                if cand == *self.plan {
                    return;
                }
                let load = |plan: &ShardPlan| -> u128 {
                    let mut per = vec![0u128; plan.shards()];
                    for (h, &d) in delta.iter().enumerate() {
                        per[plan.shard_of_hub(h)] += d as u128 + 1;
                    }
                    per.into_iter().max().unwrap_or(0)
                };
                // Hysteresis: migration and thread respawn aren't
                // free; only adopt a ≥10% heaviest-shard improvement.
                if load(&cand) * 10 > load(&self.plan) * 9 {
                    return;
                }
                cand
            }
        };
        if new_plan == *self.plan {
            return;
        }
        let old = Arc::clone(&self.plan);
        let plan = Arc::new(new_plan);
        for h in 0..hubs {
            let (from, to) = (old.shard_of_hub(h), plan.shard_of_hub(h));
            if from != to {
                let (src, dst) = two_mut(&mut self.worlds, from, to);
                World::migrate_cluster(src, dst, h);
            }
        }
        for w in &mut self.worlds {
            w.set_shard_plan(Arc::clone(&plan));
        }
        self.plan = plan;
        self.runtime.rebalances += 1;
    }

    // ---------------------------------------------------------------
    // Merged observations
    // ---------------------------------------------------------------

    /// Current simulation time (identical across shards after a run).
    pub fn now(&self) -> Time {
        self.worlds.iter().map(|w| w.now()).max().unwrap_or(Time::ZERO)
    }

    /// Total events processed across all shards. Every event runs in
    /// exactly one shard and the window protocol adds none, so this
    /// equals the sequential count.
    pub fn events_processed(&self) -> u64 {
        self.worlds.iter().map(|w| w.events_processed()).sum()
    }

    /// Packets destroyed by fault injection, across shards.
    pub fn faults_injected(&self) -> u64 {
        self.worlds.iter().map(|w| w.faults_injected).sum()
    }

    /// The active chaos schedule, if any.
    pub fn chaos_schedule(&self) -> Option<&ChaosSchedule> {
        self.worlds[0].chaos_schedule()
    }

    /// Merged metrics: counters sum, gauges max, histograms merge —
    /// and the flight-latency join runs over the union of all shards'
    /// birth/end maps, since multicast flights can be born in one
    /// shard and delivered in another. Non-owned components in each
    /// shard contribute exact zeros, so the merge reproduces the
    /// sequential registry bit-for-bit.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let mut births: HashMap<u64, Time> = HashMap::new();
        let mut ends: HashMap<u64, Time> = HashMap::new();
        for w in &self.worlds {
            reg.merge(&w.metrics_without_flights());
            let (b, e) = w.flight_times();
            births.extend(b);
            for (id, at) in e {
                let slot = ends.entry(*id).or_insert(*at);
                if at < slot {
                    *slot = *at;
                }
            }
        }
        let mut flights = Histogram::new();
        join_flights(&births, &ends, &mut flights);
        if !flights.is_empty() {
            reg.merge_histogram("latency.flight_ns", &flights);
        }
        reg
    }

    /// Counters about the parallel runner itself: total windows,
    /// rebalances adopted, and per-shard barrier wait time and
    /// exchanged cross-shard event counts.
    ///
    /// Deliberately **not** part of [`metrics`](ShardedWorld::metrics):
    /// that registry is bit-compared against sequential runs (and
    /// across shard counts) in tests and CI, while barrier wait is a
    /// property of the host scheduler, not of the simulated system.
    /// Window, rebalance, and exchange counts *are* deterministic for
    /// a fixed shard count, but they describe the runner, so they live
    /// here too.
    pub fn runtime_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("runner.windows", self.runtime.windows);
        reg.counter_add("runner.rebalances", self.runtime.rebalances);
        reg.counter_add("runner.barrier_wait_ns", self.runtime.barrier_wait_ns.iter().sum::<u64>());
        reg.counter_add(
            "runner.exchanged_events",
            self.runtime.exchanged_events.iter().sum::<u64>(),
        );
        for i in 0..self.worlds.len() {
            reg.counter_add(
                &format!("runner.shard{i}.barrier_wait_ns"),
                self.runtime.barrier_wait_ns[i],
            );
            reg.counter_add(
                &format!("runner.shard{i}.exchanged_events"),
                self.runtime.exchanged_events[i],
            );
        }
        reg
    }

    /// Every recorded telemetry event across all shards, in the
    /// canonical order (see [`canonical_telemetry_sort`]).
    pub fn telemetry_events(&self) -> Vec<TelemetryEvent> {
        let mut all: Vec<TelemetryEvent> =
            self.worlds.iter().flat_map(|w| w.telemetry_events()).collect();
        canonical_telemetry_sort(&mut all);
        all
    }

    /// Every message delivery across shards, in canonical order
    /// (compare against a sequential run's deliveries sorted with
    /// [`canonical_delivery_sort`]).
    pub fn deliveries(&self) -> Vec<Delivery> {
        let mut all: Vec<Delivery> =
            self.worlds.iter().flat_map(|w| w.deliveries.iter().cloned()).collect();
        canonical_delivery_sort(&mut all);
        all
    }

    /// Sender-side completions across shards: `(cab, msg_id, at)`,
    /// sorted canonically.
    pub fn completions(&self) -> Vec<(usize, u32, Time)> {
        let mut all: Vec<(usize, u32, Time)> =
            self.worlds.iter().flat_map(|w| w.completions.iter().copied()).collect();
        all.sort_unstable_by_key(|&(cab, id, at)| (at, cab, id));
        all
    }

    // ---------------------------------------------------------------
    // Per-component routing (each CAB's state lives in one shard)
    // ---------------------------------------------------------------

    /// Takes the next message out of a mailbox (application receive).
    pub fn mailbox_take(
        &mut self,
        cab: usize,
        mailbox: u16,
    ) -> Option<nectar_kernel::mailbox::Message> {
        let s = self.shard_of_cab(cab);
        self.worlds[s].mailbox_take(cab, mailbox)
    }

    /// Byte-stream statistics from `src` towards `dst`.
    pub fn stream_stats(
        &self,
        src: usize,
        dst: usize,
    ) -> Option<nectar_proto::transport::bytestream::ByteStreamStats> {
        self.worlds[self.shard_of_cab(src)].stream_stats(src, dst)
    }

    /// RPC server counters for CAB `idx`.
    pub fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64) {
        self.worlds[self.shard_of_cab(idx)].rpc_server_stats(idx)
    }

    /// RPC client counters for CAB `idx`.
    pub fn rpc_client_stats(&self, idx: usize) -> (u64, u64, u64, u64) {
        self.worlds[self.shard_of_cab(idx)].rpc_client_stats(idx)
    }

    /// Counters for CAB `idx`.
    pub fn cab_counters(&self, idx: usize) -> crate::world::CabCounters {
        self.worlds[self.shard_of_cab(idx)].cab_counters(idx)
    }

    /// `true` when every stream has drained and no RPC is pending.
    pub fn transport_quiescent(&self) -> bool {
        self.worlds.iter().all(|w| w.transport_quiescent())
    }

    /// Wire-buffer pool counters summed across all shards' CABs.
    pub fn pool_stats(&self) -> nectar_hub::pool::PoolStats {
        let mut total = nectar_hub::pool::PoolStats::default();
        for w in &self.worlds {
            total.merge(w.pool_stats());
        }
        total
    }

    /// Buffers destroyed at HUBs by chaos, across shards.
    pub fn chaos_freed(&self) -> u64 {
        self.worlds.iter().map(|w| w.chaos_freed()).sum()
    }

    /// HUB fan-out copies, across shards (non-owned HUBs count zero).
    pub fn hub_fanout_copies(&self) -> u64 {
        self.worlds.iter().map(|w| w.hub_fanout_copies()).sum()
    }

    /// Applied-fault counters summed across shards. Each component's
    /// arrivals are faulted in exactly one shard, so the sum equals
    /// the sequential injector's stats.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.worlds[0].chaos_schedule()?;
        let mut total = ChaosStats::default();
        for w in &self.worlds {
            let Some(s) = w.chaos_stats() else { continue };
            total.drops += s.drops;
            total.burst_drops += s.burst_drops;
            total.flap_drops += s.flap_drops;
            total.duplicates += s.duplicates;
            total.reorders += s.reorders;
            total.corruptions += s.corruptions;
            total.cmd_drops += s.cmd_drops;
            total.port_drops += s.port_drops;
        }
        Some(total)
    }
}

/// Disjoint mutable borrows of two distinct slice elements.
fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "cannot migrate a cluster to its own shard");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Sorts telemetry into the canonical cross-run comparison order:
/// `(time, flight, packed kind)` — see
/// [`TelemetryEvent::canonical_key`]. Per-shard rings interleave
/// same-instant events from different components differently than one
/// sequential ring does; this order is a total one over the event
/// *content*, so two runs recorded the same events iff the sorted
/// vectors are equal. The streaming doctor sorts every ingest batch
/// with the same key, which is why its folds are shard-invariant.
pub fn canonical_telemetry_sort(events: &mut [TelemetryEvent]) {
    events.sort_unstable_by_key(|e| e.canonical_key());
}

/// Sorts deliveries into the canonical comparison order.
pub fn canonical_delivery_sort(deliveries: &mut [Delivery]) {
    deliveries.sort_by_key(|d| (d.at, d.cab, d.mailbox, d.msg_id, d.len));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The delay the forced straggler adds before each crossing.
    /// Generous so scheduler noise on a loaded CI host cannot flip the
    /// comparisons below.
    const STRAGGLE: Duration = Duration::from_millis(5);
    const CROSSINGS: usize = 4;

    #[test]
    fn last_arriver_waits_zero_and_waiters_measure_the_gap() {
        let barrier = BackoffBarrier::new(2);
        let b = &barrier;
        std::thread::scope(|s| {
            let prompt = s.spawn(move || b.wait());
            let straggler = s.spawn(move || {
                std::thread::sleep(STRAGGLE);
                b.wait()
            });
            let prompt_wait = prompt.join().unwrap();
            let straggler_wait = straggler.join().unwrap();
            assert_eq!(straggler_wait, 0, "the last arriver never waits");
            assert!(
                prompt_wait >= STRAGGLE.as_nanos() as u64 / 2,
                "the prompt thread waited out the straggler's delay, got {prompt_wait} ns"
            );
        });
    }

    #[test]
    fn per_crossing_waits_are_monotone_and_attributed_to_prompt_shards() {
        let barrier = BackoffBarrier::new(3);
        let b = &barrier;
        let run = |straggle: bool| {
            move || {
                let mut cumulative = Vec::with_capacity(CROSSINGS);
                let mut total = 0u64;
                for _ in 0..CROSSINGS {
                    if straggle {
                        std::thread::sleep(STRAGGLE);
                    }
                    total += b.wait();
                    cumulative.push(total);
                }
                cumulative
            }
        };
        let (prompt_a, prompt_b, straggler) = std::thread::scope(|s| {
            let a = s.spawn(run(false));
            let bb = s.spawn(run(false));
            let c = s.spawn(run(true));
            (a.join().unwrap(), bb.join().unwrap(), c.join().unwrap())
        });
        for cum in [&prompt_a, &prompt_b, &straggler] {
            assert!(cum.windows(2).all(|w| w[0] <= w[1]), "cumulative wait is monotone: {cum:?}");
        }
        // Every crossing is bounded by the straggler, so both prompt
        // shards accumulate roughly CROSSINGS × STRAGGLE of wait while
        // the straggler itself arrives last and waits almost nothing.
        let floor = (CROSSINGS as u64) * STRAGGLE.as_nanos() as u64 / 4;
        let strag_total = *straggler.last().unwrap();
        for (name, prompt) in [("a", &prompt_a), ("b", &prompt_b)] {
            let total = *prompt.last().unwrap();
            assert!(total >= floor, "prompt {name} absorbed the straggler's delay: {total} ns");
            assert!(
                total > strag_total,
                "wait attributed to prompt shard {name} ({total} ns), \
                 not the straggler ({strag_total} ns)"
            );
        }
    }

    #[test]
    fn runtime_metrics_sum_matches_per_shard_counters() {
        let topo = Topology::fat_star(4, 2, 16);
        let mut world = ShardedWorld::new(topo, SystemConfig::default(), 4);
        world.enable_profiling();
        for cab in 0..4 {
            let payload: std::sync::Arc<[u8]> = vec![7u8; 600].into();
            let send = AppSend::Stream {
                dst: (cab + 4) % 8,
                src_mailbox: 1,
                dst_mailbox: 9,
                data: payload,
            };
            world.schedule_send(Time::from_micros(5), cab, send);
        }
        world.run_to_quiescence(Time::from_millis(50));
        let reg = world.runtime_metrics();
        let shards = world.shards();
        let wait_sum: u64 =
            (0..shards).map(|i| reg.counter(&format!("runner.shard{i}.barrier_wait_ns"))).sum();
        let exch_sum: u64 =
            (0..shards).map(|i| reg.counter(&format!("runner.shard{i}.exchanged_events"))).sum();
        assert_eq!(reg.counter("runner.barrier_wait_ns"), wait_sum);
        assert_eq!(reg.counter("runner.exchanged_events"), exch_sum);
        assert!(reg.counter("runner.windows") > 0);
        // The profiler records barrier spans with the barrier's own
        // measured waits, so (with no ring overflow) the profile's
        // barrier total equals the runtime counter exactly.
        let profile = world.host_profile().expect("profiling enabled");
        assert_eq!(profile.dropped, 0);
        let span_wait: u64 = profile
            .worker_tracks()
            .iter()
            .flatten()
            .filter(|s| s.phase == Phase::BarrierWait)
            .map(|s| s.dur_ns)
            .sum();
        assert_eq!(span_wait, wait_sum, "profile barrier spans agree with runtime counters");
    }
}
