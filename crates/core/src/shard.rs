//! Sharded conservative-parallel execution: one simulated Nectar,
//! all cores, bit-identical results.
//!
//! The Nectar-net is parallel in space: HUB clusters are joined by
//! fibers whose minimum latency — [`HubConfig::lookahead`] plus
//! propagation — lower-bounds how soon one cluster can affect
//! another. [`ShardedWorld`] exploits that bound with a bounded-lag /
//! YAWNS window protocol: the topology is partitioned into shards
//! (each HUB with its attached CABs, in configurable contiguous
//! groups), each shard runs its own [`World`] with its own engine,
//! and all shards repeatedly
//!
//! 1. publish their next event time and agree on the global minimum
//!    `T`,
//! 2. execute every local event in the window `[T, T + lookahead)`,
//!    collecting cross-shard fiber traffic into per-destination
//!    outboxes (every such event lands at `>= T + lookahead` — that
//!    is what lookahead means), and
//! 3. exchange outboxes at a barrier and ingest.
//!
//! Determinism is non-negotiable and does not come from the window
//! protocol alone: it comes from **keyed event ordering**. Every
//! event carries a tie-break key derived from its source component
//! and a per-source counter (see `Engine::schedule_at_keyed`), so
//! same-instant events pop in an order intrinsic to the simulated
//! system rather than to scheduling history. The sequential [`World`]
//! uses the same keys, which is why `ShardedWorld` with any shard
//! count produces bit-identical metrics, invariant verdicts, and
//! (canonically sorted) telemetry to a plain sequential run.
//!
//! [`HubConfig::lookahead`]: nectar_hub::config::HubConfig::lookahead

use crate::topology::Topology;
use crate::world::{join_flights, AppSend, Delivery, Ev, QuiescenceOutcome, SystemConfig, World};
use nectar_sim::chaos::{ChaosSchedule, ChaosStats};
use nectar_sim::metrics::{Histogram, MetricsRegistry};
use nectar_sim::telemetry::TelemetryEvent;
use nectar_sim::time::{Dur, Time};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Maps every HUB (and, through its attachment, every CAB) to a
/// shard. Shards are contiguous HUB ranges: HUB indices produced by
/// the [`Topology`] constructors place topologically close clusters
/// at adjacent indices, so contiguous blocks keep most fiber edges
/// internal.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shard_of_hub: Vec<usize>,
    shards: usize,
}

impl ShardPlan {
    /// Partitions `topo`'s HUBs into `shards` contiguous blocks of
    /// near-equal size. The shard count is clamped to `1..=hub_count`
    /// — more shards than HUBs cannot help, since a HUB is the unit
    /// of ownership (a CAB always lives with its attachment HUB, so
    /// CAB-HUB edges are never cross-shard).
    pub fn contiguous(topo: &Topology, shards: usize) -> ShardPlan {
        let hubs = topo.hub_count();
        let shards = shards.clamp(1, hubs);
        let shard_of_hub = (0..hubs).map(|h| h * shards / hubs).collect();
        ShardPlan { shard_of_hub, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning HUB `hub`.
    pub fn shard_of_hub(&self, hub: usize) -> usize {
        self.shard_of_hub[hub]
    }

    /// The shard owning CAB `cab` (its attachment HUB's shard).
    pub fn shard_of_cab(&self, topo: &Topology, cab: usize) -> usize {
        self.shard_of_hub[topo.cab_attachment(cab).0]
    }
}

/// Per-shard routing context carried by a shard's [`World`]: where
/// every HUB lives, which shard this world is, and the per-destination
/// outbox filled during a window and exchanged at the barrier.
pub(crate) struct ShardCtx {
    pub(crate) plan: Arc<ShardPlan>,
    pub(crate) id: usize,
    pub(crate) outbox: Vec<Vec<(Time, u64, Ev)>>,
}

/// A sense-counting spin barrier. `std::sync::Barrier` parks threads
/// on a condvar; at hundreds of thousands of sub-microsecond windows
/// per run, wakeup latency would dominate the simulation itself.
/// Workers here are busy by construction (they hold a core for the
/// whole run), so spinning with a yield fallback is the right trade.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier { n, count: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) == gen {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(4096) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The window barrier, picked per run: spin when every shard can hold
/// its own core, park on a condvar when shards outnumber cores.
/// Spinning while oversubscribed is pathological — a waiting thread
/// burns the timeslice the *arriving* thread needs, so every window
/// costs scheduler round-trips instead of nanoseconds.
enum WindowBarrier {
    Spin(SpinBarrier),
    Block(std::sync::Barrier),
}

impl WindowBarrier {
    fn new(n: usize) -> WindowBarrier {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if n <= cores {
            WindowBarrier::Spin(SpinBarrier::new(n))
        } else {
            WindowBarrier::Block(std::sync::Barrier::new(n))
        }
    }

    fn wait(&self) {
        match self {
            WindowBarrier::Spin(b) => b.wait(),
            WindowBarrier::Block(b) => {
                b.wait();
            }
        }
    }
}

/// A [`World`] partitioned across OS threads, with the same API
/// surface and — by construction — the same observable results.
///
/// # Examples
///
/// ```
/// use nectar_core::prelude::*;
/// use nectar_sim::time::Time;
/// use std::sync::Arc;
///
/// let topo = Topology::fat_star(4, 2, 16);
/// let mut seq = World::new(topo.clone(), SystemConfig::default());
/// let mut par = ShardedWorld::new(topo, SystemConfig::default(), 4);
/// for _ in 0..2 {
///     let payload: Arc<[u8]> = vec![7u8; 600].into();
///     let send = AppSend::Stream { dst: 1, src_mailbox: 1, dst_mailbox: 9, data: payload };
///     seq.schedule_send(Time::from_micros(5), 0, send.clone());
///     par.schedule_send(Time::from_micros(5), 0, send);
/// }
/// seq.run_to_quiescence(Time::from_millis(50));
/// par.run_to_quiescence(Time::from_millis(50));
/// assert_eq!(seq.metrics().to_json(), par.metrics().to_json());
/// ```
pub struct ShardedWorld {
    topo: Topology,
    plan: Arc<ShardPlan>,
    worlds: Vec<World>,
    /// Window width: `HubConfig::lookahead()` + fiber propagation.
    lookahead: Dur,
}

impl ShardedWorld {
    /// Partitions `topo` into `shards` shards (clamped to the HUB
    /// count) and builds one engine per shard. `shards == 1` behaves
    /// exactly like — and runs as fast as — a sequential [`World`].
    pub fn new(topo: Topology, cfg: SystemConfig, shards: usize) -> ShardedWorld {
        let plan = Arc::new(ShardPlan::contiguous(&topo, shards));
        let lookahead = cfg.hub.lookahead() + cfg.propagation;
        let worlds = (0..plan.shards())
            .map(|i| World::new_shard(topo.clone(), cfg.clone(), Arc::clone(&plan), i))
            .collect();
        ShardedWorld { topo, plan, worlds, lookahead }
    }

    /// Number of shards actually running.
    pub fn shards(&self) -> usize {
        self.worlds.len()
    }

    /// The topology this world runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The window width: the lookahead every shard may run ahead of
    /// the global minimum event time.
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }

    fn shard_of_cab(&self, cab: usize) -> usize {
        self.plan.shard_of_cab(&self.topo, cab)
    }

    /// Switches on the flight recorder in every shard (see
    /// [`World::enable_observability`]).
    pub fn enable_observability(&mut self) {
        for w in &mut self.worlds {
            w.enable_observability();
        }
    }

    /// Installs the same chaos schedule in every shard. Clause RNG
    /// streams are per-(clause, component), and each component's
    /// arrivals happen in exactly one shard, so the compiled
    /// injectors collectively consume the same draws as a sequential
    /// run's single injector.
    pub fn set_chaos(&mut self, schedule: ChaosSchedule) {
        for w in &mut self.worlds {
            w.set_chaos(schedule.clone());
        }
    }

    /// Schedules an application send on the shard owning `cab`.
    pub fn schedule_send(&mut self, at: Time, cab: usize, send: AppSend) {
        let s = self.shard_of_cab(cab);
        self.worlds[s].schedule_send(at, cab, send);
    }

    /// Runs the window protocol until every shard's queue drains or
    /// the global clock would pass `deadline`; mirrors
    /// [`World::run_to_quiescence`] including final clock position.
    pub fn run_to_quiescence(&mut self, deadline: Time) -> (u64, QuiescenceOutcome) {
        if self.worlds.len() == 1 {
            return self.worlds[0].run_to_quiescence(deadline);
        }
        let (n, outcome) = self.drive(deadline);
        let settle = match outcome {
            QuiescenceOutcome::Quiescent => {
                self.worlds.iter().map(|w| w.now()).max().unwrap_or(Time::ZERO)
            }
            QuiescenceOutcome::DeadlineReached => deadline,
        };
        for w in &mut self.worlds {
            w.advance_clock(settle);
        }
        (n, outcome)
    }

    /// Runs until quiet or past `deadline`, then advances every shard
    /// clock to `deadline`; mirrors [`World::run_until`].
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        if self.worlds.len() == 1 {
            return self.worlds[0].run_until(deadline);
        }
        let (n, _) = self.drive(deadline);
        for w in &mut self.worlds {
            w.advance_clock(deadline);
        }
        n
    }

    /// The threaded YAWNS loop. On return every shard has processed
    /// exactly the events a sequential run would process up to
    /// `deadline` (inclusive); clocks are *not* yet normalized.
    fn drive(&mut self, deadline: Time) -> (u64, QuiescenceOutcome) {
        let n = self.worlds.len();
        let lookahead = self.lookahead.nanos().max(1);
        let deadline_ns = deadline.nanos();
        // Window-end cap: events AT the deadline still run (sequential
        // semantics), anything later stays queued.
        let cap = deadline_ns.saturating_add(1);
        let peeks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let inboxes: Vec<Mutex<Vec<(Time, u64, Ev)>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = WindowBarrier::new(n);
        let (peeks, inboxes, barrier) = (&peeks, &inboxes, &barrier);
        let mut results: Vec<(u64, u64)> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .worlds
                .iter_mut()
                .enumerate()
                .map(|(i, world)| {
                    s.spawn(move || {
                        let mut events = 0u64;
                        loop {
                            let peek = world.next_event_time().map_or(u64::MAX, |t| t.nanos());
                            peeks[i].store(peek, Ordering::SeqCst);
                            barrier.wait();
                            // Every worker reads the same snapshot (no
                            // store happens until after the *next*
                            // barrier), so every worker computes the
                            // same T and the loop exits in lockstep.
                            let t = peeks
                                .iter()
                                .map(|p| p.load(Ordering::SeqCst))
                                .min()
                                .expect("at least one shard");
                            if t == u64::MAX || t > deadline_ns {
                                return (events, t);
                            }
                            let end = Time::from_nanos(t.saturating_add(lookahead).min(cap));
                            events += world.run_window(end);
                            for (dst, inbox) in inboxes.iter().enumerate() {
                                if dst == i {
                                    continue;
                                }
                                let out = world.drain_outbox(dst);
                                if !out.is_empty() {
                                    inbox.lock().expect("no panics hold this lock").extend(out);
                                }
                            }
                            barrier.wait();
                            let mine = std::mem::take(
                                &mut *inboxes[i].lock().expect("no panics hold this lock"),
                            );
                            world.ingest(mine);
                        }
                    })
                })
                .collect();
            results =
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
        });
        let total: u64 = results.iter().map(|(e, _)| e).sum();
        let final_t = results[0].1;
        let outcome = if final_t == u64::MAX {
            QuiescenceOutcome::Quiescent
        } else {
            QuiescenceOutcome::DeadlineReached
        };
        (total, outcome)
    }

    // ---------------------------------------------------------------
    // Merged observations
    // ---------------------------------------------------------------

    /// Current simulation time (identical across shards after a run).
    pub fn now(&self) -> Time {
        self.worlds.iter().map(|w| w.now()).max().unwrap_or(Time::ZERO)
    }

    /// Total events processed across all shards. Every event runs in
    /// exactly one shard and the window protocol adds none, so this
    /// equals the sequential count.
    pub fn events_processed(&self) -> u64 {
        self.worlds.iter().map(|w| w.events_processed()).sum()
    }

    /// Packets destroyed by fault injection, across shards.
    pub fn faults_injected(&self) -> u64 {
        self.worlds.iter().map(|w| w.faults_injected).sum()
    }

    /// The active chaos schedule, if any.
    pub fn chaos_schedule(&self) -> Option<&ChaosSchedule> {
        self.worlds[0].chaos_schedule()
    }

    /// Merged metrics: counters sum, gauges max, histograms merge —
    /// and the flight-latency join runs over the union of all shards'
    /// birth/end maps, since multicast flights can be born in one
    /// shard and delivered in another. Non-owned components in each
    /// shard contribute exact zeros, so the merge reproduces the
    /// sequential registry bit-for-bit.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let mut births: HashMap<u64, Time> = HashMap::new();
        let mut ends: HashMap<u64, Time> = HashMap::new();
        for w in &self.worlds {
            reg.merge(&w.metrics_without_flights());
            let (b, e) = w.flight_times();
            births.extend(b);
            for (id, at) in e {
                let slot = ends.entry(*id).or_insert(*at);
                if at < slot {
                    *slot = *at;
                }
            }
        }
        let mut flights = Histogram::new();
        join_flights(&births, &ends, &mut flights);
        if !flights.is_empty() {
            reg.merge_histogram("latency.flight_ns", &flights);
        }
        reg
    }

    /// Every recorded telemetry event across all shards, in the
    /// canonical order (see [`canonical_telemetry_sort`]).
    pub fn telemetry_events(&self) -> Vec<TelemetryEvent> {
        let mut all: Vec<TelemetryEvent> =
            self.worlds.iter().flat_map(|w| w.telemetry_events()).collect();
        canonical_telemetry_sort(&mut all);
        all
    }

    /// Every message delivery across shards, in canonical order
    /// (compare against a sequential run's deliveries sorted with
    /// [`canonical_delivery_sort`]).
    pub fn deliveries(&self) -> Vec<Delivery> {
        let mut all: Vec<Delivery> =
            self.worlds.iter().flat_map(|w| w.deliveries.iter().cloned()).collect();
        canonical_delivery_sort(&mut all);
        all
    }

    /// Sender-side completions across shards: `(cab, msg_id, at)`,
    /// sorted canonically.
    pub fn completions(&self) -> Vec<(usize, u32, Time)> {
        let mut all: Vec<(usize, u32, Time)> =
            self.worlds.iter().flat_map(|w| w.completions.iter().copied()).collect();
        all.sort_unstable_by_key(|&(cab, id, at)| (at, cab, id));
        all
    }

    // ---------------------------------------------------------------
    // Per-component routing (each CAB's state lives in one shard)
    // ---------------------------------------------------------------

    /// Takes the next message out of a mailbox (application receive).
    pub fn mailbox_take(
        &mut self,
        cab: usize,
        mailbox: u16,
    ) -> Option<nectar_kernel::mailbox::Message> {
        let s = self.shard_of_cab(cab);
        self.worlds[s].mailbox_take(cab, mailbox)
    }

    /// Byte-stream statistics from `src` towards `dst`.
    pub fn stream_stats(
        &self,
        src: usize,
        dst: usize,
    ) -> Option<nectar_proto::transport::bytestream::ByteStreamStats> {
        self.worlds[self.shard_of_cab(src)].stream_stats(src, dst)
    }

    /// RPC server counters for CAB `idx`.
    pub fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64) {
        self.worlds[self.shard_of_cab(idx)].rpc_server_stats(idx)
    }

    /// RPC client counters for CAB `idx`.
    pub fn rpc_client_stats(&self, idx: usize) -> (u64, u64, u64, u64) {
        self.worlds[self.shard_of_cab(idx)].rpc_client_stats(idx)
    }

    /// Counters for CAB `idx`.
    pub fn cab_counters(&self, idx: usize) -> crate::world::CabCounters {
        self.worlds[self.shard_of_cab(idx)].cab_counters(idx)
    }

    /// `true` when every stream has drained and no RPC is pending.
    pub fn transport_quiescent(&self) -> bool {
        self.worlds.iter().all(|w| w.transport_quiescent())
    }

    /// Wire-buffer pool counters summed across all shards' CABs.
    pub fn pool_stats(&self) -> nectar_hub::pool::PoolStats {
        let mut total = nectar_hub::pool::PoolStats::default();
        for w in &self.worlds {
            total.merge(w.pool_stats());
        }
        total
    }

    /// Buffers destroyed at HUBs by chaos, across shards.
    pub fn chaos_freed(&self) -> u64 {
        self.worlds.iter().map(|w| w.chaos_freed()).sum()
    }

    /// HUB fan-out copies, across shards (non-owned HUBs count zero).
    pub fn hub_fanout_copies(&self) -> u64 {
        self.worlds.iter().map(|w| w.hub_fanout_copies()).sum()
    }

    /// Applied-fault counters summed across shards. Each component's
    /// arrivals are faulted in exactly one shard, so the sum equals
    /// the sequential injector's stats.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.worlds[0].chaos_schedule()?;
        let mut total = ChaosStats::default();
        for w in &self.worlds {
            let Some(s) = w.chaos_stats() else { continue };
            total.drops += s.drops;
            total.burst_drops += s.burst_drops;
            total.flap_drops += s.flap_drops;
            total.duplicates += s.duplicates;
            total.reorders += s.reorders;
            total.corruptions += s.corruptions;
            total.cmd_drops += s.cmd_drops;
            total.port_drops += s.port_drops;
        }
        Some(total)
    }
}

/// Sorts telemetry into the canonical cross-run comparison order:
/// `(time, flight, rendered kind)`. Per-shard rings interleave
/// same-instant events from different components differently than one
/// sequential ring does; this order is a total one over the event
/// *content*, so two runs recorded the same events iff the sorted
/// vectors are equal. (`EventKind` intentionally has no `Ord` — the
/// debug rendering is the comparison key of last resort.)
pub fn canonical_telemetry_sort(events: &mut [TelemetryEvent]) {
    events.sort_by_cached_key(|e| (e.at, e.flight, format!("{:?}", e.kind)));
}

/// Sorts deliveries into the canonical comparison order.
pub fn canonical_delivery_sort(deliveries: &mut [Delivery]) {
    deliveries.sort_by_key(|d| (d.at, d.cab, d.mailbox, d.msg_id, d.len));
}
