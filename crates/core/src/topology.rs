//! Nectar-net topologies: CABs, HUBs, and the fibers between them.
//!
//! "In a system with a single HUB, all the CABs are connected to the
//! same HUB (Fig. 2). To build larger systems, multiple HUBs are
//! needed. [...] The HUB clusters may be connected in any topology
//! appropriate to the application environment" (§3.1). This module
//! describes the physical wiring, validates it, and computes the
//! source routes the datalink layer turns into command packets —
//! including the 2-D mesh of Fig. 4 and the 4-HUB example of Fig. 7.

use core::fmt;
use nectar_hub::id::{HubId, PortId};
use nectar_proto::datalink::{Hop, MulticastRoute, Route};
use std::collections::VecDeque;

/// What is attached at the far end of a HUB port's fiber pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Peer {
    /// A CAB (by index).
    Cab(usize),
    /// Another HUB's port.
    Hub(usize, PortId),
    /// Nothing (unused port).
    None,
}

/// Errors constructing a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// Two links claim the same HUB port.
    PortInUse {
        /// The HUB index.
        hub: usize,
        /// The contested port.
        port: PortId,
    },
    /// A port id at or beyond the per-HUB port count.
    PortOutOfRange {
        /// The HUB index.
        hub: usize,
        /// The offending port.
        port: PortId,
    },
    /// A HUB index beyond the HUB count.
    NoSuchHub {
        /// The offending index.
        hub: usize,
    },
    /// More than 256 HUBs (HUB ids are one wire byte).
    TooManyHubs,
    /// No fiber path between two CABs.
    Unreachable {
        /// Source CAB index.
        from: usize,
        /// Destination CAB index.
        to: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortInUse { hub, port } => write!(f, "HUB{hub} {port} already wired"),
            TopologyError::PortOutOfRange { hub, port } => {
                write!(f, "HUB{hub} has no port {port}")
            }
            TopologyError::NoSuchHub { hub } => write!(f, "no HUB{hub} in this topology"),
            TopologyError::TooManyHubs => f.write_str("at most 256 HUBs (ids are one byte)"),
            TopologyError::Unreachable { from, to } => {
                write!(f, "no path from CAB{from} to CAB{to}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated Nectar-net wiring.
#[derive(Clone, Debug)]
pub struct Topology {
    ports_per_hub: usize,
    /// `peers[hub][port]`.
    peers: Vec<Vec<Peer>>,
    /// Per CAB: the (hub, port) it is attached to.
    cab_links: Vec<(usize, PortId)>,
}

/// Incremental builder for arbitrary topologies.
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    ports_per_hub: usize,
    hubs: usize,
    peers: Vec<Vec<Peer>>,
    cab_links: Vec<(usize, PortId)>,
}

impl TopologyBuilder {
    /// Starts a topology of `hubs` HUBs with `ports_per_hub` ports each.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(hubs: usize, ports_per_hub: usize) -> TopologyBuilder {
        assert!(hubs > 0 && ports_per_hub > 0, "topology needs at least one HUB and port");
        TopologyBuilder {
            ports_per_hub,
            hubs,
            peers: vec![vec![Peer::None; ports_per_hub]; hubs],
            cab_links: Vec::new(),
        }
    }

    fn claim(&mut self, hub: usize, port: PortId, peer: Peer) -> Result<(), TopologyError> {
        if hub >= self.hubs {
            return Err(TopologyError::NoSuchHub { hub });
        }
        if port.index() >= self.ports_per_hub {
            return Err(TopologyError::PortOutOfRange { hub, port });
        }
        if self.peers[hub][port.index()] != Peer::None {
            return Err(TopologyError::PortInUse { hub, port });
        }
        self.peers[hub][port.index()] = peer;
        Ok(())
    }

    /// Attaches a new CAB to `hub` at `port`; returns the CAB index.
    ///
    /// # Errors
    ///
    /// See [`TopologyError`].
    pub fn add_cab(&mut self, hub: usize, port: PortId) -> Result<usize, TopologyError> {
        let cab = self.cab_links.len();
        self.claim(hub, port, Peer::Cab(cab))?;
        self.cab_links.push((hub, port));
        Ok(cab)
    }

    /// Wires a fiber pair between two HUB ports.
    ///
    /// # Errors
    ///
    /// See [`TopologyError`].
    pub fn link_hubs(
        &mut self,
        a: usize,
        pa: PortId,
        b: usize,
        pb: PortId,
    ) -> Result<(), TopologyError> {
        if b >= self.hubs {
            return Err(TopologyError::NoSuchHub { hub: b });
        }
        if pb.index() >= self.ports_per_hub {
            return Err(TopologyError::PortOutOfRange { hub: b, port: pb });
        }
        self.claim(a, pa, Peer::Hub(b, pb))?;
        // First claim succeeded; the second must too or we roll back.
        if let Err(e) = self.claim(b, pb, Peer::Hub(a, pa)) {
            self.peers[a][pa.index()] = Peer::None;
            return Err(e);
        }
        Ok(())
    }

    /// Finalizes the wiring.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooManyHubs`] if more than 256 HUBs.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.hubs > 256 {
            return Err(TopologyError::TooManyHubs);
        }
        Ok(Topology {
            ports_per_hub: self.ports_per_hub,
            peers: self.peers,
            cab_links: self.cab_links,
        })
    }
}

impl Topology {
    /// Fig. 2: one HUB with `cabs` CABs on ports `0..cabs`.
    ///
    /// # Panics
    ///
    /// Panics if `cabs` exceeds `ports_per_hub`.
    pub fn single_hub(cabs: usize, ports_per_hub: usize) -> Topology {
        assert!(cabs <= ports_per_hub, "a single HUB has {ports_per_hub} ports");
        let mut b = TopologyBuilder::new(1, ports_per_hub);
        for i in 0..cabs {
            b.add_cab(0, PortId::new(i as u8)).expect("ports are free");
        }
        b.build().expect("single hub is always valid")
    }

    /// Fig. 4: a `rows × cols` 2-D mesh of HUB clusters, each with
    /// `cabs_per_hub` CABs. Mesh links use the four highest ports
    /// (N, S, E, W), so `cabs_per_hub + 4 <= ports_per_hub`.
    ///
    /// # Panics
    ///
    /// Panics if the port budget is exceeded or the mesh is empty.
    pub fn mesh2d(rows: usize, cols: usize, cabs_per_hub: usize, ports_per_hub: usize) -> Topology {
        assert!(rows > 0 && cols > 0, "mesh must be non-empty");
        assert!(
            cabs_per_hub + 4 <= ports_per_hub,
            "mesh links need four ports: cabs_per_hub + 4 must fit in {ports_per_hub}"
        );
        let hub_at = |r: usize, c: usize| r * cols + c;
        let p = ports_per_hub as u8;
        let (north, south, east, west) =
            (PortId::new(p - 1), PortId::new(p - 2), PortId::new(p - 3), PortId::new(p - 4));
        let mut b = TopologyBuilder::new(rows * cols, ports_per_hub);
        for r in 0..rows {
            for c in 0..cols {
                for k in 0..cabs_per_hub {
                    b.add_cab(hub_at(r, c), PortId::new(k as u8)).expect("cab ports free");
                }
                if r + 1 < rows {
                    b.link_hubs(hub_at(r, c), south, hub_at(r + 1, c), north)
                        .expect("mesh ports free");
                }
                if c + 1 < cols {
                    b.link_hubs(hub_at(r, c), east, hub_at(r, c + 1), west)
                        .expect("mesh ports free");
                }
            }
        }
        b.build().expect("mesh is valid")
    }

    /// A fat star: one root HUB whose ports all feed leaf HUBs, each
    /// leaf carrying `cabs_per_leaf` CABs. This is the "multiple HUBs
    /// [...] connected in any topology appropriate to the application
    /// environment" case (§3.1) with the root acting as a pure trunk
    /// switch — every cross-leaf flight crosses exactly two fibers, so
    /// the topology maximizes the fraction of traffic that is local to
    /// a leaf cluster and is the natural scale-out benchmark shape.
    ///
    /// Leaf `l` hangs off root port `l`; each leaf's uplink uses its
    /// highest port, CABs use ports `0..cabs_per_leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or exceeds `ports_per_hub`, or if
    /// `cabs_per_leaf + 1` exceeds `ports_per_hub`.
    pub fn fat_star(leaves: usize, cabs_per_leaf: usize, ports_per_hub: usize) -> Topology {
        assert!(leaves > 0, "fat star needs at least one leaf");
        assert!(leaves <= ports_per_hub, "root has only {ports_per_hub} ports");
        assert!(cabs_per_leaf < ports_per_hub, "leaf needs an uplink port");
        let uplink = PortId::new(ports_per_hub as u8 - 1);
        // HUB 0 is the root; leaves are 1..=leaves.
        let mut b = TopologyBuilder::new(leaves + 1, ports_per_hub);
        for l in 0..leaves {
            b.link_hubs(0, PortId::new(l as u8), l + 1, uplink).expect("star ports free");
            for k in 0..cabs_per_leaf {
                b.add_cab(l + 1, PortId::new(k as u8)).expect("cab ports free");
            }
        }
        b.build().expect("fat star is valid")
    }

    /// A ring of HUB clusters ("the HUB clusters may be connected in
    /// any topology appropriate to the application environment",
    /// §3.1). Ring links use the two highest ports.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three clusters (a two-hub "ring" would
    /// double-wire one port pair) or if `cabs_per_hub + 2` exceeds the
    /// port count.
    pub fn ring(clusters: usize, cabs_per_hub: usize, ports_per_hub: usize) -> Topology {
        assert!(clusters >= 3, "a ring needs at least three clusters");
        assert!(cabs_per_hub + 2 <= ports_per_hub, "ring links need two ports per HUB");
        let p = ports_per_hub as u8;
        let (cw, ccw) = (PortId::new(p - 1), PortId::new(p - 2));
        let mut b = TopologyBuilder::new(clusters, ports_per_hub);
        for h in 0..clusters {
            for k in 0..cabs_per_hub {
                b.add_cab(h, PortId::new(k as u8)).expect("cab ports free");
            }
            b.link_hubs(h, cw, (h + 1) % clusters, ccw).expect("ring ports free");
        }
        b.build().expect("ring is valid")
    }

    /// Number of HUBs.
    pub fn hub_count(&self) -> usize {
        self.peers.len()
    }

    /// Number of CABs.
    pub fn cab_count(&self) -> usize {
        self.cab_links.len()
    }

    /// Ports per HUB.
    pub fn ports_per_hub(&self) -> usize {
        self.ports_per_hub
    }

    /// What is wired to `hub`'s `port`.
    pub fn peer(&self, hub: usize, port: PortId) -> Peer {
        self.peers.get(hub).and_then(|ports| ports.get(port.index())).copied().unwrap_or(Peer::None)
    }

    /// The (hub, port) a CAB is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `cab` is out of range.
    pub fn cab_attachment(&self, cab: usize) -> (usize, PortId) {
        self.cab_links[cab]
    }

    /// Shortest path of HUB indices from `from`'s hub to `to`'s hub
    /// (inclusive), by BFS.
    fn hub_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let (start, _) = self.cab_links[from];
        let (goal, _) = self.cab_links[to];
        if start == goal {
            return Some(vec![start]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.peers.len()];
        let mut queue = VecDeque::from([start]);
        prev[start] = Some(start);
        while let Some(h) = queue.pop_front() {
            for port in 0..self.ports_per_hub {
                if let Peer::Hub(next, _) = self.peers[h][port] {
                    if prev[next].is_none() {
                        prev[next] = Some(h);
                        if next == goal {
                            let mut path = vec![goal];
                            let mut cur = goal;
                            while cur != start {
                                cur = prev[cur].expect("visited");
                                path.push(cur);
                            }
                            path.reverse();
                            return Some(path);
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }

    /// The port on `hub` whose fiber leads to `next_hub`.
    fn port_toward(&self, hub: usize, next_hub: usize) -> Option<PortId> {
        (0..self.ports_per_hub)
            .map(|p| PortId::new(p as u8))
            .find(|&p| matches!(self.peers[hub][p.index()], Peer::Hub(h, _) if h == next_hub))
    }

    /// The source route from `from` to `to`: the output port to open at
    /// each HUB along the shortest path.
    ///
    /// # Errors
    ///
    /// [`TopologyError::Unreachable`] if no fiber path exists.
    pub fn route(&self, from: usize, to: usize) -> Result<Route, TopologyError> {
        assert_ne!(from, to, "a CAB does not route to itself");
        let path = self.hub_path(from, to).ok_or(TopologyError::Unreachable { from, to })?;
        let mut hops = Vec::with_capacity(path.len());
        for window in path.windows(2) {
            let port = self.port_toward(window[0], window[1]).expect("BFS followed a link");
            hops.push(Hop { hub: HubId::new(window[0] as u8), out: port });
        }
        // Final hop: the destination CAB's port on the last HUB.
        let (last_hub, cab_port) = self.cab_links[to];
        debug_assert_eq!(last_hub, *path.last().expect("path non-empty"));
        hops.push(Hop { hub: HubId::new(last_hub as u8), out: cab_port });
        Ok(Route::new(hops))
    }

    /// Number of HUBs a message from `from` to `to` traverses.
    pub fn hop_count(&self, from: usize, to: usize) -> Result<usize, TopologyError> {
        Ok(self.route(from, to)?.len())
    }

    /// A multicast route from `from` to every CAB in `to`: the union of
    /// the unicast shortest paths, with opens ordered parent-before-
    /// child (the §4.2.2 command-packet order).
    ///
    /// # Errors
    ///
    /// [`TopologyError::Unreachable`] if any destination is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `to` is empty or contains `from`.
    pub fn multicast_route(
        &self,
        from: usize,
        to: &[usize],
    ) -> Result<MulticastRoute, TopologyError> {
        assert!(!to.is_empty(), "multicast needs at least one destination");
        let mut opens: Vec<(Hop, bool)> = Vec::new();
        for &dst in to {
            assert_ne!(dst, from, "multicast does not loop back to the sender");
            let route = self.route(from, dst)?;
            let hops = route.hops();
            for (i, hop) in hops.iter().enumerate() {
                let terminal = i + 1 == hops.len();
                if let Some(existing) = opens.iter_mut().find(|(h, _)| h == hop) {
                    existing.1 |= terminal;
                } else {
                    opens.push((*hop, terminal));
                }
            }
        }
        Ok(MulticastRoute::new(opens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hub_routes_are_one_hop() {
        let t = Topology::single_hub(4, 16);
        assert_eq!(t.hub_count(), 1);
        assert_eq!(t.cab_count(), 4);
        let r = t.route(0, 3).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.hops()[0], Hop { hub: HubId::new(0), out: PortId::new(3) });
    }

    #[test]
    fn peer_lookup() {
        let t = Topology::single_hub(2, 16);
        assert_eq!(t.peer(0, PortId::new(0)), Peer::Cab(0));
        assert_eq!(t.peer(0, PortId::new(1)), Peer::Cab(1));
        assert_eq!(t.peer(0, PortId::new(5)), Peer::None);
        assert_eq!(t.peer(9, PortId::new(0)), Peer::None, "out of range is None");
    }

    #[test]
    fn two_hub_route_crosses_the_link() {
        let mut b = TopologyBuilder::new(2, 16);
        let c0 = b.add_cab(0, PortId::new(0)).unwrap();
        let c1 = b.add_cab(1, PortId::new(0)).unwrap();
        b.link_hubs(0, PortId::new(15), 1, PortId::new(15)).unwrap();
        let t = b.build().unwrap();
        let r = t.route(c0, c1).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.hops()[0], Hop { hub: HubId::new(0), out: PortId::new(15) });
        assert_eq!(r.hops()[1], Hop { hub: HubId::new(1), out: PortId::new(0) });
    }

    #[test]
    fn mesh_routes_have_manhattan_hop_counts() {
        // 3x3 mesh, 2 CABs per hub: CAB 0 at hub (0,0), CAB 17 at (2,2).
        let t = Topology::mesh2d(3, 3, 2, 16);
        assert_eq!(t.hub_count(), 9);
        assert_eq!(t.cab_count(), 18);
        // Corner to corner: 4 inter-hub links + 1 CAB port = 5 hub hops.
        assert_eq!(t.hop_count(0, 17).unwrap(), 5);
        // Same hub: 1 hop.
        assert_eq!(t.hop_count(0, 1).unwrap(), 1);
        // Adjacent hubs: 2 hops.
        assert_eq!(t.hop_count(0, 2).unwrap(), 2);
    }

    #[test]
    fn mesh_is_fully_connected() {
        let t = Topology::mesh2d(2, 3, 2, 16);
        for a in 0..t.cab_count() {
            for b in 0..t.cab_count() {
                if a != b {
                    assert!(t.route(a, b).is_ok(), "no route {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn ring_routes_take_the_short_way_round() {
        let t = Topology::ring(6, 2, 16);
        assert_eq!(t.hub_count(), 6);
        assert_eq!(t.cab_count(), 12);
        // Same hub: 1; adjacent: 2; opposite side of a 6-ring: 4 (BFS
        // finds the 3-link shortest path either way).
        assert_eq!(t.hop_count(0, 1).unwrap(), 1);
        assert_eq!(t.hop_count(0, 2).unwrap(), 2);
        assert_eq!(t.hop_count(0, 6).unwrap(), 4);
        // Going 5 clusters forward is 1 cluster backward.
        assert_eq!(t.hop_count(0, 10).unwrap(), 2);
    }

    #[test]
    fn fat_star_routes_through_the_root() {
        let t = Topology::fat_star(4, 4, 16);
        assert_eq!(t.hub_count(), 5);
        assert_eq!(t.cab_count(), 16);
        // Same leaf: 1 hub hop. Cross-leaf: leaf -> root -> leaf = 3.
        assert_eq!(t.hop_count(0, 1).unwrap(), 1);
        assert_eq!(t.hop_count(0, 4).unwrap(), 3);
        assert_eq!(t.hop_count(0, 15).unwrap(), 3);
        // The root carries no CABs.
        assert_eq!(t.cab_attachment(0).0, 1);
    }

    #[test]
    #[should_panic]
    fn two_hub_ring_rejected() {
        let _ = Topology::ring(2, 2, 16);
    }

    #[test]
    fn port_conflicts_rejected() {
        let mut b = TopologyBuilder::new(1, 16);
        b.add_cab(0, PortId::new(3)).unwrap();
        assert_eq!(
            b.add_cab(0, PortId::new(3)),
            Err(TopologyError::PortInUse { hub: 0, port: PortId::new(3) })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = TopologyBuilder::new(1, 8);
        assert!(matches!(b.add_cab(0, PortId::new(8)), Err(TopologyError::PortOutOfRange { .. })));
        assert!(matches!(b.add_cab(1, PortId::new(0)), Err(TopologyError::NoSuchHub { hub: 1 })));
    }

    #[test]
    fn failed_hub_link_rolls_back() {
        let mut b = TopologyBuilder::new(2, 4);
        b.add_cab(1, PortId::new(3)).unwrap();
        // Second endpoint is taken: the first claim must roll back.
        assert!(b.link_hubs(0, PortId::new(3), 1, PortId::new(3)).is_err());
        // Port 0:3 is free again.
        assert!(b.add_cab(0, PortId::new(3)).is_ok());
    }

    #[test]
    fn unreachable_is_an_error() {
        let mut b = TopologyBuilder::new(2, 4);
        let c0 = b.add_cab(0, PortId::new(0)).unwrap();
        let c1 = b.add_cab(1, PortId::new(0)).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.route(c0, c1), Err(TopologyError::Unreachable { from: 0, to: 1 }));
    }

    #[test]
    fn multicast_union_shares_common_prefix() {
        // One hub, three CABs: multicast 0 -> {1, 2}.
        let t = Topology::single_hub(3, 16);
        let mc = t.multicast_route(0, &[1, 2]).unwrap();
        assert_eq!(mc.expected_replies(), 2);
        let items = mc.circuit_open_items();
        assert_eq!(items.len(), 2, "two opens on the same hub");
    }

    #[test]
    fn multicast_across_mesh_orders_parent_first() {
        let t = Topology::mesh2d(1, 3, 2, 16);
        // CAB 0 on hub 0 -> CABs on hub 1 and hub 2 (a chain).
        let mc = t.multicast_route(0, &[2, 4]).unwrap();
        let items = mc.circuit_open_items();
        // Path to hub1's cab: open hub0->east, open hub1->cab.
        // Path to hub2's cab adds: open hub1->east, open hub2->cab.
        assert_eq!(items.len(), 4);
        assert_eq!(mc.expected_replies(), 2);
    }

    #[test]
    fn fig7_four_hub_example_is_constructible() {
        // Fig. 7: four HUBs; we wire the paths used in §4.2.1/4.2.2.
        let mut b = TopologyBuilder::new(4, 16);
        let _cab1 = b.add_cab(0, PortId::new(1)).unwrap(); // CAB1 on HUB1
        let _cab2 = b.add_cab(0, PortId::new(2)).unwrap(); // CAB2 on HUB1
        let cab3 = b.add_cab(1, PortId::new(4)).unwrap(); // CAB3 on HUB2
        let _cab4 = b.add_cab(3, PortId::new(5)).unwrap(); // CAB4 on HUB4
        let _cab5 = b.add_cab(2, PortId::new(6)).unwrap(); // CAB5 on HUB3
        b.link_hubs(1, PortId::new(8), 0, PortId::new(3)).unwrap(); // HUB2 <-> HUB1
        b.link_hubs(0, PortId::new(6), 3, PortId::new(7)).unwrap(); // HUB1 <-> HUB4
        b.link_hubs(3, PortId::new(3), 2, PortId::new(9)).unwrap(); // HUB4 <-> HUB3
        let t = b.build().unwrap();
        // CAB3 -> CAB1 goes HUB2 then HUB1, as in the paper.
        let r = t.route(cab3, 0).unwrap();
        assert_eq!(r.hops()[0].hub, HubId::new(1));
        assert_eq!(r.hops()[0].out, PortId::new(8));
        assert_eq!(r.hops()[1].hub, HubId::new(0));
        assert_eq!(r.hops()[1].out, PortId::new(1));
    }
}
