//! # nectar-core — the assembled Nectar system
//!
//! Integration of every substrate into the runnable backplane the
//! paper describes (§3): topologies of HUBs and CABs, the world
//! simulation that moves items through them with the published timing
//! model, the node cost model, measurement probes, and the Nectarine
//! application interface with its iPSC compatibility layer.
//!
//! * [`topology`] — Fig. 2 single-HUB stars, Fig. 4 meshes, arbitrary
//!   wirings, routing, multicast trees.
//! * [`world`] — the discrete-event world: HUB state machines, CAB
//!   protocol engines, datalink policy, flow control, delivery records.
//! * [`invariants`] — the transport-invariant checker: exactly-once
//!   in-order delivery, at-most-once RPC execution, buffer-pool
//!   conservation, counter coherence — audited at quiescence under
//!   any chaos schedule.
//! * [`node`] — the 1989 UNIX node cost model and the three CAB–node
//!   interfaces of §6.2.3.
//! * [`system`] — [`NectarSystem`](system::NectarSystem):
//!   constructors plus the latency/throughput probes used by every
//!   experiment.
//! * [`nectarine`] — the task/message programming API of §6.3.
//! * [`mapping`] — the §6.3 future work: automatic task-to-CAB
//!   placement over a concrete topology.
//! * [`ipsc`] — the Intel iPSC library of §7 on top of it.
//!
//! # Examples
//!
//! The paper's headline goal — CAB-to-CAB process latency under 30 µs:
//!
//! ```
//! use nectar_core::{NectarSystem, SystemConfig};
//!
//! let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
//! let report = sys.measure_cab_to_cab(0, 1, 64);
//! assert!(report.latency.as_micros_f64() < 30.0, "goal of §2.3: {}", report.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod ipsc;
pub mod mapping;
pub mod nectarine;
pub mod node;
pub mod shard;
pub mod system;
pub mod topology;
pub mod world;

pub use system::{LatencyReport, NectarSystem, ThroughputReport};
pub use world::SystemConfig;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::invariants::{replay_line, Auditable, InvariantChecker, Violation};
    pub use crate::ipsc::Ipsc;
    pub use crate::mapping::{
        map_annealed, map_greedy, map_round_robin, predicted_cost, Placement, TaskGraph,
    };
    pub use crate::nectarine::{Nectarine, TaskId};
    pub use crate::node::{NodeConfig, NodeInterface, NodeKind};
    pub use crate::shard::{
        canonical_delivery_sort, canonical_telemetry_sort, RebalancePolicy, ShardPlan, ShardedWorld,
    };
    pub use crate::system::{LatencyReport, NectarSystem, ThroughputReport};
    pub use crate::topology::{Peer, Topology, TopologyBuilder, TopologyError};
    pub use crate::world::{
        AppSend, CabCounters, Delivery, Ev, SwitchingMode, SystemConfig, TimerSource, World,
    };
}
