//! Automatic task-to-CAB mapping (§6.3 future work, implemented).
//!
//! "Work has started on higher-level programming tools for Nectar. We
//! are developing a high-level language that will be mapped onto a
//! specific Nectar configuration by a compiler. Automating the mapping
//! process will not only simplify the programming task, but will also
//! make programs portable across multiple Nectar configurations"
//! (§6.3) — and §6.3 warns that "the allocation of tasks and data to
//! processors and memories has a serious impact on performance".
//!
//! This module is that mapper: applications describe their tasks and
//! communication flows as a [`TaskGraph`]; [`map_greedy`] and
//! [`map_annealed`] place tasks onto the CABs of a concrete
//! [`Topology`] to minimise predicted communication cost (hop-weighted
//! traffic; co-resident tasks communicate through shared CAB memory at
//! zero network cost). The E24 experiment validates the prediction
//! against measured traffic.

use crate::topology::Topology;
use core::fmt;
use nectar_sim::rng::Rng;

/// A task-communication graph: nodes are application tasks, weighted
/// edges are expected traffic (bytes, messages — any consistent unit).
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    names: Vec<String>,
    edges: Vec<(usize, usize, u64)>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Adds a task; returns its index.
    pub fn add_task(&mut self, name: impl Into<String>) -> usize {
        self.names.push(name.into());
        self.names.len() - 1
    }

    /// Declares expected traffic between two tasks.
    ///
    /// # Panics
    ///
    /// Panics on unknown task indices or a self-edge.
    pub fn add_flow(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.names.len() && b < self.names.len(), "unknown task");
        assert_ne!(a, b, "a task does not message itself");
        self.edges.push((a, b, weight));
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// A task's name.
    pub fn name(&self, task: usize) -> &str {
        &self.names[task]
    }

    /// The declared flows.
    pub fn flows(&self) -> &[(usize, usize, u64)] {
        &self.edges
    }

    /// Total traffic adjacent to each task (for placement ordering).
    fn degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.names.len()];
        for &(a, b, w) in &self.edges {
            deg[a] += w;
            deg[b] += w;
        }
        deg
    }
}

/// An assignment of every task to a CAB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// `cab_of[task]` = CAB index.
    pub cab_of: Vec<usize>,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, c) in self.cab_of.iter().enumerate() {
            if t > 0 {
                f.write_str(", ")?;
            }
            write!(f, "t{t}@CAB{c}")?;
        }
        Ok(())
    }
}

/// Predicted communication cost of a placement: per flow, weight ×
/// HUB-hops between the two CABs (zero when co-resident — shared CAB
/// memory, §6.2.3).
///
/// # Panics
///
/// Panics if any pair of used CABs is unreachable.
pub fn predicted_cost(graph: &TaskGraph, topo: &Topology, placement: &Placement) -> u64 {
    graph
        .flows()
        .iter()
        .map(|&(a, b, w)| {
            let (ca, cb) = (placement.cab_of[a], placement.cab_of[b]);
            if ca == cb {
                0
            } else {
                w * topo.hop_count(ca, cb).expect("placement uses reachable CABs") as u64
            }
        })
        .sum()
}

/// The baseline: tasks dealt round-robin across CABs, capacity
/// permitting.
pub fn map_round_robin(graph: &TaskGraph, topo: &Topology) -> Placement {
    let n = topo.cab_count();
    Placement { cab_of: (0..graph.len()).map(|t| t % n).collect() }
}

/// Greedy placement: tasks in decreasing traffic order, each placed on
/// the CAB (with capacity left) that minimises the cost of its already-
/// placed flows.
///
/// # Panics
///
/// Panics if `capacity_per_cab * cab_count < tasks`.
pub fn map_greedy(graph: &TaskGraph, topo: &Topology, capacity_per_cab: usize) -> Placement {
    let cabs = topo.cab_count();
    assert!(capacity_per_cab * cabs >= graph.len(), "not enough CAB capacity");
    // Max-adjacency (Prim-style) ordering: after seeding with the
    // heaviest task, always place next the unplaced task most strongly
    // connected to the already-placed set, so communication clusters
    // grow together instead of being split by a myopic degree order.
    let deg = graph.degrees();
    let n = graph.len();
    let mut order = Vec::with_capacity(n);
    let mut attached = vec![0u64; n];
    let mut placed_mark = vec![false; n];
    for _ in 0..n {
        let next = (0..n)
            .filter(|&t| !placed_mark[t])
            .max_by_key(|&t| (attached[t], deg[t]))
            .expect("tasks remain");
        placed_mark[next] = true;
        order.push(next);
        for &(a, b, w) in graph.flows() {
            let other = if a == next {
                b
            } else if b == next {
                a
            } else {
                continue;
            };
            if !placed_mark[other] {
                attached[other] += w;
            }
        }
    }
    let mut cab_of = vec![usize::MAX; graph.len()];
    let mut load = vec![0usize; cabs];
    for &task in &order {
        let mut best = (u64::MAX, usize::MAX);
        for cab in 0..cabs {
            if load[cab] >= capacity_per_cab {
                continue;
            }
            // Incremental cost of placing `task` here.
            let mut cost = 0u64;
            for &(a, b, w) in graph.flows() {
                let other = if a == task {
                    b
                } else if b == task {
                    a
                } else {
                    continue;
                };
                if cab_of[other] == usize::MAX {
                    continue;
                }
                if cab_of[other] != cab {
                    cost += w * topo.hop_count(cab, cab_of[other]).expect("reachable") as u64;
                }
            }
            if cost < best.0
                || (cost == best.0 && load[cab] < load.get(best.1).copied().unwrap_or(usize::MAX))
            {
                best = (cost, cab);
            }
        }
        cab_of[task] = best.1;
        load[best.1] += 1;
    }
    Placement { cab_of }
}

/// Simulated-annealing refinement of a placement (pairwise swaps and
/// single-task moves under the capacity constraint).
pub fn map_annealed(
    graph: &TaskGraph,
    topo: &Topology,
    capacity_per_cab: usize,
    iterations: usize,
    seed: u64,
) -> Placement {
    let mut placement = map_greedy(graph, topo, capacity_per_cab);
    if graph.len() < 2 {
        return placement;
    }
    let cabs = topo.cab_count();
    let mut rng = Rng::seed_from(seed);
    let mut cost = predicted_cost(graph, topo, &placement) as f64;
    let mut best = (placement.clone(), cost);
    let mut temperature = (cost / graph.len().max(1) as f64).max(1.0);
    let mut load = vec![0usize; cabs];
    for &c in &placement.cab_of {
        load[c] += 1;
    }
    for _ in 0..iterations {
        let t1 = rng.range(0..=(graph.len() as u64 - 1)) as usize;
        let old_cab = placement.cab_of[t1];
        // Either swap with another task or move to a random CAB.
        let (t2, new_cab) = if rng.chance(0.5) {
            let t2 = rng.range(0..=(graph.len() as u64 - 1)) as usize;
            (Some(t2), placement.cab_of[t2])
        } else {
            (None, rng.range(0..=(cabs as u64 - 1)) as usize)
        };
        if new_cab == old_cab {
            continue;
        }
        if t2.is_none() && load[new_cab] >= capacity_per_cab {
            continue;
        }
        // Apply tentatively.
        placement.cab_of[t1] = new_cab;
        if let Some(t2) = t2 {
            placement.cab_of[t2] = old_cab;
        }
        let next = predicted_cost(graph, topo, &placement) as f64;
        let accept = next <= cost || rng.chance((-(next - cost) / temperature).exp());
        if accept {
            if t2.is_none() {
                load[old_cab] -= 1;
                load[new_cab] += 1;
            }
            cost = next;
            if cost < best.1 {
                best = (placement.clone(), cost);
            }
        } else {
            // Revert.
            placement.cab_of[t1] = old_cab;
            if let Some(t2) = t2 {
                placement.cab_of[t2] = new_cab;
            }
        }
        temperature *= 0.995;
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two four-task cliques with heavy internal traffic and one light
    /// cross edge — the classic placement test.
    fn two_cliques() -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"));
        }
        for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_flow(group[i], group[j], 100);
                }
            }
        }
        g.add_flow(0, 4, 1); // light cross-clique edge
        g
    }

    #[test]
    fn greedy_colocates_cliques() {
        // Two hubs, one CAB each, capacity 4: each clique should land
        // whole on one CAB (intra-clique cost 0).
        let mut b = crate::topology::TopologyBuilder::new(2, 16);
        let c0 = b.add_cab(0, nectar_hub::id::PortId::new(0)).unwrap();
        let c1 = b.add_cab(1, nectar_hub::id::PortId::new(0)).unwrap();
        b.link_hubs(0, nectar_hub::id::PortId::new(15), 1, nectar_hub::id::PortId::new(15))
            .unwrap();
        let topo = b.build().unwrap();
        let g = two_cliques();
        let placement = map_greedy(&g, &topo, 4);
        let cost = predicted_cost(&g, &topo, &placement);
        // Only the cross edge can cost: 1 x 2 hops.
        assert_eq!(cost, 2, "placement: {placement} (cab {c0}/{c1})");
    }

    #[test]
    fn greedy_beats_round_robin() {
        let topo = Topology::mesh2d(1, 2, 4, 16);
        let g = two_cliques();
        let rr = predicted_cost(&g, &topo, &map_round_robin(&g, &topo));
        let greedy = predicted_cost(&g, &topo, &map_greedy(&g, &topo, 4));
        assert!(greedy < rr / 4, "greedy {greedy} vs round-robin {rr}");
    }

    #[test]
    fn annealing_never_worsens_greedy() {
        let topo = Topology::mesh2d(2, 2, 3, 16);
        let g = two_cliques();
        let greedy = predicted_cost(&g, &topo, &map_greedy(&g, &topo, 3));
        let annealed = predicted_cost(&g, &topo, &map_annealed(&g, &topo, 3, 3000, 9));
        assert!(annealed <= greedy, "annealed {annealed} vs greedy {greedy}");
    }

    #[test]
    fn capacity_is_respected() {
        let topo = Topology::single_hub(4, 16);
        let g = two_cliques();
        for placement in [map_greedy(&g, &topo, 2), map_annealed(&g, &topo, 2, 2000, 3)] {
            let mut load = vec![0usize; 4];
            for &c in &placement.cab_of {
                load[c] += 1;
            }
            assert!(load.iter().all(|&l| l <= 2), "overloaded: {load:?}");
        }
    }

    #[test]
    #[should_panic]
    fn insufficient_capacity_panics() {
        let topo = Topology::single_hub(2, 16);
        let g = two_cliques();
        let _ = map_greedy(&g, &topo, 3); // 6 slots < 8 tasks
    }

    #[test]
    fn co_resident_flows_are_free() {
        let topo = Topology::single_hub(2, 16);
        let mut g = TaskGraph::new();
        let a = g.add_task("a");
        let b = g.add_task("b");
        g.add_flow(a, b, 1000);
        let together = Placement { cab_of: vec![0, 0] };
        let apart = Placement { cab_of: vec![0, 1] };
        assert_eq!(predicted_cost(&g, &topo, &together), 0);
        assert_eq!(predicted_cost(&g, &topo, &apart), 1000);
    }

    #[test]
    fn empty_and_single_task_graphs_are_fine() {
        let topo = Topology::single_hub(2, 16);
        let empty = TaskGraph::new();
        assert!(empty.is_empty());
        assert_eq!(predicted_cost(&empty, &topo, &map_round_robin(&empty, &topo)), 0);
        let mut one = TaskGraph::new();
        one.add_task("solo");
        let p = map_annealed(&one, &topo, 1, 100, 1);
        assert_eq!(p.cab_of.len(), 1);
    }
}
