//! The world: every HUB, CAB, fiber, and protocol endpoint wired to
//! one discrete-event engine.
//!
//! [`World`] is the executable form of a [`Topology`]: it owns the HUB
//! state machines, a [`CabState`] per CAB (hardware resources, kernel
//! scheduler, transport endpoints, datalink state), and the event
//! queue. Workloads inject sends; the world routes items through HUBs
//! with the paper's timing model, charges CAB CPU costs, and records
//! every delivery, completion, and error for the experiment harness.

use crate::shard::{ShardCtx, ShardPlan};
use crate::topology::{Peer, Topology};
use nectar_cab::board::{Cab, CabId};
use nectar_cab::dma::Channel;
use nectar_cab::timings::CabTimings;
use nectar_hub::config::HubConfig;
use nectar_hub::effects::{Effects, InternalEv};
use nectar_hub::hub::Hub;
use nectar_hub::id::{HubId, PortId};
use nectar_hub::item::{Item, Packet};
use nectar_hub::pool::{BufPool, PoolStats};
use nectar_kernel::mailbox::Mailbox;
use nectar_kernel::thread::{Scheduler, ThreadId};
use nectar_proto::datalink::Route;
use nectar_proto::header::{Header, MAX_FRAGMENT_PAYLOAD};
use nectar_proto::transport::bytestream::{ByteStream, ByteStreamConfig};
use nectar_proto::transport::datagram::Datagram;
use nectar_proto::transport::reqresp::{ReqRespClient, ReqRespConfig, ReqRespServer};
use nectar_proto::transport::{Action, TimerToken, TransportError};
use nectar_sim::analysis::streaming::{StreamConfig, StreamingDoctor};
use nectar_sim::chaos::{ChaosInjector, ChaosSchedule, ChaosStats, Clause, Fault};
use nectar_sim::engine::{Engine, EventId};
use nectar_sim::metrics::{Histogram, MetricsRegistry};
use nectar_sim::telemetry::{EventKind, FlightId, Telemetry, TelemetryEvent};
use nectar_sim::time::{Dur, Time};
use nectar_sim::workload::{
    Shape, SizeDist, Transport as FlowTransport, WorkloadGen, WorkloadSpec,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// How the datalink moves data packets (DESIGN.md §5 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchingMode {
    /// §4.2.3: per-packet `test open` commands, data, `close all`.
    /// Flow-controlled by the HUB ready bits; the default.
    PacketSwitched,
    /// §4.2.1 with a one-entry connection cache: open a circuit to the
    /// current destination and keep it; packets to the same CAB flow
    /// with no commands at all. (A CAB has one input port at its HUB,
    /// so at most one circuit can be open at a time — a second one
    /// would multicast.)
    CircuitCached,
}

/// Configuration of a whole Nectar system.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// HUB hardware parameters.
    pub hub: HubConfig,
    /// CAB cost model.
    pub cab: CabTimings,
    /// Byte-stream transport tuning.
    pub stream: ByteStreamConfig,
    /// Request-response transport tuning.
    pub rpc: ReqRespConfig,
    /// Node OS cost model (used by the node-level probes).
    pub node: crate::node::NodeConfig,
    /// Fiber propagation delay per link. The paper quotes latencies
    /// "excluding the transmission delays of the optical fibers", so
    /// the default is zero.
    pub propagation: Dur,
    /// Datalink switching policy.
    pub switching: SwitchingMode,
    /// Capacity of each auto-created mailbox, bytes.
    pub mailbox_capacity: usize,
    /// Datalink recovery: if the HUB's ready signal does not return
    /// within this time (e.g. the packet's test-open command was lost),
    /// the CAB re-arms its transmit path and lets the transport
    /// retransmit (§6.2.1 "recovers from ... lost HUB commands").
    pub ready_timeout: Dur,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            hub: HubConfig::prototype(),
            cab: CabTimings::prototype(),
            stream: ByteStreamConfig::default(),
            rpc: ReqRespConfig::default(),
            node: crate::node::NodeConfig::sun_workstation(),
            propagation: Dur::ZERO,
            switching: SwitchingMode::PacketSwitched,
            mailbox_capacity: 256 * 1024,
            ready_timeout: Dur::from_millis(1),
        }
    }
}

/// Why [`World::run_to_quiescence`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiescenceOutcome {
    /// The event queue drained; the clock reads the settling time.
    Quiescent,
    /// Events were still pending past the deadline.
    DeadlineReached,
}

/// Which protocol armed a timer (to route the expiry back).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerSource {
    /// The byte-stream to this peer CAB.
    Stream(usize),
    /// The request-response client.
    Rpc,
}

/// A world event.
#[derive(Clone, Debug)]
pub enum Ev {
    /// An item's head reaches a HUB port.
    HubItem {
        /// HUB index.
        hub: usize,
        /// Arrival port.
        port: PortId,
        /// The item.
        item: Item,
    },
    /// A flow-control ready signal reaches a HUB port.
    HubReady {
        /// HUB index.
        hub: usize,
        /// The port whose ready bit is set.
        port: PortId,
    },
    /// A deferred HUB-internal transition comes due.
    HubInternal {
        /// HUB index.
        hub: usize,
        /// The transition.
        ev: InternalEv,
    },
    /// An item's head reaches a CAB's fiber input.
    CabItem {
        /// CAB index.
        cab: usize,
        /// The item.
        item: Item,
    },
    /// A chaos-injected re-arrival (a duplicated or reorder-delayed
    /// packet). Processed exactly like [`Ev::CabItem`] but bypasses the
    /// injector, so chaos cannot cascade on its own products.
    CabItemReplay {
        /// CAB index.
        cab: usize,
        /// The item.
        item: Item,
    },
    /// A flow-control ready signal reaches a CAB.
    CabReadySignal {
        /// CAB index.
        cab: usize,
    },
    /// A received packet has fully DMA'd into CAB memory.
    CabPacketReady {
        /// CAB index.
        cab: usize,
        /// The packet's wire bytes (header + payload), shared with the
        /// in-flight packet — no copy on receive, and the buffer is
        /// reclaimed into the world's [`BufPool`] after processing.
        payload: Arc<Vec<u8>>,
        /// The packet's flight id (for the flight recorder).
        flight: u64,
    },
    /// A protocol timer expires on a CAB.
    CabTimer {
        /// CAB index.
        cab: usize,
        /// Which protocol armed it.
        source: TimerSource,
        /// The protocol's token.
        token: TimerToken,
    },
    /// The CAB's datalink ready-timeout fires (lost-command recovery).
    CabReadyTimeout {
        /// CAB index.
        cab: usize,
        /// Generation guard (stale timeouts are ignored).
        gen: u64,
    },
    /// A scheduled application send fires.
    AppSend {
        /// Sending CAB index.
        cab: usize,
        /// What to send.
        send: AppSend,
    },
    /// An open-loop workload arrival fires on a CAB: emit one flow and
    /// schedule the next arrival from the class's per-CAB stream.
    WorkloadTick {
        /// Source CAB index.
        cab: usize,
        /// Workload class index.
        class: usize,
    },
    /// A closed-loop workload token launches its next flow from `cab`
    /// (the initial population at the class window start, and every
    /// re-arm after a delivery plus think time).
    WorkloadLaunch {
        /// Source CAB index.
        cab: usize,
        /// Workload class index.
        class: usize,
    },
    /// The workload auto-responder on `cab` answers a pending RPC.
    WorkloadReply {
        /// Serving CAB index.
        cab: usize,
        /// Workload class index.
        class: usize,
        /// Calling CAB index.
        client: usize,
        /// RPC transaction id.
        tx: u32,
    },
}

/// An application-level send request.
#[derive(Clone, Debug)]
pub enum AppSend {
    /// Reliable byte-stream message.
    Stream {
        /// Destination CAB.
        dst: usize,
        /// Sending mailbox.
        src_mailbox: u16,
        /// Destination mailbox.
        dst_mailbox: u16,
        /// Payload.
        data: Arc<[u8]>,
    },
    /// Unreliable datagram.
    Datagram {
        /// Destination CAB.
        dst: usize,
        /// Sending mailbox.
        src_mailbox: u16,
        /// Destination mailbox.
        dst_mailbox: u16,
        /// Payload.
        data: Arc<[u8]>,
    },
    /// Request-response call.
    Rpc {
        /// Destination CAB.
        dst: usize,
        /// Local mailbox for the response.
        reply_mailbox: u16,
        /// Remote service mailbox.
        service_mailbox: u16,
        /// Request payload.
        data: Arc<[u8]>,
    },
    /// Hardware multicast datagram (§4.2.2/4.2.4).
    Multicast {
        /// Destination CABs.
        dsts: Vec<usize>,
        /// Sending mailbox.
        src_mailbox: u16,
        /// Destination mailbox on every receiver.
        dst_mailbox: u16,
        /// Payload.
        data: Arc<[u8]>,
    },
}

/// One recorded message delivery (receiver side, after the application
/// thread has been handed the message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving CAB.
    pub cab: usize,
    /// Receiving mailbox.
    pub mailbox: u16,
    /// Message id (per sender protocol instance).
    pub msg_id: u64,
    /// Payload length.
    pub len: usize,
    /// When the application thread had the message.
    pub at: Time,
}

/// Per-CAB event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CabCounters {
    /// Data packets handed to the fiber.
    pub packets_tx: u64,
    /// Data packets received (pre-decode).
    pub packets_rx: u64,
    /// Received packets dropped for checksum/format errors.
    pub corrupted_rx: u64,
    /// Received packets addressed to a different CAB (a stale
    /// crossbar circuit duplicated them here) and discarded.
    pub misrouted_rx: u64,
    /// Input-queue overruns (upcall missed its §6.2.1 deadline).
    pub overruns: u64,
    /// Stray items (commands/close-alls reaching the CAB).
    pub strays: u64,
    /// Circuit opens issued (CircuitCached mode).
    pub circuit_opens: u64,
    /// Mailbox appends refused for lack of space.
    pub mailbox_rejects: u64,
    /// Datalink ready-timeouts (lost-command recoveries).
    pub ready_timeouts: u64,
    /// Fletcher-16 checksum passes (one per packet encode or decode).
    pub checksum_ops: u64,
}

struct CabState {
    hw: Cab,
    sched: Scheduler,
    app_thread: ThreadId,
    fiber_ready: bool,
    /// Generation counter guarding ready-timeout staleness.
    ready_gen: u64,
    fiber_free: Time,
    /// Cumulative time this CAB's outgoing fiber has been busy.
    fiber_tx_busy: Dur,
    tx_bursts: VecDeque<Vec<Item>>,
    streams: HashMap<usize, ByteStream>,
    datagram: Datagram,
    rpc_client: ReqRespClient,
    rpc_server: ReqRespServer,
    /// CircuitCached mode: the currently open circuit, if any.
    open_circuit: Option<(usize, Route)>,
    mailboxes: HashMap<u16, Mailbox>,
    timers: HashMap<(TimerSource, u64), EventId>,
    next_packet_id: u64,
    counters: CabCounters,
    /// Free-list of wire buffers this CAB encodes sends into;
    /// receive processing reclaims consumed buffers here. Per-CAB
    /// (rather than world-global) so the hit/miss sequence is a
    /// function of this CAB's own event timeline alone — a sharded
    /// run then reproduces it bit-for-bit.
    pool: BufPool,
}

/// First mailbox id the workload generator reserves for itself. Class
/// `c` delivers data (and RPC requests) to `BASE + 2c` and RPC replies
/// to `BASE + 2c + 1`; the delivery hook consumes workload mailboxes
/// immediately, so they never accumulate memory.
const WORKLOAD_MAILBOX_BASE: u16 = 0x7000;

/// Per-CAB workload accounting. Lives in the world (not `CabState`)
/// and never migrates: each counter is only ever incremented by the
/// CAB's owning shard, so summing across shard registries — the same
/// merge every `cab{c}.*` counter uses — yields the global value.
#[derive(Clone, Copy, Debug, Default)]
struct WorkloadCounters {
    /// Flows launched (open-loop arrivals + closed-loop launches).
    flows: u64,
    /// Payload bytes offered across those flows.
    bytes: u64,
    /// Closed-loop tokens re-armed by a delivery.
    rearms: u64,
    /// RPC requests auto-answered by the serving CAB.
    replies: u64,
}

/// An attached traffic generator: the compiled spec plus accounting.
struct WorkloadState {
    generator: WorkloadGen,
    counters: Vec<WorkloadCounters>,
    /// Reusable payload buffer: flows carry zeroed payloads, so one
    /// grow-only scratch removes the per-flow allocation.
    scratch: Vec<u8>,
}

/// The assembled, runnable Nectar system.
pub struct World {
    cfg: SystemConfig,
    topo: Topology,
    engine: Engine<Ev>,
    hubs: Vec<Hub>,
    cabs: Vec<CabState>,
    /// Every message delivery, in order.
    pub deliveries: Vec<Delivery>,
    /// Sender-side completions: `(cab, msg_id, at)`.
    pub completions: Vec<(usize, u32, Time)>,
    /// Transport errors: `(cab, error, at)`.
    pub errors: Vec<(usize, TransportError, Time)>,
    /// Replies received by CABs (circuit acks, status answers).
    replies: Vec<(usize, nectar_hub::command::Reply, Time)>,
    /// The compiled chaos schedule, consulted on every CAB packet
    /// arrival and every HUB item arrival. `None` = a clean network.
    chaos: Option<ChaosInjector>,
    /// The attached workload generator (`None` = externally driven).
    workload: Option<Box<WorkloadState>>,
    /// Packets destroyed by fault injection.
    pub faults_injected: u64,
    /// Buffers freed straight to the allocator by hub-side chaos drops.
    /// With per-CAB pools there is no natural pool to reclaim into at a
    /// HUB (the buffer came from some sender's pool), so the ledger
    /// counts these separately; see `InvariantChecker::check_pool`.
    chaos_freed: u64,
    /// Scratch for [`run_until`](World::run_until)'s batched drain;
    /// kept across calls so the steady state never allocates.
    batch: Vec<Ev>,
    /// World-level flight recorder: transport, DMA, app, and datalink
    /// events. Per-HUB and per-scheduler rings are separate; see
    /// [`telemetry_events`](World::telemetry_events) for the merge.
    telemetry: Telemetry,
    /// Master switch for flight tracking (latency accounting and the
    /// per-component telemetry rings). Off by default: the hot path
    /// pays one branch.
    observability: bool,
    /// Flight id -> time the packet was handed to the datalink.
    /// Entries are never removed; the latency histogram is a
    /// birth/end join at metrics time, so the accounting is
    /// insertion-order-independent (and therefore shardable).
    flight_births: HashMap<u64, Time>,
    /// Flight id -> earliest time any receiver's application had the
    /// packet (min over deliveries; multicast delivers one flight to
    /// many CABs).
    flight_ends: HashMap<u64, Time>,
    /// Per-source tie-break key counters: index `0..cab_count` is the
    /// CAB, `cab_count..cab_count + hub_count` the HUB. Same-instant
    /// events pop in key order — an order intrinsic to the components,
    /// not to scheduling history, so any partitioning of the event
    /// loop replays it exactly. See [`Engine::schedule_at_keyed`].
    keys: Vec<u64>,
    /// Sharded-execution context (`None` when this world runs alone).
    shard: Option<ShardCtx>,
    /// Attached streaming doctor (drain-per-step incremental analysis;
    /// see [`attach_streaming`](World::attach_streaming)).
    stream: Option<Box<StreamState>>,
    /// Engine events processed since the last streaming drain.
    stream_since: u64,
    /// Streaming drain cadence in engine events, sized so the rings
    /// cannot reach capacity between drains.
    stream_drain_every: u64,
    /// Spill buffer for sharded streaming: when set, [`run_window`]
    /// drains the rings into it on the same cadence the sequential
    /// loops use, so a same-instant event burst can never overflow a
    /// ring mid-window. The owning worker thread collects it at window
    /// boundaries; the main thread folds it at epoch boundaries.
    ///
    /// [`run_window`]: World::run_window
    spill: Option<Vec<TelemetryEvent>>,
}

/// Scratch and fold state for an attached [`StreamingDoctor`].
struct StreamState {
    doctor: StreamingDoctor,
    /// Drained events not yet final (stamped at or after the engine's
    /// next event time — record sites may stamp into the future).
    pending: Vec<TelemetryEvent>,
    /// Scratch batch handed to the doctor each fold.
    batch: Vec<TelemetryEvent>,
}

impl World {
    /// Builds a world over `topo`.
    pub fn new(topo: Topology, cfg: SystemConfig) -> World {
        World::build(topo, cfg, None)
    }

    /// Builds one shard of a partitioned world: a full-topology world
    /// that only ever processes events for the components
    /// [`ShardPlan`] assigns to shard `id`. Cross-shard HUB traffic
    /// goes to the outbox instead of the local engine; everything
    /// else (non-owned component state) stays pristine, which is what
    /// makes the per-shard metrics registries merge into exactly the
    /// sequential one.
    pub(crate) fn new_shard(
        topo: Topology,
        cfg: SystemConfig,
        plan: std::sync::Arc<ShardPlan>,
        id: usize,
    ) -> World {
        let outbox = (0..plan.shards()).map(|_| Vec::new()).collect();
        World::build(topo, cfg, Some(ShardCtx { plan, id, outbox }))
    }

    fn build(topo: Topology, cfg: SystemConfig, shard: Option<ShardCtx>) -> World {
        let hubs =
            (0..topo.hub_count()).map(|i| Hub::new(HubId::new(i as u8), cfg.hub.clone())).collect();
        let cabs = (0..topo.cab_count())
            .map(|i| {
                let mut sched = Scheduler::new(cfg.cab.clone());
                let app_thread = sched.spawn("application");
                let idle = sched.spawn("idle");
                // The CAB boots into its idle loop; the first dispatch of
                // any other thread pays a real switch.
                sched.assume_running(idle);
                CabState {
                    hw: Cab::new(CabId::new(i as u16), cfg.cab.clone()),
                    sched,
                    app_thread,
                    fiber_ready: true,
                    ready_gen: 0,
                    fiber_free: Time::ZERO,
                    fiber_tx_busy: Dur::ZERO,
                    tx_bursts: VecDeque::new(),
                    streams: HashMap::new(),
                    datagram: Datagram::new(CabId::new(i as u16)),
                    rpc_client: ReqRespClient::new(CabId::new(i as u16), cfg.rpc),
                    rpc_server: ReqRespServer::new(CabId::new(i as u16), cfg.rpc),
                    open_circuit: None,
                    mailboxes: HashMap::new(),
                    timers: HashMap::new(),
                    next_packet_id: (i as u64) << 40,
                    counters: CabCounters::default(),
                    pool: BufPool::default(),
                }
            })
            .collect();
        let keys = vec![0u64; topo.cab_count() + topo.hub_count()];
        World {
            cfg,
            topo,
            engine: Engine::new(),
            hubs,
            cabs,
            deliveries: Vec::new(),
            completions: Vec::new(),
            errors: Vec::new(),
            replies: Vec::new(),
            chaos: None,
            workload: None,
            faults_injected: 0,
            chaos_freed: 0,
            batch: Vec::new(),
            telemetry: Telemetry::default(),
            observability: false,
            flight_births: HashMap::new(),
            flight_ends: HashMap::new(),
            keys,
            shard,
            stream: None,
            stream_since: 0,
            stream_drain_every: u64::MAX,
            spill: None,
        }
    }

    /// The next tie-break key for an event caused by source component
    /// `src` (a `keys` index): globally unique, ascending per source.
    #[inline]
    fn next_key(&mut self, src: usize) -> u64 {
        let ctr = self.keys[src];
        self.keys[src] = ctr + 1;
        ((src as u64) << 40) | ctr
    }

    /// The key-source index of HUB `hub` (CABs occupy `0..cab_count`).
    #[inline]
    fn hub_src(&self, hub: usize) -> usize {
        self.cabs.len() + hub
    }

    /// Switches on the flight recorder: typed telemetry in every HUB,
    /// every CAB kernel scheduler, and the world itself, plus
    /// send-to-delivery flight latency accounting. The default-off
    /// state costs the hot path one predictable branch per event.
    pub fn enable_observability(&mut self) {
        self.observability = true;
        self.telemetry.set_enabled(true);
        for hub in &mut self.hubs {
            hub.telemetry_mut().set_enabled(true);
        }
        for (i, cs) in self.cabs.iter_mut().enumerate() {
            cs.sched.telemetry_mut().set_enabled(true);
            cs.sched.telemetry_mut().set_subject(i as u16);
        }
    }

    /// `true` once [`enable_observability`](World::enable_observability)
    /// has been called.
    pub fn observability_enabled(&self) -> bool {
        self.observability
    }

    /// Every recorded telemetry event — the world's transport/DMA/app
    /// events merged with each HUB's crossbar events and each kernel
    /// scheduler's thread switches — sorted by timestamp.
    pub fn telemetry_events(&self) -> Vec<TelemetryEvent> {
        let mut all: Vec<TelemetryEvent> = self.telemetry.events().copied().collect();
        for hub in &self.hubs {
            all.extend(hub.telemetry().events().copied());
        }
        for cs in &self.cabs {
            all.extend(cs.sched.telemetry().events().copied());
        }
        all.sort_by_key(|e| e.at);
        all
    }

    /// Moves every retained telemetry event (all component rings) onto
    /// `out`, leaving the rings empty. Order across rings is arbitrary;
    /// the streaming doctor canonically sorts each batch.
    pub(crate) fn drain_telemetry_into(&mut self, out: &mut Vec<TelemetryEvent>) {
        self.telemetry.drain_into(out);
        for hub in &mut self.hubs {
            hub.telemetry_mut().drain_into(out);
        }
        for cs in &mut self.cabs {
            cs.sched.telemetry_mut().drain_into(out);
        }
    }

    /// Smallest ring capacity across every component recorder — the
    /// bound the streaming drain cadence is derived from.
    pub(crate) fn min_telemetry_capacity(&self) -> usize {
        let mut cap = self.telemetry.capacity();
        for hub in &self.hubs {
            cap = cap.min(hub.telemetry().capacity());
        }
        for cs in &self.cabs {
            cap = cap.min(cs.sched.telemetry().capacity());
        }
        cap
    }

    /// Highest occupancy any component ring ever reached, and total
    /// events lost to ring overflow — the capture-pressure pair. The
    /// high-water mark depends on ring layout (per shard, per
    /// component) and on the streaming drain cadence, so it belongs in
    /// runtime reporting, not in the bit-compared metrics registry.
    pub fn telemetry_pressure(&self) -> (u64, u64) {
        let mut hwm = self.telemetry.high_water_mark() as u64;
        let mut dropped = self.telemetry.dropped();
        for hub in &self.hubs {
            hwm = hwm.max(hub.telemetry().high_water_mark() as u64);
            dropped += hub.telemetry().dropped();
        }
        for cs in &self.cabs {
            hwm = hwm.max(cs.sched.telemetry().high_water_mark() as u64);
            dropped += cs.sched.telemetry().dropped();
        }
        (hwm, dropped)
    }

    /// Resizes every component telemetry ring (world, HUBs, kernel
    /// schedulers). Smaller rings stress capture pressure; streaming
    /// keeps analysis exact anyway because it drains before they fill.
    pub fn set_telemetry_capacity(&mut self, capacity: usize) {
        self.telemetry.set_capacity(capacity);
        for hub in &mut self.hubs {
            hub.telemetry_mut().set_capacity(capacity);
        }
        for cs in &mut self.cabs {
            cs.sched.telemetry_mut().set_capacity(capacity);
        }
        if self.stream.is_some() || self.spill.is_some() {
            self.stream_drain_every = (self.min_telemetry_capacity() as u64 / 32).max(1);
        }
    }

    /// Arms the sharded-streaming spill path: ring drains on the
    /// in-window cadence, buffered locally for the shard runner to
    /// collect (see the `spill` field). Implies
    /// [`enable_observability`](World::enable_observability).
    pub(crate) fn enable_telemetry_spill(&mut self) {
        self.enable_observability();
        self.spill = Some(Vec::new());
        self.stream_since = 0;
        self.stream_drain_every = (self.min_telemetry_capacity() as u64 / 32).max(1);
    }

    /// Moves everything captured so far — the spill buffer and the
    /// rings — into `out`.
    pub(crate) fn take_spill(&mut self, out: &mut Vec<TelemetryEvent>) {
        if let Some(sp) = &mut self.spill {
            out.append(sp);
        }
        self.drain_telemetry_into(out);
    }

    /// Counts processed events toward the spill cadence and drains the
    /// rings into the local buffer when due. One branch when the spill
    /// path is not armed.
    #[inline]
    fn spill_tick(&mut self, processed: u64) {
        if self.spill.is_none() {
            return;
        }
        self.stream_since += processed;
        if self.stream_since >= self.stream_drain_every {
            self.stream_since = 0;
            let mut sp = self.spill.take().expect("spill checked above");
            self.drain_telemetry_into(&mut sp);
            self.spill = Some(sp);
        }
    }

    /// Attaches a [`StreamingDoctor`]: from now on the run loops drain
    /// the telemetry rings into the incremental fold often enough that
    /// they can never fill, so analysis stays exact (and confident) at
    /// ring capacities far below the event count. Implies
    /// [`enable_observability`](World::enable_observability).
    pub fn attach_streaming(&mut self, cfg: StreamConfig) {
        self.enable_observability();
        self.stream_since = 0;
        self.stream_drain_every = (self.min_telemetry_capacity() as u64 / 32).max(1);
        self.stream = Some(Box::new(StreamState {
            doctor: StreamingDoctor::new(cfg),
            pending: Vec::new(),
            batch: Vec::new(),
        }));
    }

    /// The attached streaming doctor, for live checkpoint polls.
    pub fn stream_doctor(&self) -> Option<&StreamingDoctor> {
        self.stream.as_ref().map(|st| &st.doctor)
    }

    /// Drains the rings and folds every **final** event — those
    /// stamped strictly before the engine's next event time; nothing
    /// that early can still be recorded, because every record site
    /// stamps at-or-after its processing instant. With `finish` the
    /// boundary is lifted and everything pending folds.
    fn stream_fold(&mut self, finish: bool) {
        let Some(mut st) = self.stream.take() else { return };
        self.drain_telemetry_into(&mut st.pending);
        match if finish { None } else { self.engine.peek_time() } {
            None => st.batch.append(&mut st.pending),
            Some(boundary) => {
                let mut i = 0;
                while i < st.pending.len() {
                    if st.pending[i].at < boundary {
                        st.batch.push(st.pending.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        st.doctor.ingest(&mut st.batch);
        self.stream = Some(st);
    }

    /// Counts processed events toward the drain cadence and folds when
    /// due. One branch when streaming is not attached.
    #[inline]
    fn stream_tick(&mut self, processed: u64) {
        if self.stream.is_none() {
            return;
        }
        self.stream_since += processed;
        if self.stream_since >= self.stream_drain_every {
            self.stream_since = 0;
            self.stream_fold(false);
        }
    }

    /// Detaches the streaming doctor after folding everything still
    /// pending (rings included), stamping the observed ring pressure
    /// into it. Returns `None` if streaming was never attached. Call at
    /// end of run, then build the report with
    /// [`StreamingDoctor::into_report`] over [`metrics`](World::metrics).
    pub fn finish_streaming(&mut self) -> Option<StreamingDoctor> {
        self.stream.as_ref()?;
        self.stream_fold(true);
        let mut st = self.stream.take()?;
        let (hwm, dropped) = self.telemetry_pressure();
        st.doctor.note_ring(hwm, dropped);
        Some(st.doctor)
    }

    /// Harvests every counter in the system into one registry: HUB
    /// crossbar counters, CAB datalink counters, DMA accounting, kernel
    /// scheduler statistics, mailbox high-water marks, fiber
    /// utilization, buffer-pool hit rates, and (when observability is
    /// on) the flight-latency histogram.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = self.metrics_without_flights();
        let mut flights = Histogram::new();
        join_flights(&self.flight_births, &self.flight_ends, &mut flights);
        if !flights.is_empty() {
            reg.merge_histogram("latency.flight_ns", &flights);
        }
        reg
    }

    /// The flight birth (send) and end (first delivery) time maps, for
    /// the cross-shard latency join: a flight born in one shard may
    /// end in another, so the sharded runner joins globally.
    pub(crate) fn flight_times(&self) -> (&HashMap<u64, Time>, &HashMap<u64, Time>) {
        (&self.flight_births, &self.flight_ends)
    }

    /// Everything [`metrics`](World::metrics) collects except the
    /// flight-latency join (which needs global birth/end maps under
    /// sharded execution).
    pub(crate) fn metrics_without_flights(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (h, hub) in self.hubs.iter().enumerate() {
            hub.counters().register_into(&mut reg, &format!("hub{h}."));
        }
        for (c, cs) in self.cabs.iter().enumerate() {
            let k = cs.counters;
            let fields: [(&str, u64); 10] = [
                ("packets_tx", k.packets_tx),
                ("packets_rx", k.packets_rx),
                ("corrupted_rx", k.corrupted_rx),
                ("misrouted_rx", k.misrouted_rx),
                ("overruns", k.overruns),
                ("strays", k.strays),
                ("circuit_opens", k.circuit_opens),
                ("mailbox_rejects", k.mailbox_rejects),
                ("ready_timeouts", k.ready_timeouts),
                ("checksum_ops", k.checksum_ops),
            ];
            for (name, v) in fields {
                reg.counter_add(&format!("cab{c}.{name}"), v);
            }
            cs.hw.dma.register_into(&mut reg, &format!("cab{c}.dma."));
            reg.counter_add(&format!("cab{c}.kernel.thread_switches"), cs.sched.switches());
            reg.counter_add(&format!("cab{c}.kernel.interrupts"), cs.sched.interrupts());
            reg.counter_add(
                &format!("cab{c}.kernel.thread_busy_ns"),
                cs.sched.thread_busy().nanos(),
            );
            reg.counter_add(
                &format!("cab{c}.kernel.interrupt_busy_ns"),
                cs.sched.interrupt_busy().nanos(),
            );
            let (tx, rtx, tmo, acc, mism) =
                cs.streams.values().fold((0, 0, 0, 0, 0), |(a, b, t, ac, m), s| {
                    let st = s.stats();
                    (
                        a + st.data_sent,
                        b + st.retransmissions,
                        t + st.timeouts,
                        ac + st.accepted,
                        m + st.reassembly_mismatches,
                    )
                });
            reg.counter_add(&format!("cab{c}.transport.data_sent"), tx);
            reg.counter_add(&format!("cab{c}.transport.retransmissions"), rtx);
            reg.counter_add(&format!("cab{c}.transport.timeouts"), tmo);
            reg.counter_add(&format!("cab{c}.transport.accepted"), acc);
            reg.counter_add(&format!("cab{c}.transport.reassembly_mismatches"), mism);
            for mb in cs.mailboxes.values() {
                reg.gauge_max("mailbox.capacity_bytes", mb.capacity() as f64);
            }
            let (peak_bytes, peak_depth) = cs
                .mailboxes
                .values()
                .fold((0usize, 0usize), |(b, d), mb| (b.max(mb.peak_used()), d.max(mb.peak_len())));
            reg.gauge_max(&format!("cab{c}.mailbox.peak_bytes"), peak_bytes as f64);
            reg.gauge_max(&format!("cab{c}.mailbox.peak_depth"), peak_depth as f64);
            reg.gauge_max(&format!("cab{c}.fiber.utilization"), self.fiber_utilization(c));
        }
        if let Some(wl) = &self.workload {
            for (c, k) in wl.counters.iter().enumerate() {
                reg.counter_add(&format!("cab{c}.workload.flows"), k.flows);
                reg.counter_add(&format!("cab{c}.workload.bytes"), k.bytes);
                reg.counter_add(&format!("cab{c}.workload.rearms"), k.rearms);
                reg.counter_add(&format!("cab{c}.workload.replies"), k.replies);
            }
        }
        if let Some(chaos) = self.chaos_stats() {
            reg.counter_add("chaos.drops", chaos.drops);
            reg.counter_add("chaos.burst_drops", chaos.burst_drops);
            reg.counter_add("chaos.flap_drops", chaos.flap_drops);
            reg.counter_add("chaos.duplicates", chaos.duplicates);
            reg.counter_add("chaos.reorders", chaos.reorders);
            reg.counter_add("chaos.corruptions", chaos.corruptions);
            reg.counter_add("chaos.cmd_drops", chaos.cmd_drops);
            reg.counter_add("chaos.port_drops", chaos.port_drops);
        }
        let pool = self.pool_stats();
        reg.counter_add("pool.hits", pool.hits);
        reg.counter_add("pool.misses", pool.misses);
        reg.counter_add("pool.reclaims", pool.reclaims);
        reg.counter_add("pool.dropped", pool.dropped);
        reg.counter_add("pool.chaos_freed", self.chaos_freed);
        // Ring overflow across every recorder: nonzero means the event
        // stream is truncated and doctor findings must not be trusted.
        // The companion high-water mark is per-ring and therefore
        // shard-variant, so it lives in the runtime registry (see
        // `ExpCtx::absorb`), never in this bit-compared one.
        let (_, dropped) = self.telemetry_pressure();
        reg.counter_add("telemetry.dropped_events", dropped);
        reg
    }

    /// Installs a chaos schedule, replacing any previous one (and any
    /// clauses the [`inject_faults`](World::inject_faults) /
    /// [`inject_command_loss`](World::inject_command_loss) wrappers
    /// added). The compiled injector is consulted on every CAB packet
    /// arrival and every HUB item arrival; same schedule + same
    /// workload = byte-identical fault sequence.
    pub fn set_chaos(&mut self, schedule: ChaosSchedule) {
        self.chaos = Some(schedule.compile());
    }

    /// The active chaos schedule, if any (for replay lines).
    pub fn chaos_schedule(&self) -> Option<&ChaosSchedule> {
        self.chaos.as_ref().map(|c| c.schedule())
    }

    /// Applied-fault counters from the chaos injector.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.stats())
    }

    /// Appends `clause` to the active chaos schedule (seeding a fresh
    /// schedule with `seed` if none is armed) and recompiles. Clause
    /// RNG streams derive from the schedule seed and clause position,
    /// so earlier clauses keep their draws.
    fn add_chaos_clause(&mut self, seed: u64, clause: Clause) {
        let schedule = match self.chaos.take() {
            Some(inj) => inj.schedule().clone().with(clause),
            None => ChaosSchedule::new(seed).with(clause),
        };
        self.chaos = Some(schedule.compile());
    }

    /// Arms fault injection: arriving packets are dropped with
    /// `drop_probability` or bit-flipped with `corrupt_probability`
    /// (checksum-detected at the receiver), deterministically from
    /// `seed`. The transport protocols must recover (E10).
    ///
    /// Thin wrapper over the chaos subsystem: appends i.i.d.
    /// [`Fault::Loss`] and [`Fault::Corrupt`] clauses. For anything
    /// richer (bursts, duplication, reordering, flaps), build a
    /// [`ChaosSchedule`] and call [`set_chaos`](World::set_chaos).
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn inject_faults(&mut self, drop_probability: f64, corrupt_probability: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&drop_probability), "probability in [0,1]");
        assert!((0.0..=1.0).contains(&corrupt_probability), "probability in [0,1]");
        self.add_chaos_clause(seed, Clause::new(Fault::Loss { rate: drop_probability }));
        self.add_chaos_clause(seed, Clause::new(Fault::Corrupt { rate: corrupt_probability }));
    }

    /// Arms HUB-command loss: each command item arriving at a HUB is
    /// silently discarded with `drop_probability`. The datalink's
    /// stuck-item and ready-timeout recovery paths must keep traffic
    /// flowing (§6.2.1).
    ///
    /// Thin wrapper over the chaos subsystem (a
    /// [`Fault::CommandLoss`] clause); see
    /// [`set_chaos`](World::set_chaos).
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn inject_command_loss(&mut self, drop_probability: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&drop_probability), "probability in [0,1]");
        self.add_chaos_clause(seed, Clause::new(Fault::CommandLoss { rate: drop_probability }));
    }

    // ---------------------------------------------------------------
    // Workload generator
    // ---------------------------------------------------------------

    /// `true` when this world processes CAB `cab`'s events (always,
    /// unless sharded and the plan assigns the cluster elsewhere).
    fn owns_cab(&self, cab: usize) -> bool {
        match &self.shard {
            None => true,
            Some(ctx) => ctx.plan.shard_of_cab(&self.topo, cab) == ctx.id,
        }
    }

    /// Attaches a workload program: compiles `spec` against this
    /// topology and seeds the initial events — open-loop classes get
    /// one arrival tick per (class, owned CAB) offset by a first
    /// inter-arrival draw; closed-loop classes launch their whole
    /// token population at the class window start. Replaces any
    /// previous workload. Single-packet transports (datagram, RPC)
    /// cap flows at [`MAX_FRAGMENT_PAYLOAD`]; specs whose explicit
    /// sizes exceed it are rejected rather than silently clamped.
    pub fn set_workload(&mut self, spec: &WorkloadSpec) -> Result<(), String> {
        let cab_count = self.topo.cab_count();
        let cluster_of: Vec<u16> =
            (0..cab_count).map(|c| self.topo.cab_attachment(c).0 as u16).collect();
        let generator = spec.compile(cluster_of)?;
        for c in 0..generator.class_count() {
            let class = generator.class(c);
            if matches!(class.transport, FlowTransport::Stream) {
                continue; // byte streams fragment; any grammar size fits
            }
            let explicit_max = match class.size {
                SizeDist::Fixed(b) => b,
                SizeDist::Uniform { hi, .. } => hi,
                SizeDist::Pareto { mean, .. } => mean, // tail draws clamp at send
            };
            if explicit_max as usize > MAX_FRAGMENT_PAYLOAD {
                return Err(format!(
                    "class {c}: {} flows are single-packet, max {MAX_FRAGMENT_PAYLOAD} bytes \
                     (got {explicit_max})",
                    class.transport
                ));
            }
        }
        self.workload = Some(Box::new(WorkloadState {
            generator,
            counters: vec![WorkloadCounters::default(); cab_count],
            scratch: Vec::new(),
        }));
        let wl = self.workload.as_ref().expect("just attached");
        let class_specs: Vec<nectar_sim::workload::ClassSpec> =
            (0..wl.generator.class_count()).map(|c| *wl.generator.class(c)).collect();
        for (c, class) in class_specs.into_iter().enumerate() {
            match class.shape {
                Shape::Open { .. } => {
                    for cab in 0..cab_count {
                        if !self.owns_cab(cab) {
                            continue;
                        }
                        let wl = self.workload.as_mut().expect("attached");
                        let delay = wl.generator.first_delay(c, cab as u16);
                        let Some(at) = class.from.checked_add(delay) else { continue };
                        if at < class.until {
                            let key = self.next_key(cab);
                            self.engine.schedule_at_keyed(
                                at,
                                key,
                                Ev::WorkloadTick { cab, class: c },
                            );
                        }
                    }
                }
                Shape::Closed { tokens, .. } => {
                    for cab in 0..cab_count {
                        if !self.owns_cab(cab) {
                            continue;
                        }
                        for _ in 0..tokens {
                            let key = self.next_key(cab);
                            self.engine.schedule_at_keyed(
                                class.from,
                                key,
                                Ev::WorkloadLaunch { cab, class: c },
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The attached workload spec, if any (for replay lines).
    pub fn workload_spec(&self) -> Option<&WorkloadSpec> {
        self.workload.as_ref().map(|wl| wl.generator.spec())
    }

    /// Emits one workload flow from `cab` at `now`: a zeroed payload
    /// of the drawn size over the class's transport, addressed to the
    /// class's data mailbox (reply mailbox for RPC responses).
    fn workload_send(&mut self, now: Time, cab: usize, class: usize, dst: usize, bytes: u32) {
        let wl = self.workload.as_mut().expect("workload event without a workload");
        let transport = wl.generator.class(class).transport;
        wl.counters[cab].flows += 1;
        wl.counters[cab].bytes += bytes as u64;
        let data_mb = WORKLOAD_MAILBOX_BASE + (class as u16) * 2;
        let reply_mb = data_mb + 1;
        let len = match transport {
            FlowTransport::Stream => bytes as usize,
            // Single-packet transports: heavy-tail draws clamp here.
            FlowTransport::Datagram | FlowTransport::Rpc => {
                (bytes as usize).min(MAX_FRAGMENT_PAYLOAD)
            }
        };
        let mut data = std::mem::take(&mut wl.scratch);
        data.clear();
        data.resize(len, 0);
        match transport {
            FlowTransport::Datagram => {
                self.do_datagram_send(now, cab, dst, data_mb, data_mb, &data);
            }
            FlowTransport::Stream => {
                self.do_stream_send(now, cab, dst, data_mb, data_mb, &data);
            }
            FlowTransport::Rpc => {
                self.do_rpc_send(now, cab, dst, reply_mb, data_mb, &data);
            }
        }
        self.workload.as_mut().expect("still attached").scratch = data;
    }

    /// An open-loop arrival: emit the flow, schedule the next tick.
    fn workload_tick(&mut self, now: Time, cab: usize, class: usize) {
        let Some(wl) = self.workload.as_mut() else { return };
        let until = wl.generator.class(class).until;
        let (flow, next) = wl.generator.next_open(class, cab as u16);
        self.workload_send(now, cab, class, flow.dst as usize, flow.bytes);
        if let Some(at) = now.checked_add(next) {
            if at < until {
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(at, key, Ev::WorkloadTick { cab, class });
            }
        }
    }

    /// A closed-loop token fires: draw its flow and emit it.
    fn workload_launch(&mut self, now: Time, cab: usize, class: usize) {
        let Some(wl) = self.workload.as_mut() else { return };
        let flow = wl.generator.closed_flow(class, cab as u16);
        self.workload_send(now, cab, class, flow.dst as usize, flow.bytes);
    }

    /// The serving CAB answers a workload RPC: response size drawn
    /// from the server's own stream. `respond` returning `false`
    /// (transaction retired by a client timeout) is fine — the
    /// transport already counted it.
    fn workload_reply(&mut self, cab: usize, class: usize, client: usize, tx: u32) {
        let Some(wl) = self.workload.as_mut() else { return };
        let bytes =
            (wl.generator.reply_bytes(class, cab as u16) as usize).min(MAX_FRAGMENT_PAYLOAD);
        wl.counters[cab].replies += 1;
        let mut data = std::mem::take(&mut wl.scratch);
        data.clear();
        data.resize(bytes, 0);
        self.rpc_respond_now(cab, client, tx, &data);
        self.workload.as_mut().expect("still attached").scratch = data;
    }

    /// Delivery hook: a message landing in a workload mailbox is
    /// consumed immediately (workload mailboxes never accumulate), RPC
    /// requests schedule the auto-responder, and closed-loop tokens
    /// re-arm after think time. `id`/`tag` come from the delivered
    /// message: the RPC server delivers requests with id = transaction
    /// and tag = calling CAB.
    fn workload_on_deliver(&mut self, cab: usize, mailbox: u16, end: Time, id: u64, tag: u32) {
        if mailbox < WORKLOAD_MAILBOX_BASE || self.workload.is_none() {
            return;
        }
        let idx = (mailbox - WORKLOAD_MAILBOX_BASE) as usize;
        let (class, is_reply_mb) = (idx >> 1, idx & 1 == 1);
        let wl = self.workload.as_mut().expect("checked above");
        if class >= wl.generator.class_count() {
            return; // not a workload mailbox after all
        }
        let spec = *wl.generator.class(class);
        self.mailbox_take(cab, mailbox);
        if matches!(spec.transport, FlowTransport::Rpc) && !is_reply_mb {
            // A request at the service mailbox: answer it. The reply
            // leaves when the responder event runs, charging the
            // server's application thread at that instant.
            let key = self.next_key(cab);
            self.engine.schedule_at_keyed(
                end,
                key,
                Ev::WorkloadReply { cab, class, client: tag as usize, tx: id as u32 },
            );
            return;
        }
        // A datagram/stream delivery — or an RPC reply back at the
        // caller: the token now lives here and re-arms after thinking.
        if let Shape::Closed { think, .. } = spec.shape {
            let Some(at) = end.checked_add(think) else { return };
            if at < spec.until {
                let wl = self.workload.as_mut().expect("checked above");
                wl.counters[cab].rearms += 1;
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(at, key, Ev::WorkloadLaunch { cab, class });
            }
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The topology this world runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// The HUB at `idx` (for counters and status assertions).
    pub fn hub(&self, idx: usize) -> &Hub {
        &self.hubs[idx]
    }

    /// Enables the instrumentation-board trace on HUB `idx` (§4.1's
    /// plug-in monitor). Read it back via [`hub`](World::hub).
    pub fn enable_hub_trace(&mut self, idx: usize) {
        self.hubs[idx].trace_mut().set_enabled(true);
    }

    /// Replies received by each CAB, in arrival order: `(cab, reply,
    /// at)`. Populated by circuit-open acks and `query status` answers.
    pub fn replies(&self) -> &[(usize, nectar_hub::command::Reply, Time)] {
        &self.replies
    }

    /// Interrogates a HUB's status table from `cab` (§4.1: "the status
    /// table ... can be interrogated by the CABs"). The three-byte
    /// `query status` command travels up the CAB's fiber; the reply
    /// comes back on the reverse path and lands in
    /// [`replies`](World::replies).
    ///
    /// For HUBs beyond the first, an open route must exist for the
    /// reply to traverse (§4.2.1) — queries about the first HUB always
    /// work.
    pub fn query_hub_status(&mut self, cab: usize, hub: HubId, port: PortId) {
        let now = self.now();
        let cmd =
            nectar_hub::command::Command::user(nectar_hub::command::UserOp::QueryStatus, hub, port);
        let cost = self.cfg.cab.datalink_packet;
        let app = self.cabs[cab].app_thread;
        self.cabs[cab].sched.assume_running(app);
        let (_, done) = self.cabs[cab].sched.run(now, app, cost);
        self.enqueue_burst(cab, vec![cmd.into()], done);
    }

    /// Counters for CAB `idx`.
    pub fn cab_counters(&self, idx: usize) -> CabCounters {
        self.cabs[idx].counters
    }

    /// The kernel scheduler of CAB `idx` (switch/interrupt statistics).
    pub fn cab_scheduler(&self, idx: usize) -> &Scheduler {
        &self.cabs[idx].sched
    }

    /// Fraction of elapsed time CAB `idx`'s outgoing fiber carried
    /// bits (raw wire occupancy, headers and commands included).
    pub fn fiber_utilization(&self, idx: usize) -> f64 {
        let elapsed = self.now().saturating_since(Time::ZERO);
        if elapsed.is_zero() {
            0.0
        } else {
            self.cabs[idx].fiber_tx_busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Byte-stream statistics from `src` towards `dst`, if any traffic
    /// has flowed.
    pub fn stream_stats(
        &self,
        src: usize,
        dst: usize,
    ) -> Option<nectar_proto::transport::bytestream::ByteStreamStats> {
        self.cabs[src].streams.get(&dst).map(|s| s.stats())
    }

    /// CABs that `src` has a byte-stream connection with (sorted).
    pub fn stream_peers(&self, src: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = self.cabs[src].streams.keys().copied().collect();
        peers.sort_unstable();
        peers
    }

    /// `true` when every byte stream has drained (nothing in flight or
    /// backlogged) and no RPC calls are outstanding — the transport
    /// layer's part of the quiescence invariant.
    pub fn transport_quiescent(&self) -> bool {
        self.cabs.iter().all(|cs| {
            cs.streams.values().all(|s| s.is_quiescent()) && cs.rpc_client.outstanding() == 0
        })
    }

    /// RPC client counters for CAB `idx`: `(calls, responses,
    /// timeouts, retransmissions)`.
    pub fn rpc_client_stats(&self, idx: usize) -> (u64, u64, u64, u64) {
        self.cabs[idx].rpc_client.stats()
    }

    /// RPC server counters for CAB `idx`: `(requests executed,
    /// duplicate requests suppressed, cached replays)`.
    pub fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64) {
        self.cabs[idx].rpc_server.stats()
    }

    // ---------------------------------------------------------------
    // Running
    // ---------------------------------------------------------------

    /// Processes events until the queue drains or the clock passes
    /// `deadline`; either way the clock ends at `deadline` (or later if
    /// the last event ran past it). Returns the number of events
    /// processed.
    ///
    /// The drain is batched: every event sharing the earliest pending
    /// timestamp is popped in one scheduler operation (a HUB cycle's
    /// worth of emissions, ready signals, and internal transitions all
    /// land on the same 70 ns grid), then dispatched in FIFO order.
    /// Timer events cancelled by an earlier event in the same batch are
    /// filtered by the timer table in [`dispatch`](World::dispatch).
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut n = 0;
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(at) = self.engine.peek_time() {
            if at > deadline {
                break;
            }
            self.engine.step_batch(&mut batch);
            n += batch.len() as u64;
            // Tick the drain cadence per event, not per batch: a batch
            // holds every event sharing one timestamp, and a workload
            // seeding 10^5 same-instant launches would overflow the
            // rings before a post-batch drain ever ran.
            for ev in batch.drain(..) {
                self.dispatch(ev);
                self.stream_tick(1);
            }
        }
        self.batch = batch;
        if self.engine.now() < deadline {
            self.engine.advance_to(deadline);
        }
        n
    }

    /// Live events still queued.
    pub fn pending_events(&self) -> usize {
        self.engine.pending()
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_delivered()
    }

    /// Total extra packet copies the HUBs emitted beyond one per
    /// forward (multicast fan-out and stale circuit members); each is
    /// a pool-less buffer share that will be returned downstream.
    pub fn hub_fanout_copies(&self) -> u64 {
        self.hubs.iter().map(|h| h.counters().fanout_copies).sum()
    }

    /// Wire-buffer pool counters (hit rate, reclaim success), summed
    /// over every CAB's pool.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for cs in &self.cabs {
            total.merge(cs.pool.stats());
        }
        total
    }

    /// Buffers destroyed at a HUB by chaos and freed straight to the
    /// allocator (no pool reclaim; see the pool-conservation ledger).
    pub fn chaos_freed(&self) -> u64 {
        self.chaos_freed
    }

    /// Timestamp of the next live event, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.engine.peek_time()
    }

    /// Runs for `dur` beyond the current clock.
    pub fn run_for(&mut self, dur: Dur) -> u64 {
        let deadline = self.now() + dur;
        self.run_until(deadline)
    }

    /// Runs until the event queue is empty or the clock would pass
    /// `deadline`, whichever comes first.
    ///
    /// Unlike [`run_until`](World::run_until), the clock is **not**
    /// advanced to the deadline when the system goes quiet early: it
    /// stays at the last event, so the caller can read off when the
    /// system actually settled. Returns the events processed and which
    /// condition stopped the run.
    pub fn run_to_quiescence(&mut self, deadline: Time) -> (u64, QuiescenceOutcome) {
        let mut n = 0;
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            let Some(at) = self.engine.peek_time() else {
                self.batch = batch;
                return (n, QuiescenceOutcome::Quiescent);
            };
            if at > deadline {
                self.batch = batch;
                self.engine.advance_to(deadline);
                return (n, QuiescenceOutcome::DeadlineReached);
            }
            self.engine.step_batch(&mut batch);
            n += batch.len() as u64;
            // Per-event cadence for the same reason as `run_until`:
            // same-timestamp batches can be arbitrarily large.
            for ev in batch.drain(..) {
                self.dispatch(ev);
                self.stream_tick(1);
            }
        }
    }

    // ---------------------------------------------------------------
    // Sharded execution hooks (driven by `shard::ShardedWorld`)
    // ---------------------------------------------------------------

    /// Processes every queued event strictly before `end` (a YAWNS
    /// window). Events *at* `end` stay queued: they may tie with
    /// cross-shard events still in another shard's outbox, and ties
    /// must be broken by key with both sides present. The clock is
    /// left at the last processed event. Returns events processed.
    pub(crate) fn run_window(&mut self, end: Time) -> u64 {
        let mut n = 0;
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(at) = self.engine.peek_time() {
            if at >= end {
                break;
            }
            self.engine.step_batch(&mut batch);
            n += batch.len() as u64;
            // Per-event cadence for the same reason as `run_until`: a
            // workload's same-instant launch wave arrives as one batch
            // and would overflow the rings before any between-window
            // drain ran.
            for ev in batch.drain(..) {
                self.dispatch(ev);
                self.spill_tick(1);
            }
        }
        self.batch = batch;
        n
    }

    /// Swaps the outbox batch for shard `dst` with `into` — the
    /// allocation-free exchange primitive. `into` must be empty; after
    /// the swap it holds this window's batch for `dst` and the outbox
    /// holds `into`'s old buffer, so the two vectors' capacities
    /// ping-pong between producer and exchange slot and the steady
    /// state never allocates.
    pub(crate) fn swap_outbox(&mut self, dst: usize, into: &mut Vec<(Time, u64, Ev)>) {
        debug_assert!(into.is_empty(), "exchange slot not drained");
        if let Some(ctx) = &mut self.shard {
            std::mem::swap(&mut ctx.outbox[dst], into);
        }
    }

    /// `true` when the outbox for shard `dst` has anything queued.
    pub(crate) fn outbox_filled(&self, dst: usize) -> bool {
        self.shard.as_ref().is_some_and(|ctx| !ctx.outbox[dst].is_empty())
    }

    /// Drains a cross-shard arrival batch into the engine, leaving
    /// the buffer's capacity in place for reuse by the batched barrier
    /// exchange. Keys are globally unique, so arrival order here is
    /// irrelevant — the heap pops them in the one total `(time, key)`
    /// order.
    pub(crate) fn ingest_drain(&mut self, arrivals: &mut Vec<(Time, u64, Ev)>) {
        for (at, key, ev) in arrivals.drain(..) {
            self.engine.schedule_at_keyed(at, key, ev);
        }
    }

    /// Replaces the shard plan (a rebalance adopted at a window
    /// barrier). A no-op for unsharded worlds.
    pub(crate) fn set_shard_plan(&mut self, plan: std::sync::Arc<ShardPlan>) {
        if let Some(ctx) = &mut self.shard {
            ctx.plan = plan;
        }
    }

    /// Deterministic load attribution for HUB `hub`'s cluster: the
    /// simulated busy time of the attached CABs' kernels plus one HUB
    /// cycle per item the HUB handled. Simulated-time quantities only —
    /// every shard (and every rerun) computes the same weights, so an
    /// adaptive repartition is itself deterministic. Non-owned
    /// components are pristine and contribute zero, so summing a
    /// cluster's weight across shards yields its global weight.
    pub(crate) fn cluster_weight(&self, hub: usize) -> u64 {
        let hc = self.hubs[hub].counters();
        let cycle = self.cfg.hub.cycle.nanos();
        let mut w = (hc.packets_forwarded + hc.commands_executed + hc.replies_forwarded)
            .saturating_mul(cycle);
        for (c, cs) in self.cabs.iter().enumerate() {
            if self.topo.cab_attachment(c).0 == hub {
                w += cs.sched.thread_busy().nanos() + cs.sched.interrupt_busy().nanos();
            }
        }
        w
    }

    /// Moves HUB `hub`'s cluster — the HUB, its attached CABs, their
    /// pending events, tie-break key counters, protocol timer tables,
    /// and chaos RNG streams — from `src` to `dst`.
    ///
    /// Only sound **at a window-barrier epoch**, where three facts
    /// hold: no event batch is in flight (the timer table is exactly
    /// 1:1 with pending `CabTimer` engine events), every outbox has
    /// been exchanged (no cluster traffic is parked outside an
    /// engine), and every pending event's timestamp is at or beyond
    /// the last window's end — which is strictly after both worlds'
    /// clocks, so re-insertion into `dst`'s engine can never schedule
    /// into its past. Timestamps and keys are preserved verbatim, so
    /// the merged `(time, key)` event order — and therefore every
    /// observable — is bit-identical to a run that never migrated.
    pub(crate) fn migrate_cluster(src: &mut World, dst: &mut World, hub: usize) {
        let mine: Vec<bool> =
            (0..src.topo.cab_count()).map(|c| src.topo.cab_attachment(c).0 == hub).collect();
        let moved = src.engine.extract_if(|ev| match ev {
            Ev::HubItem { hub: h, .. }
            | Ev::HubReady { hub: h, .. }
            | Ev::HubInternal { hub: h, .. } => *h == hub,
            Ev::CabItem { cab, .. }
            | Ev::CabItemReplay { cab, .. }
            | Ev::CabReadySignal { cab }
            | Ev::CabPacketReady { cab, .. }
            | Ev::CabTimer { cab, .. }
            | Ev::CabReadyTimeout { cab, .. }
            | Ev::AppSend { cab, .. }
            | Ev::WorkloadTick { cab, .. }
            | Ev::WorkloadLaunch { cab, .. }
            | Ev::WorkloadReply { cab, .. } => mine[*cab],
        });
        std::mem::swap(&mut src.hubs[hub], &mut dst.hubs[hub]);
        let hub_key_src = src.cabs.len() + hub;
        std::mem::swap(&mut src.keys[hub_key_src], &mut dst.keys[hub_key_src]);
        let mut cab16: Vec<u16> = Vec::new();
        for (c, owned) in mine.iter().enumerate() {
            if *owned {
                std::mem::swap(&mut src.cabs[c], &mut dst.cabs[c]);
                std::mem::swap(&mut src.keys[c], &mut dst.keys[c]);
                // The live timer table travelled with the CAB but its
                // EventIds point into `src`'s engine; rebuild it from
                // the re-inserted events below (exactly 1:1 at an
                // epoch boundary).
                let stale = dst.cabs[c].timers.len();
                dst.cabs[c].timers.clear();
                dst.cabs[c].timers.reserve(stale);
                cab16.push(c as u16);
            }
        }
        for (at, key, ev) in moved {
            if let Ev::CabTimer { cab, source, token } = &ev {
                let (cab, source, tok) = (*cab, *source, token.0);
                let id = dst.engine.schedule_at_keyed(at, key, ev);
                dst.cabs[cab].timers.insert((source, tok), id);
            } else {
                dst.engine.schedule_at_keyed(at, key, ev);
            }
        }
        if let (Some(a), Some(b)) = (src.chaos.as_mut(), dst.chaos.as_mut()) {
            b.absorb_component_state(a.extract_component_state(&cab16, &[hub as u8]));
        }
        // Workload RNG streams follow their CABs the same way chaos
        // clause streams do; never-started streams move implicitly
        // (seeds derive from spec seed + class + CAB).
        if let (Some(a), Some(b)) = (src.workload.as_mut(), dst.workload.as_mut()) {
            b.generator.absorb_component_state(a.generator.extract_component_state(&cab16));
        }
    }

    /// Advances the clock to `t` if it lags (window-barrier clock
    /// normalization; time-derived gauges like fiber utilization read
    /// the clock, so every shard must end on the same instant).
    pub(crate) fn advance_clock(&mut self, t: Time) {
        if self.engine.now() < t {
            self.engine.advance_to(t);
        }
    }

    // ---------------------------------------------------------------
    // Application API
    // ---------------------------------------------------------------

    /// Schedules an application send at absolute time `at`.
    pub fn schedule_send(&mut self, at: Time, cab: usize, send: AppSend) {
        let key = self.next_key(cab);
        self.engine.schedule_at_keyed(at, key, Ev::AppSend { cab, send });
    }

    /// Sends a reliable byte-stream message right now; returns its
    /// message id (scoped to the `src`→`dst` stream).
    pub fn send_stream_now(
        &mut self,
        src: usize,
        dst: usize,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        let now = self.now();
        self.do_stream_send(now, src, dst, src_mailbox, dst_mailbox, data)
    }

    /// Sends an unreliable datagram right now; returns its message id.
    pub fn send_datagram_now(
        &mut self,
        src: usize,
        dst: usize,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        let now = self.now();
        self.do_datagram_send(now, src, dst, src_mailbox, dst_mailbox, data)
    }

    /// Issues a request-response call right now; returns the
    /// transaction id.
    pub fn send_rpc_now(
        &mut self,
        src: usize,
        dst: usize,
        reply_mailbox: u16,
        service_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        let now = self.now();
        self.do_rpc_send(now, src, dst, reply_mailbox, service_mailbox, data)
    }

    /// Sends a hardware multicast datagram right now.
    pub fn send_multicast_now(
        &mut self,
        src: usize,
        dsts: &[usize],
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) {
        let now = self.now();
        self.do_multicast_send(now, src, dsts, src_mailbox, dst_mailbox, data);
    }

    /// Answers a pending RPC (the application on `cab` responding to
    /// `client`'s transaction `tx`).
    pub fn rpc_respond_now(&mut self, cab: usize, client: usize, tx: u32, data: &[u8]) -> bool {
        let now = self.now();
        let mut actions = Vec::new();
        let ok = self.cabs[cab].rpc_server.respond(
            now,
            CabId::new(client as u16),
            tx,
            data,
            &mut actions,
        );
        self.exec_actions(cab, now, None, true, FlightId::NONE, actions);
        ok
    }

    /// Takes the next message out of a mailbox (application receive).
    pub fn mailbox_take(
        &mut self,
        cab: usize,
        mailbox: u16,
    ) -> Option<nectar_kernel::mailbox::Message> {
        self.cabs[cab].mailboxes.get_mut(&mailbox)?.take_next()
    }

    // ---------------------------------------------------------------
    // Dispatch
    // ---------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        let now = self.engine.now();
        match ev {
            Ev::HubItem { hub, port, item } => {
                if let Some(chaos) = &mut self.chaos {
                    let is_command = matches!(item, Item::Command(_));
                    let edge = matches!(self.topo.peer(hub, port), Peer::Cab(_));
                    if chaos.on_hub_item(now, hub as u8, port.index() as u8, is_command, edge) {
                        // The item dies at the HUB input port. Flow
                        // control is NOT released — the sender's
                        // ready-timeout (§6.2.1) recovers, exactly as
                        // with a dead physical port. The buffer came
                        // from some sender's pool; freeing it here
                        // (no reclaim) keeps pool traffic per-CAB.
                        self.faults_injected += 1;
                        if let Item::Packet(p) = item {
                            drop(p.into_shared());
                            self.chaos_freed += 1;
                        }
                        return;
                    }
                }
                let mut fx = Effects::new();
                self.hubs[hub].item_arrives(now, port, item, &mut fx);
                self.apply_hub_effects(hub, fx);
            }
            Ev::HubReady { hub, port } => {
                let mut fx = Effects::new();
                self.hubs[hub].ready_signal_arrives(now, port, &mut fx);
                self.apply_hub_effects(hub, fx);
            }
            Ev::HubInternal { hub, ev } => {
                let mut fx = Effects::new();
                self.hubs[hub].internal(now, ev, &mut fx);
                self.apply_hub_effects(hub, fx);
            }
            Ev::CabItem { cab, item } => self.cab_item(now, cab, item, false),
            Ev::CabItemReplay { cab, item } => self.cab_item(now, cab, item, true),
            Ev::CabReadySignal { cab } => {
                self.cabs[cab].fiber_ready = true;
                self.cabs[cab].ready_gen += 1; // invalidate pending timeout
                self.try_flush(cab, now);
            }
            Ev::CabReadyTimeout { cab, gen } => {
                let cs = &mut self.cabs[cab];
                if cs.ready_gen == gen && !cs.fiber_ready {
                    // The ready signal never came back: a command (or
                    // the packet itself) was lost. Re-arm and let the
                    // transport's retransmission recover.
                    cs.fiber_ready = true;
                    cs.ready_gen += 1;
                    cs.counters.ready_timeouts += 1;
                    self.telemetry.record(
                        now,
                        FlightId::NONE,
                        EventKind::DatalinkRetry { cab: cab as u16 },
                    );
                    self.try_flush(cab, now);
                }
            }
            Ev::CabPacketReady { cab, payload, flight } => {
                self.telemetry.record(
                    now,
                    FlightId(flight),
                    EventKind::DmaComplete {
                        cab: cab as u16,
                        channel: Channel::FiberIn.number(),
                        bytes: payload.len() as u32,
                    },
                );
                self.cab_packet_ready(now, cab, payload, FlightId(flight));
            }
            Ev::CabTimer { cab, source, token } => {
                // The timer table is the source of truth: a timer
                // cancelled by an earlier event in the same batch has
                // already left the table (its engine event was popped
                // with the batch and could no longer be cancelled), so
                // its expiry must be ignored here.
                if self.cabs[cab].timers.remove(&(source, token.0)).is_none() {
                    return;
                }
                let t = self.cfg.cab.timer_op;
                let (_, done) = self.cabs[cab].sched.run_interrupt(now, t);
                let timeout_peer = match source {
                    TimerSource::Stream(peer) => peer as u16,
                    TimerSource::Rpc => u16::MAX,
                };
                self.telemetry.record(
                    now,
                    FlightId::NONE,
                    EventKind::TransportTimeout { cab: cab as u16, peer: timeout_peer },
                );
                let mut actions = Vec::new();
                match source {
                    TimerSource::Stream(peer) => {
                        if let Some(s) = self.cabs[cab].streams.get_mut(&peer) {
                            s.on_timer(done, token, &mut actions);
                        }
                    }
                    TimerSource::Rpc => {
                        self.cabs[cab].rpc_client.on_timer(done, token, &mut actions)
                    }
                }
                self.exec_actions(cab, done, Some(source), false, FlightId::NONE, actions);
            }
            Ev::AppSend { cab, send } => match send {
                AppSend::Stream { dst, src_mailbox, dst_mailbox, data } => {
                    self.do_stream_send(now, cab, dst, src_mailbox, dst_mailbox, &data);
                }
                AppSend::Datagram { dst, src_mailbox, dst_mailbox, data } => {
                    self.do_datagram_send(now, cab, dst, src_mailbox, dst_mailbox, &data);
                }
                AppSend::Rpc { dst, reply_mailbox, service_mailbox, data } => {
                    self.do_rpc_send(now, cab, dst, reply_mailbox, service_mailbox, &data);
                }
                AppSend::Multicast { dsts, src_mailbox, dst_mailbox, data } => {
                    self.do_multicast_send(now, cab, &dsts, src_mailbox, dst_mailbox, &data);
                }
            },
            Ev::WorkloadTick { cab, class } => self.workload_tick(now, cab, class),
            Ev::WorkloadLaunch { cab, class } => self.workload_launch(now, cab, class),
            Ev::WorkloadReply { cab, class, client, tx } => {
                self.workload_reply(cab, class, client, tx)
            }
        }
    }

    // ---------------------------------------------------------------
    // Sends
    // ---------------------------------------------------------------

    fn do_stream_send(
        &mut self,
        now: Time,
        src: usize,
        dst: usize,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        assert_ne!(src, dst, "a CAB does not message itself over the net");
        let cab_id = CabId::new(src as u16);
        let stream_cfg = self.cfg.stream;
        let cs = &mut self.cabs[src];
        // The application thread is the caller (procedure-call
        // invocation, §6.2.2): it is already running.
        let app = cs.app_thread;
        cs.sched.assume_running(app);
        let mut actions = Vec::new();
        let msg_id = cs
            .streams
            .entry(dst)
            .or_insert_with(|| ByteStream::new(cab_id, CabId::new(dst as u16), stream_cfg))
            .send_message(now, src_mailbox, dst_mailbox, data, &mut actions);
        self.telemetry.record(
            now,
            FlightId::NONE,
            EventKind::AppSend { cab: src as u16, dst: dst as u16, bytes: data.len() as u32 },
        );
        self.exec_actions(src, now, Some(TimerSource::Stream(dst)), true, FlightId::NONE, actions);
        msg_id
    }

    fn do_datagram_send(
        &mut self,
        now: Time,
        src: usize,
        dst: usize,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        assert_ne!(src, dst, "a CAB does not message itself over the net");
        let cs = &mut self.cabs[src];
        let app = cs.app_thread;
        cs.sched.assume_running(app);
        let mut actions = Vec::new();
        let msg_id = cs.datagram.send(
            now,
            CabId::new(dst as u16),
            src_mailbox,
            dst_mailbox,
            data,
            &mut actions,
        );
        self.telemetry.record(
            now,
            FlightId::NONE,
            EventKind::AppSend { cab: src as u16, dst: dst as u16, bytes: data.len() as u32 },
        );
        self.exec_actions(src, now, None, true, FlightId::NONE, actions);
        msg_id
    }

    fn do_rpc_send(
        &mut self,
        now: Time,
        src: usize,
        dst: usize,
        reply_mailbox: u16,
        service_mailbox: u16,
        data: &[u8],
    ) -> u32 {
        assert_ne!(src, dst, "a CAB does not call itself over the net");
        let cs = &mut self.cabs[src];
        let app = cs.app_thread;
        cs.sched.assume_running(app);
        let mut actions = Vec::new();
        let tx = cs.rpc_client.call(
            now,
            CabId::new(dst as u16),
            reply_mailbox,
            service_mailbox,
            data,
            &mut actions,
        );
        self.telemetry.record(
            now,
            FlightId::NONE,
            EventKind::AppSend { cab: src as u16, dst: dst as u16, bytes: data.len() as u32 },
        );
        self.exec_actions(src, now, Some(TimerSource::Rpc), true, FlightId::NONE, actions);
        tx
    }

    fn do_multicast_send(
        &mut self,
        now: Time,
        src: usize,
        dsts: &[usize],
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
    ) {
        let mc =
            self.topo.multicast_route(src, dsts).expect("multicast destinations must be reachable");
        // One datagram header; receivers deliver by mailbox address.
        let header = Header {
            src_mailbox,
            dst_mailbox,
            msg_id: self.cabs[src].datagram.stats().0 as u32,
            payload_len: data.len() as u16,
            ..Header::new(
                nectar_proto::header::PacketKind::Datagram,
                CabId::new(src as u16),
                // dst_cab is advisory for multicast; receivers don't check.
                CabId::new(dsts[0] as u16),
            )
        };
        let mut wire = self.cabs[src].pool.acquire();
        header.encode_into(data, &mut wire);
        let t = self.cfg.cab.send_path();
        let app = self.cabs[src].app_thread;
        self.cabs[src].sched.assume_running(app);
        self.cabs[src].counters.checksum_ops += 1;
        let (_, done) = self.cabs[src].sched.run(now, app, t);
        self.telemetry.record(
            now,
            FlightId::NONE,
            EventKind::AppSend { cab: src as u16, dst: dsts[0] as u16, bytes: data.len() as u32 },
        );
        let packet = self.next_packet(src, wire);
        if self.observability {
            self.flight_births.insert(packet.id(), done);
            self.telemetry.record(
                done,
                FlightId(packet.id()),
                EventKind::TransportSend {
                    cab: src as u16,
                    peer: dsts[0] as u16,
                    seq: header.msg_id,
                    bytes: data.len() as u32,
                    retransmit: false,
                },
            );
        }
        let items = mc.packet_switched_items(packet, self.cfg.hub.queue_capacity);
        self.cabs[src].counters.packets_tx += 1;
        self.enqueue_burst(src, items, done);
    }

    fn next_packet(&mut self, cab: usize, wire: Vec<u8>) -> Packet {
        let id = self.cabs[cab].next_packet_id;
        self.cabs[cab].next_packet_id += 1;
        Packet::new(id, wire)
    }

    // ---------------------------------------------------------------
    // Action execution
    // ---------------------------------------------------------------

    /// Executes transport actions for `cab`. `app_context` selects the
    /// CPU charging: `true` for procedure-call sends from the
    /// application thread, `false` for interrupt-context activity
    /// (acks, retransmissions, timer handlers). `flight` is the flight
    /// id of the packet whose processing produced these actions (or
    /// [`FlightId::NONE`]); deliveries inherit it for latency
    /// accounting.
    fn exec_actions(
        &mut self,
        cab: usize,
        now: Time,
        source: Option<TimerSource>,
        app_context: bool,
        flight: FlightId,
        actions: Vec<Action>,
    ) {
        for action in actions {
            match action {
                Action::Send { header, payload, retransmit } => {
                    let cost_send = self.cfg.cab.send_path();
                    let cost_int = self.cfg.cab.datalink_packet + self.cfg.cab.dma_setup;
                    let cs = &mut self.cabs[cab];
                    let done = if app_context {
                        let app = cs.app_thread;
                        cs.sched.run(now, app, cost_send).1
                    } else {
                        cs.sched.run_interrupt(now, cost_int).1
                    };
                    cs.counters.checksum_ops += 1;
                    let mut wire = cs.pool.acquire();
                    header.encode_into(&payload, &mut wire);
                    let dst = header.dst_cab.index();
                    let payload_len = payload.len() as u32;
                    self.cab_send_packet(cab, dst, wire, done, header.seq, payload_len, retransmit);
                }
                Action::Deliver { mailbox, msg } => {
                    let mailbox_cap = self.cfg.mailbox_capacity;
                    let op = self.cfg.cab.mailbox_op;
                    let cs = &mut self.cabs[cab];
                    let app = cs.app_thread;
                    let (_, end) = cs.sched.run(now, app, op);
                    let slot = cs
                        .mailboxes
                        .entry(mailbox)
                        .or_insert_with(|| Mailbox::new(format!("mb{mailbox}"), mailbox_cap));
                    let (id, len, tag) = (msg.id(), msg.len(), msg.tag());
                    if slot.append(msg).is_err() {
                        cs.counters.mailbox_rejects += 1;
                        continue;
                    }
                    self.telemetry.record(
                        end,
                        flight,
                        EventKind::AppRecv { cab: cab as u16, mailbox, bytes: len as u32 },
                    );
                    if self.observability && flight.is_some() {
                        // Min-join, not first-wins: the earliest
                        // delivery of a flight defines its latency, no
                        // matter which shard (or batch position)
                        // processed it first.
                        let slot = self.flight_ends.entry(flight.0).or_insert(end);
                        if end < *slot {
                            *slot = end;
                        }
                    }
                    self.deliveries.push(Delivery { cab, mailbox, msg_id: id, len, at: end });
                    if self.workload.is_some() {
                        self.workload_on_deliver(cab, mailbox, end, id, tag);
                    }
                }
                Action::SetTimer { token, delay } => {
                    let src = source.expect("timer from a timerless protocol");
                    let key = self.next_key(cab);
                    let id = self.engine.schedule_at_keyed(
                        now.max(self.engine.now()) + delay,
                        key,
                        Ev::CabTimer { cab, source: src, token },
                    );
                    self.cabs[cab].timers.insert((src, token.0), id);
                }
                Action::CancelTimer { token } => {
                    let src = source.expect("timer from a timerless protocol");
                    if let Some(id) = self.cabs[cab].timers.remove(&(src, token.0)) {
                        self.engine.cancel(id);
                    }
                }
                Action::Complete { msg_id } => self.completions.push((cab, msg_id, now)),
                Action::Error(e) => self.errors.push((cab, e, now)),
            }
        }
    }

    // ---------------------------------------------------------------
    // Datalink: CAB -> fiber
    // ---------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn cab_send_packet(
        &mut self,
        cab: usize,
        dst: usize,
        wire: Vec<u8>,
        ready: Time,
        seq: u32,
        payload_bytes: u32,
        retransmit: bool,
    ) {
        let packet = self.next_packet(cab, wire);
        // The flight id is born here, where the CAB hands the packet to
        // its datalink; the recorder traces it through every HUB hop to
        // the receiving application.
        if self.observability {
            self.flight_births.insert(packet.id(), ready);
            self.telemetry.record(
                ready,
                FlightId(packet.id()),
                EventKind::TransportSend {
                    cab: cab as u16,
                    peer: dst as u16,
                    seq,
                    bytes: payload_bytes,
                    retransmit,
                },
            );
        }
        let queue_cap = self.cfg.hub.queue_capacity;
        let items: Vec<Item> = match self.cfg.switching {
            SwitchingMode::PacketSwitched => {
                let route = self.topo.route(cab, dst).expect("destination must be reachable");
                route.packet_switched_items(packet, queue_cap)
            }
            SwitchingMode::CircuitCached => {
                let mut items = Vec::new();
                let reopen = match &self.cabs[cab].open_circuit {
                    // A retransmission means packets are vanishing on
                    // this path; the cached circuit (or its close-all,
                    // leaving a stale member multicasting our data) is
                    // suspect, so rebuild it from scratch.
                    Some((open_dst, _)) if *open_dst == dst && !retransmit => false,
                    Some(_) => {
                        // Tear down the old circuit first: a CAB has one
                        // input port, a second circuit would multicast.
                        items.push(Item::CloseAll);
                        true
                    }
                    None => true,
                };
                if reopen {
                    let route = self.topo.route(cab, dst).expect("destination must be reachable");
                    // Data follows the opens in FIFO order through the
                    // same queues, so no reply wait is needed: the HUB
                    // serializes the opens ahead of the packet.
                    items.extend(route.circuit_open_items());
                    self.cabs[cab].counters.circuit_opens += 1;
                    self.cabs[cab].open_circuit = Some((dst, route));
                }
                items.push(packet.into());
                items
            }
        };
        self.cabs[cab].counters.packets_tx += 1;
        self.enqueue_burst(cab, items, ready);
    }

    fn enqueue_burst(&mut self, cab: usize, items: Vec<Item>, ready: Time) {
        // Small control packets (acknowledgements, RPC headers) jump
        // ahead of queued bulk data: an ack stuck behind a window of
        // 1 KB packets on the shared fiber starves the reverse stream
        // into spurious go-back-N retransmission.
        let payload: usize = items
            .iter()
            .filter_map(|i| match i {
                Item::Packet(p) => Some(p.len()),
                _ => None,
            })
            .sum();
        if payload <= 128 && !self.cabs[cab].tx_bursts.is_empty() {
            self.cabs[cab].tx_bursts.push_front(items);
        } else {
            self.cabs[cab].tx_bursts.push_back(items);
        }
        self.try_flush(cab, ready);
    }

    fn try_flush(&mut self, cab: usize, now: Time) {
        let (hub, port) = self.topo.cab_attachment(cab);
        let prop = self.cfg.propagation;
        while let Some(front) = self.cabs[cab].tx_bursts.front() {
            let has_packet = front.iter().any(|i| matches!(i, Item::Packet(_)));
            // The CAB-side ready bit is part of the same hardware
            // flow-control system as the HUB's (§4.2.3); the ablation
            // switches both off.
            if has_packet && self.cfg.hub.flow_control && !self.cabs[cab].fiber_ready {
                break;
            }
            if has_packet {
                // One packet outstanding toward the HUB until it signals
                // that its input queue drained (§4.2.3 flow control).
                self.cabs[cab].fiber_ready = false;
                self.cabs[cab].ready_gen += 1;
                let gen = self.cabs[cab].ready_gen;
                let at = now.max(self.engine.now()) + self.cfg.ready_timeout;
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(at, key, Ev::CabReadyTimeout { cab, gen });
            }
            let burst = self.cabs[cab].tx_bursts.pop_front().expect("front exists");
            for item in burst {
                let head = now.max(self.cabs[cab].fiber_free);
                let wire = self.cfg.hub.wire_time(item.wire_bytes());
                if let Item::Packet(p) = &item {
                    // Span boundary: transmit queueing ends, fiber
                    // serialization begins.
                    self.telemetry.record(
                        head,
                        FlightId(p.id()),
                        EventKind::FiberTx { cab: cab as u16, bytes: item.wire_bytes() as u32 },
                    );
                }
                self.cabs[cab].fiber_free = head + wire;
                self.cabs[cab].fiber_tx_busy += wire;
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(head + prop, key, Ev::HubItem { hub, port, item });
            }
        }
    }

    // ---------------------------------------------------------------
    // HUB effects -> events
    // ---------------------------------------------------------------

    fn apply_hub_effects(&mut self, hub: usize, fx: Effects) {
        let prop = self.cfg.propagation;
        let src = self.hub_src(hub);
        for em in fx.emissions {
            match self.topo.peer(hub, em.port) {
                Peer::Hub(h2, p2) => {
                    let key = self.next_key(src);
                    self.route_to_hub(
                        h2,
                        em.at + prop,
                        key,
                        Ev::HubItem { hub: h2, port: p2, item: em.item },
                    );
                }
                Peer::Cab(c) => {
                    // A CAB always shares its attachment HUB's shard,
                    // so this edge is never cross-shard.
                    let key = self.next_key(src);
                    self.engine.schedule_at_keyed(
                        em.at + prop,
                        key,
                        Ev::CabItem { cab: c, item: em.item },
                    );
                }
                Peer::None => { /* unwired port: the item vanishes */ }
            }
        }
        for rs in fx.ready_signals {
            match self.topo.peer(hub, rs.port) {
                Peer::Hub(h2, p2) => {
                    let key = self.next_key(src);
                    self.route_to_hub(h2, rs.at + prop, key, Ev::HubReady { hub: h2, port: p2 });
                }
                Peer::Cab(c) => {
                    let key = self.next_key(src);
                    self.engine.schedule_at_keyed(rs.at + prop, key, Ev::CabReadySignal { cab: c });
                }
                Peer::None => {}
            }
        }
        for int in fx.internal {
            let key = self.next_key(src);
            self.engine.schedule_at_keyed(int.at, key, Ev::HubInternal { hub, ev: int.ev });
        }
    }

    /// Routes a HUB-to-HUB event: locally when the destination HUB
    /// lives in this shard (or the world is unsharded), through the
    /// window-boundary outbox otherwise. These fiber edges are the
    /// *only* cross-shard channel — their minimum latency is the
    /// lookahead that makes the conservative window sound.
    fn route_to_hub(&mut self, dst_hub: usize, at: Time, key: u64, ev: Ev) {
        match &mut self.shard {
            Some(ctx) if ctx.plan.shard_of_hub(dst_hub) != ctx.id => {
                ctx.outbox[ctx.plan.shard_of_hub(dst_hub)].push((at, key, ev));
            }
            _ => {
                self.engine.schedule_at_keyed(at, key, ev);
            }
        }
    }

    // ---------------------------------------------------------------
    // CAB receive path
    // ---------------------------------------------------------------

    /// A wire item reaches a CAB's fiber input. `replay` marks items
    /// the chaos injector itself produced (duplicates, delayed
    /// originals); they bypass the injector so faults cannot cascade
    /// on their own products.
    fn cab_item(&mut self, now: Time, cab: usize, item: Item, replay: bool) {
        let item = match (item, replay, &mut self.chaos) {
            (Item::Packet(p), false, Some(chaos)) => {
                let verdict = chaos.on_cab_packet(now, cab as u16, p.len());
                let (hub, port) = self.topo.cab_attachment(cab);
                let prop = self.cfg.propagation;
                if verdict.drop {
                    // The packet vanishes; flow control must still be
                    // released or the sender wedges, and the buffer
                    // goes back to the pool.
                    self.faults_injected += 1;
                    self.cabs[cab].pool.reclaim(p.into_shared());
                    let key = self.next_key(cab);
                    self.engine.schedule_at_keyed(now + prop, key, Ev::HubReady { hub, port });
                    return;
                }
                if verdict.duplicate {
                    // The copy shares the original buffer (scheduled
                    // before corruption replaces it) and re-enters via
                    // the replay path so it cannot be faulted again.
                    let key = self.next_key(cab);
                    self.engine.schedule_at_keyed(
                        now,
                        key,
                        Ev::CabItemReplay { cab, item: Item::Packet(p.clone()) },
                    );
                }
                let p = match verdict.corrupt {
                    Some((idx, bit)) if !p.is_empty() => {
                        self.faults_injected += 1;
                        let mut bytes = p.data().to_vec();
                        let idx = idx.min(bytes.len() - 1);
                        bytes[idx] ^= 1 << (bit & 7);
                        let id = p.id();
                        self.cabs[cab].pool.reclaim(p.into_shared());
                        Packet::new(id, bytes)
                    }
                    _ => p,
                };
                if let Some(d) = verdict.delay {
                    // Reordering: release the HUB port now so later
                    // traffic overtakes, then deliver the original
                    // after the extra delay.
                    let key = self.next_key(cab);
                    self.engine.schedule_at_keyed(now + prop, key, Ev::HubReady { hub, port });
                    let key = self.next_key(cab);
                    self.engine.schedule_at_keyed(
                        now + d,
                        key,
                        Ev::CabItemReplay { cab, item: Item::Packet(p) },
                    );
                    return;
                }
                Item::Packet(p)
            }
            (item, _, _) => item,
        };
        match item {
            Item::Packet(p) => {
                let size = p.wire_bytes();
                let recv = self.cfg.cab.recv_path();
                let wire_dur = self.cfg.hub.wire_time(size);
                let prop = self.cfg.propagation;
                let (hub, port) = self.topo.cab_attachment(cab);
                let cs = &mut self.cabs[cab];
                cs.counters.packets_rx += 1;
                // §6.2.1: the start-of-packet interrupt runs the upcall
                // chain; the DMA must start before the 1 KB input queue
                // fills.
                let (_, handler_done) = cs.sched.run_interrupt(now, recv);
                let deadline = cs.hw.fiber.drain_deadline(now, size);
                if handler_done > deadline {
                    cs.hw.fiber.record_overrun();
                    cs.counters.overruns += 1;
                    // The queue overran; the packet is lost. Free the
                    // flow-control path so the network is not wedged,
                    // and return the buffer to the pool.
                    let key = self.next_key(cab);
                    self.engine.schedule_at_keyed(
                        handler_done + prop,
                        key,
                        Ev::HubReady { hub, port },
                    );
                    self.cabs[cab].pool.reclaim(p.into_shared());
                    return;
                }
                // The DMA drains the input queue concurrently with the
                // arrival: the packet is in CAB memory when the last
                // byte has crossed the fiber and the handler has set up
                // the destination (whichever is later).
                let xfer = cs.hw.dma.start(now, Channel::FiberIn, p.len());
                let done = xfer.complete.max(now + wire_dur).max(handler_done);
                let flight = p.id();
                self.telemetry.record(
                    xfer.start,
                    FlightId(flight),
                    EventKind::DmaStart {
                        cab: cab as u16,
                        channel: Channel::FiberIn.number(),
                        bytes: xfer.bytes as u32,
                    },
                );
                // Zero-copy receive: share the in-flight buffer instead
                // of copying it into CAB memory. (The real DMA copies;
                // the model only charges its time.)
                let payload = p.share();
                // The packet emerges from the CAB input queue when the
                // DMA starts draining it: restore the HUB's ready bit.
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(handler_done + prop, key, Ev::HubReady { hub, port });
                let key = self.next_key(cab);
                self.engine.schedule_at_keyed(
                    done,
                    key,
                    Ev::CabPacketReady { cab, payload, flight },
                );
            }
            Item::Reply(reply) => {
                // Circuit-open acks and status replies: the datalink
                // notes them; our send path does not block on them.
                let t = self.cfg.cab.datalink_packet;
                self.cabs[cab].sched.run_interrupt(now, t);
                self.replies.push((cab, reply, now));
            }
            Item::Command(_) | Item::CloseAll => {
                // `close all` trailing a packet-switched transfer, or a
                // multicast command that leaked to a leaf: discard.
                self.cabs[cab].counters.strays += 1;
            }
        }
    }

    fn cab_packet_ready(&mut self, now: Time, cab: usize, payload: Arc<Vec<u8>>, flight: FlightId) {
        use nectar_proto::header::PacketKind;
        self.cabs[cab].counters.checksum_ops += 1;
        let decoded = Header::decode(&payload);
        let Ok((header, body)) = decoded else {
            self.cabs[cab].counters.corrupted_rx += 1;
            self.cabs[cab].pool.reclaim(payload);
            return;
        };
        let peer = header.src_cab.index();
        if header.kind != PacketKind::Datagram && header.dst_cab.index() != cab {
            // A crossbar circuit with a stale member (its close was
            // lost in transit) duplicates packets to a CAB they were
            // never addressed to. Feeding them into transport state
            // would execute another CAB's RPCs or inject bytes into an
            // unrelated stream; discard and count instead. Multicast
            // datagrams are exempt: their dst field is advisory.
            self.cabs[cab].counters.misrouted_rx += 1;
            self.cabs[cab].pool.reclaim(payload);
            return;
        }
        if header.kind == PacketKind::Ack {
            self.telemetry.record(
                now,
                flight,
                EventKind::TransportAck { cab: cab as u16, peer: peer as u16, ack: header.ack },
            );
        }
        let mut actions = Vec::new();
        let source = match header.kind {
            PacketKind::Datagram => {
                self.cabs[cab].datagram.on_packet(now, &header, body, &mut actions);
                None
            }
            PacketKind::Data | PacketKind::Ack => {
                let local = CabId::new(cab as u16);
                let stream_cfg = self.cfg.stream;
                self.cabs[cab]
                    .streams
                    .entry(peer)
                    .or_insert_with(|| ByteStream::new(local, header.src_cab, stream_cfg))
                    .on_packet(now, &header, body, &mut actions);
                Some(TimerSource::Stream(peer))
            }
            PacketKind::Request => {
                self.cabs[cab].rpc_server.on_packet(now, &header, body, &mut actions);
                None
            }
            PacketKind::Response => {
                self.cabs[cab].rpc_client.on_packet(now, &header, body, &mut actions);
                Some(TimerSource::Rpc)
            }
        };
        self.exec_actions(cab, now, source, false, flight, actions);
        // The packet has been consumed; if this was the last reference
        // (unicast steady state), the buffer goes back to the pool for
        // the next send to encode into.
        self.cabs[cab].pool.reclaim(payload);
    }
}

/// Joins flight births against ends into a latency histogram. Map
/// iteration order does not matter: histogram observation is
/// commutative, which is exactly why the flight accounting is kept as
/// two maps until metrics time.
pub(crate) fn join_flights(
    births: &HashMap<u64, Time>,
    ends: &HashMap<u64, Time>,
    out: &mut Histogram,
) {
    for (id, birth) in births {
        if let Some(end) = ends.get(id) {
            out.observe(end.saturating_since(*birth).nanos());
        }
    }
}
