//! The node model: a 1989 UNIX workstation with a VME-attached CAB.
//!
//! "There are three main sources of inefficiency in current networking
//! implementations. First, existing application interfaces incur
//! excessive costs due to context switching and data copying between
//! the user process and the node operating system. Second, the node
//! must incur the overhead of higher-level protocols [...] Third, the
//! network interface burdens the node with interrupt handling and
//! header processing for each packet" (§3.1).
//!
//! [`NodeConfig`] carries those costs (defaults calibrated to Sun-3/4
//! era measurements cited by the paper [3,5,11]) and
//! [`NodeInterface`] selects one of the three CAB–node interfaces of
//! §6.2.3. The per-message overhead composition is pure arithmetic, so
//! experiment E12 can sweep interfaces without touching the event loop.

use core::fmt;
use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// Which CAB–node interface a process uses (§6.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeInterface {
    /// CAB memory mapped into the process: build/consume messages in
    /// place, command mailboxes, receive by polling. No system calls,
    /// no copies.
    SharedMemory,
    /// Berkeley socket emulation: system calls and node-side copies,
    /// but transport protocols still off-loaded to the CAB.
    Socket,
    /// UNIX network driver: the CAB is a "dumb" network and all
    /// transport processing runs on the node (binary compatibility).
    Driver,
}

impl NodeInterface {
    /// All three interfaces, for sweeps.
    pub const ALL: [NodeInterface; 3] =
        [NodeInterface::SharedMemory, NodeInterface::Socket, NodeInterface::Driver];
}

impl fmt::Display for NodeInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeInterface::SharedMemory => "shared-memory",
            NodeInterface::Socket => "socket",
            NodeInterface::Driver => "driver",
        };
        f.write_str(s)
    }
}

/// Cost model of the node's operating system and memory system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeConfig {
    /// One system call (trap, validate, return).
    pub syscall: Dur,
    /// One full process context switch (scheduler + VM switch).
    pub context_switch: Dur,
    /// Taking one device interrupt.
    pub interrupt: Dur,
    /// Node memory-to-memory copy bandwidth (user/kernel crossing).
    pub copy_bw: Bandwidth,
    /// VME transfer bandwidth between node memory and CAB memory.
    pub vme_bw: Bandwidth,
    /// Polling CAB memory once (shared-memory receive path).
    pub poll: Dur,
    /// Node-side transport processing per packet (driver interface
    /// only; the node CPU is slower than the CAB's dedicated SPARC and
    /// shares with the application).
    pub transport_per_packet: Dur,
    /// Building or consuming a message descriptor (all interfaces).
    pub descriptor: Dur,
}

/// The kinds of node the initial system connects (§3.2: "the initial
/// Nectar system at Carnegie Mellon will have Sun-3s, Sun-4s and Warp
/// systems as nodes") — the heterogeneity the backplane exists for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// 68020-class Sun-3 workstation.
    Sun3,
    /// SPARC-class Sun-4 workstation (~2× the Sun-3).
    Sun4,
    /// The Warp systolic array: enormous streaming bandwidth from its
    /// interface unit, but general-purpose OS services are slow — the
    /// machine "cannot efficiently implement the required communication
    /// protocols" (§1), which is why the CAB exists.
    Warp,
}

impl NodeKind {
    /// All kinds, for sweeps.
    pub const ALL: [NodeKind; 3] = [NodeKind::Sun3, NodeKind::Sun4, NodeKind::Warp];
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Sun3 => "Sun-3",
            NodeKind::Sun4 => "Sun-4",
            NodeKind::Warp => "Warp",
        };
        f.write_str(s)
    }
}

impl NodeConfig {
    /// A Sun-3/4-class node of 1988–89: tens-of-microsecond syscalls,
    /// ~100 µs context switches, single-digit-MB/s copies.
    pub fn sun_workstation() -> NodeConfig {
        NodeConfig::for_kind(NodeKind::Sun4)
    }

    /// The cost model for one of the heterogeneous node kinds.
    pub fn for_kind(kind: NodeKind) -> NodeConfig {
        match kind {
            NodeKind::Sun3 => NodeConfig {
                syscall: Dur::from_micros(50),
                context_switch: Dur::from_micros(180),
                interrupt: Dur::from_micros(45),
                copy_bw: Bandwidth::from_mbyte_per_sec(4),
                vme_bw: Bandwidth::from_mbyte_per_sec(8),
                poll: Dur::from_micros(4),
                transport_per_packet: Dur::from_micros(300),
                descriptor: Dur::from_micros(4),
            },
            NodeKind::Sun4 => NodeConfig {
                syscall: Dur::from_micros(25),
                context_switch: Dur::from_micros(100),
                interrupt: Dur::from_micros(25),
                copy_bw: Bandwidth::from_mbyte_per_sec(8),
                vme_bw: Bandwidth::from_mbyte_per_sec(10),
                poll: Dur::from_micros(2),
                transport_per_packet: Dur::from_micros(150),
                descriptor: Dur::from_micros(2),
            },
            NodeKind::Warp => NodeConfig {
                // The interface unit streams over VME at full bus rate
                // and builds descriptors fast, but OS-style services
                // (syscalls, context switches, a protocol stack) are an
                // order of magnitude worse than a workstation's — the
                // driver interface is effectively unusable, exactly the
                // §1 argument for protocol off-loading.
                syscall: Dur::from_micros(400),
                context_switch: Dur::from_micros(1_000),
                interrupt: Dur::from_micros(150),
                copy_bw: Bandwidth::from_mbyte_per_sec(2),
                vme_bw: Bandwidth::from_mbyte_per_sec(10),
                poll: Dur::from_micros(1),
                transport_per_packet: Dur::from_micros(2_000),
                descriptor: Dur::from_micros(1),
            },
        }
    }

    /// Node-side overhead to *send* a message of `bytes` in `packets`
    /// packets, before the CAB (or fiber) sees the first byte. The VME
    /// transfer of the payload itself is charged separately (it
    /// pipelines with the fiber), except where noted.
    pub fn send_overhead(&self, iface: NodeInterface, bytes: usize, packets: usize) -> Dur {
        match iface {
            // Build in place in mapped CAB memory; one descriptor in the
            // command mailbox. No syscalls, no copies.
            NodeInterface::SharedMemory => self.descriptor,
            // One syscall plus a user-to-kernel copy of the payload.
            NodeInterface::Socket => {
                self.syscall + self.copy_bw.transfer_time(bytes) + self.descriptor
            }
            // Full node-resident protocol stack: per-packet transport
            // processing plus the socket costs.
            NodeInterface::Driver => {
                self.syscall
                    + self.copy_bw.transfer_time(bytes)
                    + self.transport_per_packet * packets as u64
                    + self.descriptor
            }
        }
    }

    /// Node-side overhead to *receive* a message of `bytes` in
    /// `packets` packets, after the CAB has it (or, for
    /// [`NodeInterface::Driver`], after raw packets reach node memory).
    pub fn recv_overhead(&self, iface: NodeInterface, bytes: usize, packets: usize) -> Dur {
        match iface {
            // The receiving process polls mapped CAB memory and reads
            // the message in place.
            NodeInterface::SharedMemory => self.poll + self.descriptor,
            // One wakeup interrupt, a context switch to the blocked
            // process, one syscall, one kernel-to-user copy.
            NodeInterface::Socket => {
                self.interrupt
                    + self.context_switch
                    + self.syscall
                    + self.copy_bw.transfer_time(bytes)
                    + self.descriptor
            }
            // Per-packet interrupts and node transport processing, then
            // the socket-style delivery path.
            NodeInterface::Driver => {
                (self.interrupt + self.transport_per_packet) * packets as u64
                    + self.context_switch
                    + self.syscall
                    + self.copy_bw.transfer_time(bytes)
                    + self.descriptor
            }
        }
    }

    /// Time to move `bytes` across the VME bus (one direction).
    pub fn vme_time(&self, bytes: usize) -> Dur {
        self.vme_bw.transfer_time(bytes)
    }
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig::sun_workstation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_ordering_matches_paper() {
        // §6.2.3 presents the interfaces from most to least efficient:
        // shared memory < socket < driver.
        let n = NodeConfig::sun_workstation();
        for &(bytes, packets) in &[(64usize, 1usize), (4096, 5), (65536, 67)] {
            let sm = n.send_overhead(NodeInterface::SharedMemory, bytes, packets)
                + n.recv_overhead(NodeInterface::SharedMemory, bytes, packets);
            let so = n.send_overhead(NodeInterface::Socket, bytes, packets)
                + n.recv_overhead(NodeInterface::Socket, bytes, packets);
            let dr = n.send_overhead(NodeInterface::Driver, bytes, packets)
                + n.recv_overhead(NodeInterface::Driver, bytes, packets);
            assert!(sm < so, "shared memory beats sockets at {bytes} B");
            assert!(so < dr, "sockets beat the dumb-network driver at {bytes} B");
        }
    }

    #[test]
    fn shared_memory_node_budget_fits_100us_goal() {
        // §2.3: node-to-node under 100 us. With the shared-memory
        // interface and a small message, node-side overhead plus two
        // VME crossings must leave most of the budget for the CABs.
        let n = NodeConfig::sun_workstation();
        let bytes = 64;
        let node_side = n.send_overhead(NodeInterface::SharedMemory, bytes, 1)
            + n.recv_overhead(NodeInterface::SharedMemory, bytes, 1)
            + n.vme_time(bytes) * 2;
        assert!(
            node_side.as_micros_f64() < 25.0,
            "node-side cost {node_side} leaves room for the ~30 us CAB path"
        );
    }

    #[test]
    fn driver_interface_scales_with_packets() {
        let n = NodeConfig::sun_workstation();
        let one = n.recv_overhead(NodeInterface::Driver, 1024, 1);
        let ten = n.recv_overhead(NodeInterface::Driver, 10240, 10);
        assert!(ten > one * 5, "per-packet interrupts dominate the driver path");
    }

    #[test]
    fn copies_scale_with_bytes() {
        let n = NodeConfig::sun_workstation();
        let small = n.send_overhead(NodeInterface::Socket, 100, 1);
        let big = n.send_overhead(NodeInterface::Socket, 100_000, 98);
        // 100 KB at 8 MB/s = 12.5 ms of copying.
        assert!(big - small > Dur::from_millis(12));
    }

    #[test]
    fn heterogeneous_kinds_order_as_expected() {
        // Sun-4 beats Sun-3 everywhere; the Warp's shared-memory path
        // is competitive (fast descriptors) but its driver path is
        // hopeless — the reason protocol off-loading exists.
        let s3 = NodeConfig::for_kind(NodeKind::Sun3);
        let s4 = NodeConfig::for_kind(NodeKind::Sun4);
        let warp = NodeConfig::for_kind(NodeKind::Warp);
        for &(bytes, pkts) in &[(64usize, 1usize), (4096, 5)] {
            assert!(
                s4.send_overhead(NodeInterface::Socket, bytes, pkts)
                    < s3.send_overhead(NodeInterface::Socket, bytes, pkts)
            );
        }
        assert!(
            warp.send_overhead(NodeInterface::SharedMemory, 4096, 5)
                < warp.send_overhead(NodeInterface::Driver, 4096, 5) / 10,
            "the Warp must use the shared-memory interface"
        );
        assert_eq!(NodeKind::Warp.to_string(), "Warp");
        assert_eq!(NodeKind::ALL.len(), 3);
    }

    #[test]
    fn vme_matches_published_rate() {
        let n = NodeConfig::sun_workstation();
        assert_eq!(n.vme_time(1_000_000), Dur::from_millis(100));
    }
}
