//! High-level system facade and measurement probes.
//!
//! [`NectarSystem`] wraps a [`World`] with the constructors and probes
//! the experiment harness uses: one call builds a Fig.-2 single-HUB
//! system or a Fig.-4 mesh, and one call measures a latency or a
//! throughput with the same methodology the paper's goals are stated
//! in (process-to-process, §2.3).

use crate::node::NodeInterface;
use crate::topology::Topology;
use crate::world::{SystemConfig, World};
use nectar_sim::time::{Dur, Time};
use nectar_sim::units::Bandwidth;

/// Outcome of a one-way latency measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyReport {
    /// When the sending process called send.
    pub sent_at: Time,
    /// When the receiving process had the message.
    pub delivered_at: Time,
    /// `delivered_at - sent_at`.
    pub latency: Dur,
}

/// Outcome of a throughput measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThroughputReport {
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Wall-clock (simulated) span of the transfer.
    pub elapsed: Dur,
    /// Achieved rate.
    pub rate: Bandwidth,
}

/// A running Nectar system plus measurement probes.
pub struct NectarSystem {
    world: World,
}

impl NectarSystem {
    /// Fig. 2: a single HUB with `cabs` CABs.
    pub fn single_hub(cabs: usize, cfg: SystemConfig) -> NectarSystem {
        let ports = cfg.hub.ports;
        NectarSystem { world: World::new(Topology::single_hub(cabs, ports), cfg) }
    }

    /// Fig. 4: a `rows × cols` mesh of HUB clusters.
    pub fn mesh(rows: usize, cols: usize, cabs_per_hub: usize, cfg: SystemConfig) -> NectarSystem {
        let ports = cfg.hub.ports;
        NectarSystem { world: World::new(Topology::mesh2d(rows, cols, cabs_per_hub, ports), cfg) }
    }

    /// Any validated topology.
    pub fn custom(topo: Topology, cfg: SystemConfig) -> NectarSystem {
        NectarSystem { world: World::new(topo, cfg) }
    }

    /// The underlying world (for direct workload injection).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Runs the world until `deliveries` total messages have been
    /// delivered or `deadline` passes. Returns `true` on success.
    /// `drain` lists `(cab, mailbox)` pairs emptied along the way so
    /// long-running bulk transfers do not fill a receive mailbox.
    fn run_until_deliveries_draining(
        &mut self,
        count: usize,
        deadline: Time,
        drain: &[(usize, u16)],
    ) -> bool {
        while self.world.deliveries.len() < count {
            let Some(next) = self.world.next_event_time() else { return false };
            if next > deadline {
                return false;
            }
            self.world.run_until(next);
            for &(cab, mailbox) in drain {
                while self.world.mailbox_take(cab, mailbox).is_some() {}
            }
        }
        true
    }

    fn run_until_deliveries(&mut self, count: usize, deadline: Time) -> bool {
        self.run_until_deliveries_draining(count, deadline, &[])
    }

    /// One-way process-to-process latency between two CAB-resident
    /// tasks (the §2.3 "under 30 µs" measurement), using the reliable
    /// byte-stream transport.
    ///
    /// # Panics
    ///
    /// Panics if the message is not delivered within 100 ms of
    /// simulated time (a wedged protocol, not a slow one).
    pub fn measure_cab_to_cab(&mut self, src: usize, dst: usize, bytes: usize) -> LatencyReport {
        let sent_at = self.world.now();
        let before = self.world.deliveries.len();
        let payload = vec![0xA5u8; bytes];
        let msg_id = self.world.send_stream_now(src, dst, 1, 2, &payload);
        let deadline = sent_at + Dur::from_millis(100);
        // Scan for *our* delivery: unrelated traffic (a residual
        // workload) may land interleaved with the probe.
        let mine = |d: &crate::world::Delivery| {
            d.cab == dst && d.mailbox == 2 && d.msg_id == msg_id as u64 && d.len == bytes
        };
        loop {
            if let Some(d) = self.world.deliveries[before..].iter().find(|d| mine(d)) {
                return LatencyReport {
                    sent_at,
                    delivered_at: d.at,
                    latency: d.at.saturating_since(sent_at),
                };
            }
            let next = self
                .world
                .next_event_time()
                .unwrap_or_else(|| panic!("message CAB{src}->CAB{dst} was never delivered"));
            assert!(next <= deadline, "message CAB{src}->CAB{dst} took over 100 ms");
            self.world.run_until(next);
        }
    }

    /// Request-response round-trip time, with the server application
    /// responding `resp_bytes` as soon as the request is delivered.
    pub fn measure_rpc_rtt(
        &mut self,
        src: usize,
        dst: usize,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> Dur {
        let t0 = self.world.now();
        let before = self.world.deliveries.len();
        let tx = self.world.send_rpc_now(src, dst, 5, 80, &vec![1u8; req_bytes]);
        assert!(
            self.run_until_deliveries(before + 1, t0 + Dur::from_millis(100)),
            "request never delivered"
        );
        // The server application answers immediately.
        assert!(self.world.rpc_respond_now(dst, src, tx, &vec![2u8; resp_bytes]));
        assert!(
            self.run_until_deliveries(before + 2, t0 + Dur::from_millis(200)),
            "response never delivered"
        );
        let resp = &self.world.deliveries[before + 1];
        assert_eq!(resp.cab, src);
        resp.at.saturating_since(t0)
    }

    /// One-way node-process to node-process latency through one of the
    /// three CAB–node interfaces (§6.2.3): node-side overheads and VME
    /// crossings are composed around the measured CAB-to-CAB path.
    pub fn measure_node_to_node(
        &mut self,
        src: usize,
        dst: usize,
        bytes: usize,
        iface: NodeInterface,
    ) -> LatencyReport {
        let node = self.world.config().node.clone();
        let max_payload = self.world.config().stream.max_payload;
        let packets = nectar_proto::transport::frag::fragment_count(bytes, max_payload);
        let send_extra = node.send_overhead(iface, bytes, packets) + node.vme_time(bytes);
        let recv_extra = node.recv_overhead(iface, bytes, packets) + node.vme_time(bytes);
        let sent_at = self.world.now();
        let cab_report = self.measure_cab_to_cab(src, dst, bytes);
        let delivered_at = cab_report.delivered_at + send_extra + recv_extra;
        LatencyReport {
            sent_at,
            delivered_at,
            latency: cab_report.latency + send_extra + recv_extra,
        }
    }

    /// Streams `total` bytes from `src` to `dst` in `msg_size` chunks
    /// and reports the achieved rate (receiver-side, payload bytes).
    pub fn measure_stream_throughput(
        &mut self,
        src: usize,
        dst: usize,
        total: usize,
        msg_size: usize,
    ) -> ThroughputReport {
        let t0 = self.world.now();
        let before_count = self.world.deliveries.len();
        let messages = total.div_ceil(msg_size);
        let payload = vec![0x5Au8; msg_size];
        for _ in 0..messages {
            self.world.send_stream_now(src, dst, 1, 2, &payload);
        }
        assert!(
            self.run_until_deliveries_draining(
                before_count + messages,
                t0 + Dur::from_secs(30),
                &[(dst, 2)],
            ),
            "bulk stream did not finish"
        );
        let last = self.world.deliveries.last().expect("delivered");
        let bytes = (messages * msg_size) as u64;
        let elapsed = last.at.saturating_since(t0);
        ThroughputReport { bytes, elapsed, rate: rate_of(bytes, elapsed) }
    }

    /// All-CABs ring traffic: CAB `i` streams `bytes_per_cab` to CAB
    /// `i+1 mod n` simultaneously; reports delivered aggregate rate
    /// (the 1.6 Gbit/s backplane claim, E04).
    pub fn measure_ring_aggregate(
        &mut self,
        bytes_per_cab: usize,
        msg_size: usize,
    ) -> ThroughputReport {
        let n = self.world.topology().cab_count();
        assert!(n >= 2, "a ring needs two CABs");
        let t0 = self.world.now();
        let before = self.world.deliveries.len();
        let messages = bytes_per_cab.div_ceil(msg_size);
        let payload = vec![0x3Cu8; msg_size];
        for i in 0..n {
            for _ in 0..messages {
                self.world.send_stream_now(i, (i + 1) % n, 1, 2, &payload);
            }
        }
        let drain: Vec<(usize, u16)> = (0..n).map(|i| (i, 2)).collect();
        assert!(
            self.run_until_deliveries_draining(
                before + n * messages,
                t0 + Dur::from_secs(60),
                &drain
            ),
            "ring traffic did not finish"
        );
        let last = self.world.deliveries.last().expect("delivered");
        let bytes = (n * messages * msg_size) as u64;
        let elapsed = last.at.saturating_since(t0);
        ThroughputReport { bytes, elapsed, rate: rate_of(bytes, elapsed) }
    }

    /// Hardware multicast to `dsts` vs. the same payload sent as
    /// sequential unicasts (E06). Returns `(multicast, unicast)` spans
    /// from send to the *last* delivery.
    pub fn measure_multicast_vs_unicast(
        &mut self,
        src: usize,
        dsts: &[usize],
        bytes: usize,
    ) -> (Dur, Dur) {
        let payload = vec![0x77u8; bytes];
        // Multicast pass.
        let t0 = self.world.now();
        let before = self.world.deliveries.len();
        self.world.send_multicast_now(src, dsts, 1, 2, &payload);
        assert!(
            self.run_until_deliveries(before + dsts.len(), t0 + Dur::from_millis(100)),
            "multicast never completed"
        );
        let mc = self.world.deliveries.last().expect("delivered").at.saturating_since(t0);
        // Unicast pass (datagrams, like the multicast).
        let t1 = self.world.now();
        let before = self.world.deliveries.len();
        for &d in dsts {
            self.world.send_datagram_now(src, d, 1, 2, &payload);
        }
        assert!(
            self.run_until_deliveries(before + dsts.len(), t1 + Dur::from_millis(100)),
            "unicasts never completed"
        );
        let uc = self.world.deliveries.last().expect("delivered").at.saturating_since(t1);
        (mc, uc)
    }
}

/// The analytic CAB-to-CAB latency budget for a `bytes` message through
/// one HUB — the decomposition EXPERIMENTS.md records, as code so the
/// harness can print it next to the measurement (E09).
pub fn latency_budget(cfg: &SystemConfig, bytes: usize) -> Vec<(&'static str, Dur)> {
    let wire_bytes =
        bytes + nectar_proto::header::HEADER_BYTES + nectar_hub::item::PACKET_FRAMING_BYTES;
    vec![
        ("send software (header + datalink + DMA setup)", cfg.cab.send_path()),
        ("HUB connection setup + transit", cfg.hub.connect_latency() + cfg.hub.transit),
        ("fiber serialization", cfg.hub.wire_time(wire_bytes)),
        ("receive software (interrupt + upcall + header + DMA)", cfg.cab.recv_path()),
        (
            "application wakeup (thread switch + mailbox)",
            cfg.cab.thread_switch + cfg.cab.mailbox_op,
        ),
    ]
}

fn rate_of(bytes: u64, elapsed: Dur) -> Bandwidth {
    if elapsed.is_zero() || bytes == 0 {
        return Bandwidth::from_bits_per_sec(1);
    }
    let bps = (bytes as u128 * 8 * 1_000_000_000 / elapsed.nanos() as u128) as u64;
    Bandwidth::from_bits_per_sec(bps.max(1))
}
