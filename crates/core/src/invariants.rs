//! Transport-invariant checker: what must hold at quiescence, no
//! matter what the chaos schedule did to the wire.
//!
//! The chaos subsystem ([`nectar_sim::chaos`]) may drop, duplicate,
//! reorder, corrupt, and delay packets, flap links, and kill HUB
//! ports. The transport protocols promise to hide all of it. This
//! module states that promise as four checkable invariants:
//!
//! 1. **Exactly-once, in-order delivery** per byte stream: every
//!    message the application sent arrives exactly once, in send
//!    order, byte-identical — no loss, no duplication, no
//!    reordering visible above the transport.
//! 2. **At-most-once execution** per RPC transaction: a server never
//!    executes a request twice, however many times the client
//!    retransmitted it (§6.3 semantics).
//! 3. **Buffer-pool conservation**: every wire buffer acquired from
//!    the [`BufPool`](nectar_hub::pool::BufPool) is handed back
//!    exactly once — faults destroy packets, not buffers.
//! 4. **Counter coherence**: sender and receiver agree — packets
//!    first-sent equal packets accepted, messages completed equal
//!    messages delivered, and nothing is still in flight.
//!
//! The checker is deterministic: run the same seeded workload under
//! the same [`ChaosSchedule`](nectar_sim::chaos::ChaosSchedule) twice
//! and the verdict list is identical. On violation,
//! [`replay_line`] renders the `report` binary flags that reproduce
//! the failing schedule.
//!
//! # Examples
//!
//! ```
//! use nectar_core::invariants::InvariantChecker;
//! use nectar_core::prelude::*;
//! use nectar_sim::prelude::*;
//!
//! let mut world = World::new(Topology::single_hub(2, 16), SystemConfig::default());
//! world.set_chaos(ChaosSchedule::new(7).with(Clause::new(Fault::Loss { rate: 0.05 })));
//! let mut checker = InvariantChecker::new();
//! let payload = vec![42u8; 3000];
//! world.send_stream_now(0, 1, 1, 2, &payload);
//! checker.expect_stream(0, 1, 2, &payload);
//! world.run_until(Time::from_millis(500));
//! let violations = checker.check(&mut world);
//! assert!(violations.is_empty(), "{violations:?}");
//! ```

use crate::shard::ShardedWorld;
use crate::world::World;
use nectar_hub::pool::PoolStats;
use nectar_kernel::mailbox::Message;
use nectar_proto::transport::bytestream::ByteStreamStats;
use nectar_sim::chaos::ChaosStats;
use std::fmt;

/// Everything the checker reads from a world, abstracted so the same
/// audit runs against the sequential [`World`] and the
/// conservative-parallel [`ShardedWorld`] — the determinism story
/// (DESIGN.md §11) demands that both produce the same verdicts, and a
/// shared audit path is how the differential tests state that.
pub trait Auditable {
    /// Takes the next message out of a mailbox (drains in audit order).
    fn mailbox_take(&mut self, cab: usize, mailbox: u16) -> Option<Message>;
    /// RPC server counters: `(executed, duplicates, replays)`.
    fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64);
    /// Wire-buffer pool counters, summed over every CAB pool.
    fn pool_stats(&self) -> PoolStats;
    /// Applied-fault counters, if chaos is armed.
    fn chaos_stats(&self) -> Option<ChaosStats>;
    /// Buffers destroyed at HUBs by chaos (freed, never reclaimed).
    fn chaos_freed(&self) -> u64;
    /// Extra packet copies emitted by HUB fan-out.
    fn hub_fanout_copies(&self) -> u64;
    /// `true` when streams have drained and no RPC is outstanding.
    fn transport_quiescent(&self) -> bool;
    /// Byte-stream statistics from `src` towards `dst`.
    fn stream_stats(&self, src: usize, dst: usize) -> Option<ByteStreamStats>;
}

impl Auditable for World {
    fn mailbox_take(&mut self, cab: usize, mailbox: u16) -> Option<Message> {
        World::mailbox_take(self, cab, mailbox)
    }
    fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64) {
        World::rpc_server_stats(self, idx)
    }
    fn pool_stats(&self) -> PoolStats {
        World::pool_stats(self)
    }
    fn chaos_stats(&self) -> Option<ChaosStats> {
        World::chaos_stats(self)
    }
    fn chaos_freed(&self) -> u64 {
        World::chaos_freed(self)
    }
    fn hub_fanout_copies(&self) -> u64 {
        World::hub_fanout_copies(self)
    }
    fn transport_quiescent(&self) -> bool {
        World::transport_quiescent(self)
    }
    fn stream_stats(&self, src: usize, dst: usize) -> Option<ByteStreamStats> {
        World::stream_stats(self, src, dst)
    }
}

impl Auditable for ShardedWorld {
    fn mailbox_take(&mut self, cab: usize, mailbox: u16) -> Option<Message> {
        ShardedWorld::mailbox_take(self, cab, mailbox)
    }
    fn rpc_server_stats(&self, idx: usize) -> (u64, u64, u64) {
        ShardedWorld::rpc_server_stats(self, idx)
    }
    fn pool_stats(&self) -> PoolStats {
        ShardedWorld::pool_stats(self)
    }
    fn chaos_stats(&self) -> Option<ChaosStats> {
        ShardedWorld::chaos_stats(self)
    }
    fn chaos_freed(&self) -> u64 {
        ShardedWorld::chaos_freed(self)
    }
    fn hub_fanout_copies(&self) -> u64 {
        ShardedWorld::hub_fanout_copies(self)
    }
    fn transport_quiescent(&self) -> bool {
        ShardedWorld::transport_quiescent(self)
    }
    fn stream_stats(&self, src: usize, dst: usize) -> Option<ByteStreamStats> {
        ShardedWorld::stream_stats(self, src, dst)
    }
}

/// One expected byte-stream delivery.
#[derive(Clone, Debug)]
struct StreamExpectation {
    src: usize,
    dst: usize,
    mailbox: u16,
    payload: Vec<u8>,
}

/// A broken transport invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A sent message never reached its destination mailbox.
    Lost {
        /// Sending CAB.
        src: usize,
        /// Receiving CAB.
        dst: usize,
        /// Destination mailbox.
        mailbox: u16,
        /// Position of the message in the flow's send order.
        index: usize,
    },
    /// A message arrived with the wrong bytes or out of send order.
    Mismatched {
        /// Receiving CAB.
        dst: usize,
        /// Destination mailbox.
        mailbox: u16,
        /// Position in the flow's send order.
        index: usize,
        /// What went wrong.
        detail: String,
    },
    /// A mailbox held more messages than were sent to it.
    Duplicated {
        /// Receiving CAB.
        dst: usize,
        /// Destination mailbox.
        mailbox: u16,
        /// Messages beyond the expected count.
        extra: usize,
    },
    /// A server executed more requests than clients issued.
    MultipleExecution {
        /// Serving CAB.
        server: usize,
        /// Requests the server executed.
        executed: u64,
        /// Distinct transactions clients issued to it.
        issued: u64,
    },
    /// Buffer acquisitions and reclaim attempts do not balance.
    PoolLeak {
        /// `pool.hits + pool.misses + chaos.duplicates +
        /// chaos.corruptions` (each duplicate and each
        /// corruption-replacement buffer adds one reclaim attempt
        /// that had no pool acquisition).
        acquired: u64,
        /// `pool.reclaims + pool.dropped + chaos_freed` (buffers a
        /// hub-side chaos drop destroyed never reach any pool — they
        /// are freed straight to the allocator and counted apart).
        returned: u64,
    },
    /// Sender- and receiver-side counters disagree at quiescence.
    CounterMismatch {
        /// Sending CAB.
        src: usize,
        /// Receiving CAB.
        dst: usize,
        /// Which counters, and their values.
        detail: String,
    },
    /// A stream or RPC client still holds in-flight state.
    NotQuiescent {
        /// Which component is still busy.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Lost { src, dst, mailbox, index } => {
                write!(f, "lost: message #{index} of cab{src}->cab{dst} mailbox {mailbox}")
            }
            Violation::Mismatched { dst, mailbox, index, detail } => {
                write!(f, "mismatch: message #{index} at cab{dst} mailbox {mailbox}: {detail}")
            }
            Violation::Duplicated { dst, mailbox, extra } => {
                write!(f, "duplicate: {extra} extra message(s) at cab{dst} mailbox {mailbox}")
            }
            Violation::MultipleExecution { server, executed, issued } => {
                write!(f, "multiple execution: cab{server} executed {executed} of {issued} issued")
            }
            Violation::PoolLeak { acquired, returned } => {
                write!(f, "pool leak: {acquired} buffers acquired, {returned} returned")
            }
            Violation::CounterMismatch { src, dst, detail } => {
                write!(f, "counter mismatch cab{src}->cab{dst}: {detail}")
            }
            Violation::NotQuiescent { detail } => write!(f, "not quiescent: {detail}"),
        }
    }
}

/// Records what the workload sent, then audits the world at
/// quiescence. See the [module docs](self) for the invariants.
#[derive(Default)]
pub struct InvariantChecker {
    streams: Vec<StreamExpectation>,
    /// Distinct RPC transactions issued, per server CAB index.
    rpc_issued: Vec<(usize, u64)>,
}

impl InvariantChecker {
    /// A checker expecting nothing (vacuously satisfied).
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Records that the workload sent `payload` from `src` to `dst`'s
    /// `mailbox` over the reliable byte stream. Call in send order;
    /// per `(dst, mailbox)` the checker demands exactly this sequence.
    /// Give each `src -> dst` flow its own destination mailbox —
    /// cross-sender interleaving within one mailbox is unordered.
    pub fn expect_stream(&mut self, src: usize, dst: usize, mailbox: u16, payload: &[u8]) {
        self.streams.push(StreamExpectation { src, dst, mailbox, payload: payload.to_vec() });
    }

    /// Records that a client issued one RPC transaction to `server`.
    pub fn expect_rpc(&mut self, server: usize) {
        match self.rpc_issued.iter_mut().find(|(s, _)| *s == server) {
            Some((_, n)) => *n += 1,
            None => self.rpc_issued.push((server, 1)),
        }
    }

    /// Audits `world` against everything recorded. Call at
    /// quiescence (after [`run_to_quiescence`](World::run_to_quiescence)
    /// or a generous [`run_until`](World::run_until)); an empty vec
    /// means every invariant held. Drains the expected mailboxes.
    /// Accepts any [`Auditable`] world — sequential or sharded.
    pub fn check<A: Auditable>(&mut self, world: &mut A) -> Vec<Violation> {
        let mut violations = Vec::new();
        self.check_streams(world, &mut violations);
        self.check_rpc(world, &mut violations);
        self.check_pool(world, &mut violations);
        self.check_counters(world, &mut violations);
        violations
    }

    /// Invariant 1: exactly-once in-order byte-identical delivery.
    fn check_streams<A: Auditable>(&self, world: &mut A, violations: &mut Vec<Violation>) {
        let mut flows: Vec<(usize, u16)> = Vec::new();
        for e in &self.streams {
            if !flows.contains(&(e.dst, e.mailbox)) {
                flows.push((e.dst, e.mailbox));
            }
        }
        for (dst, mailbox) in flows {
            let expected: Vec<&StreamExpectation> =
                self.streams.iter().filter(|e| e.dst == dst && e.mailbox == mailbox).collect();
            let mut got = Vec::new();
            while let Some(msg) = world.mailbox_take(dst, mailbox) {
                got.push(msg);
            }
            for (index, e) in expected.iter().enumerate() {
                match got.get(index) {
                    None => violations.push(Violation::Lost { src: e.src, dst, mailbox, index }),
                    Some(msg) if msg.data() != &e.payload[..] => {
                        let detail = if msg.data().len() != e.payload.len() {
                            format!("length {} != sent {}", msg.data().len(), e.payload.len())
                        } else {
                            "payload bytes differ (reordered or corrupted)".to_owned()
                        };
                        violations.push(Violation::Mismatched { dst, mailbox, index, detail });
                    }
                    Some(_) => {}
                }
            }
            if got.len() > expected.len() {
                violations.push(Violation::Duplicated {
                    dst,
                    mailbox,
                    extra: got.len() - expected.len(),
                });
            }
        }
    }

    /// Invariant 2: at-most-once execution per RPC transaction.
    fn check_rpc<A: Auditable>(&self, world: &A, violations: &mut Vec<Violation>) {
        for &(server, issued) in &self.rpc_issued {
            let (executed, _dups, _replays) = world.rpc_server_stats(server);
            if executed > issued {
                violations.push(Violation::MultipleExecution { server, executed, issued });
            }
        }
    }

    /// Invariant 3: buffer-pool conservation. Chaos duplicates share
    /// the original buffer (a second reclaim attempt with no
    /// acquisition) and corruption replaces the buffer (the
    /// replacement's reclaim likewise has no pool acquisition), so
    /// both join the acquisition side of the ledger. So does HUB
    /// fan-out: each output beyond the first — multicast, or a stale
    /// circuit member left behind by a lost close — emits one more
    /// shared copy of the buffer, and every copy is returned exactly
    /// once wherever it terminates.
    fn check_pool<A: Auditable>(&self, world: &A, violations: &mut Vec<Violation>) {
        let pool = world.pool_stats();
        let chaos = world.chaos_stats().unwrap_or_default();
        let acquired = pool.hits
            + pool.misses
            + chaos.duplicates
            + chaos.corruptions
            + world.hub_fanout_copies();
        // A hub-side chaos drop frees the buffer straight to the
        // allocator (there is no "right" per-CAB pool at a HUB), so it
        // counts on the returned side of the ledger separately.
        let returned = pool.reclaims + pool.dropped + world.chaos_freed();
        if acquired != returned {
            violations.push(Violation::PoolLeak { acquired, returned });
        }
    }

    /// Invariant 4: counter coherence and transport quiescence.
    fn check_counters<A: Auditable>(&self, world: &A, violations: &mut Vec<Violation>) {
        if !world.transport_quiescent() {
            violations.push(Violation::NotQuiescent {
                detail: "a stream holds in-flight/backlogged data or an RPC call is outstanding"
                    .to_owned(),
            });
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for e in &self.streams {
            if !pairs.contains(&(e.src, e.dst)) {
                pairs.push((e.src, e.dst));
            }
        }
        for (src, dst) in pairs {
            let Some(tx) = world.stream_stats(src, dst) else { continue };
            let Some(rx) = world.stream_stats(dst, src) else {
                violations.push(Violation::CounterMismatch {
                    src,
                    dst,
                    detail: "receiver side has no stream state".to_owned(),
                });
                continue;
            };
            if tx.data_sent != rx.accepted {
                violations.push(Violation::CounterMismatch {
                    src,
                    dst,
                    detail: format!(
                        "data_sent {} != accepted {} (a first transmission vanished or doubled)",
                        tx.data_sent, rx.accepted
                    ),
                });
            }
            if tx.completed != rx.delivered {
                violations.push(Violation::CounterMismatch {
                    src,
                    dst,
                    detail: format!("completed {} != delivered {}", tx.completed, rx.delivered),
                });
            }
        }
    }
}

/// The `report` binary flags that replay `schedule` exactly:
/// `--chaos-seed <seed> --chaos-spec '<spec>'`.
pub fn replay_line(schedule: &nectar_sim::chaos::ChaosSchedule) -> String {
    format!("--chaos-seed {} --chaos-spec '{}'", schedule.seed, schedule.spec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::world::SystemConfig;
    use nectar_sim::time::Time;

    #[test]
    fn clean_run_satisfies_all_invariants() {
        let mut world = World::new(Topology::single_hub(2, 16), SystemConfig::default());
        let mut checker = InvariantChecker::new();
        let payload = vec![7u8; 4000];
        world.send_stream_now(0, 1, 1, 2, &payload);
        checker.expect_stream(0, 1, 2, &payload);
        world.run_until(Time::from_millis(100));
        let v = checker.check(&mut world);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lost_message_is_reported() {
        let mut world = World::new(Topology::single_hub(2, 16), SystemConfig::default());
        let mut checker = InvariantChecker::new();
        // Expect a message that was never sent: the checker must flag
        // it as lost rather than pass vacuously.
        checker.expect_stream(0, 1, 2, &[1, 2, 3]);
        world.run_until(Time::from_millis(1));
        let v = checker.check(&mut world);
        assert!(
            v.iter().any(|x| matches!(x, Violation::Lost { .. })),
            "expected a Lost violation, got {v:?}"
        );
    }

    #[test]
    fn violations_render_replay_context() {
        use nectar_sim::chaos::{ChaosSchedule, Clause, Fault};
        let s = ChaosSchedule::new(42).with(Clause::new(Fault::Loss { rate: 0.125 }));
        let line = replay_line(&s);
        assert!(line.contains("--chaos-seed 42"), "{line}");
        assert!(line.contains("loss("), "{line}");
        let v = Violation::PoolLeak { acquired: 10, returned: 9 };
        assert_eq!(v.to_string(), "pool leak: 10 buffers acquired, 9 returned");
    }
}
