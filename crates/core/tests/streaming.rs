//! Differential tests for the streaming doctor: incremental
//! bounded-memory analysis must reach **exactly** the post-hoc verdict.
//!
//! For every topology × schedule case, a sequential [`World`] runs the
//! workload with the full flight recorder on and the classic
//! [`diagnose`] pass over the canonically sorted capture produces the
//! reference [`DoctorReport`]. The same workload then runs again with a
//! [`StreamingDoctor`] attached — once on a sequential world (telemetry
//! drained and folded every engine step) and once on a four-shard
//! [`ShardedWorld`] (per-shard captures folded at window barriers in
//! canonical order) — and every observable of the final report must be
//! bit-identical: the rendered findings, the critical-path segment
//! attribution, the histogram quantiles, and the flight counts. No
//! tolerance, no "almost": the streaming fold is only admissible
//! because it is indistinguishable from keeping every event.

use nectar_core::prelude::*;
use nectar_sim::analysis::critical_path::Segment;
use nectar_sim::analysis::streaming::{StreamConfig, StreamingDoctor};
use nectar_sim::analysis::{diagnose, DoctorReport};
use nectar_sim::chaos::{ChaosSchedule, Clause, Fault};
use nectar_sim::time::Time;
use std::sync::Arc;

/// Deadline generous enough for every topology here, chaos included.
const DEADLINE: Time = Time::from_millis(400);

/// A deterministic mixed workload: a cross-system stream wave, a
/// neighbour datagram wave, and return streams — enough traffic to
/// light up the retransmit, head-of-line, and silent-drop detectors
/// under chaos while staying small enough for six differential cases.
fn workload(topo: &Topology) -> Vec<(Time, usize, AppSend)> {
    let cabs = topo.cab_count();
    let mut sends: Vec<(Time, usize, AppSend)> = Vec::new();
    for src in 0..cabs {
        let dst = (src + cabs / 2) % cabs;
        if dst == src {
            continue;
        }
        let data: Arc<[u8]> = vec![(13 + 29 * src) as u8; 300 + 31 * src].into();
        sends.push((
            Time::from_micros(2 + src as u64),
            src,
            AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 100, data },
        ));
    }
    for src in 0..cabs {
        let dst = (src + 1) % cabs;
        if dst == src {
            continue;
        }
        let data: Arc<[u8]> = vec![(src * 7) as u8; 120].into();
        sends.push((
            Time::from_micros(150 + src as u64),
            src,
            AppSend::Datagram { dst, src_mailbox: 1, dst_mailbox: 70, data },
        ));
    }
    for src in 0..cabs {
        let dst = (src + cabs / 2) % cabs;
        if dst == src {
            continue;
        }
        let data: Arc<[u8]> = vec![(5 + 11 * src) as u8; 650].into();
        sends.push((
            Time::from_micros(200 + 3 * src as u64),
            dst,
            AppSend::Stream { dst: src, src_mailbox: 1, dst_mailbox: 101, data },
        ));
    }
    sends
}

/// The chaos schedule streaming must survive with a bit-identical
/// verdict: loss, corruption, and duplication at once, so the capture
/// contains undelivered, malformed, and resent flights.
fn chaos() -> ChaosSchedule {
    ChaosSchedule::new(0xBEEFCAFE)
        .with(Clause::new(Fault::Loss { rate: 0.03 }))
        .with(Clause::new(Fault::Corrupt { rate: 0.02 }))
        .with(Clause::new(Fault::Duplicate { rate: 0.02 }))
}

/// The post-hoc reference: full capture, canonical sort, classic
/// `diagnose` with the world's metrics registry.
fn post_hoc(topo: &Topology, schedule: Option<&ChaosSchedule>) -> DoctorReport {
    let mut world = World::new(topo.clone(), SystemConfig::default());
    world.enable_observability();
    if let Some(s) = schedule {
        world.set_chaos(s.clone());
    }
    for (at, cab, send) in workload(topo) {
        world.schedule_send(at, cab, send.clone());
    }
    world.run_to_quiescence(DEADLINE);
    let metrics = world.metrics();
    assert_eq!(
        metrics.counter("telemetry.dropped_events"),
        0,
        "reference capture overflowed; the differential would be vacuous"
    );
    let mut events = world.telemetry_events();
    canonical_telemetry_sort(&mut events);
    diagnose(&events, Some(&metrics))
}

/// One streamed run on a sequential world.
fn streamed_sequential(
    topo: &Topology,
    schedule: Option<&ChaosSchedule>,
) -> (StreamingDoctor, DoctorReport) {
    let mut world = World::new(topo.clone(), SystemConfig::default());
    world.attach_streaming(StreamConfig::default());
    if let Some(s) = schedule {
        world.set_chaos(s.clone());
    }
    for (at, cab, send) in workload(topo) {
        world.schedule_send(at, cab, send.clone());
    }
    world.run_to_quiescence(DEADLINE);
    let metrics = world.metrics();
    let doctor = world.finish_streaming().expect("streaming doctor attached");
    let report = doctor.clone().into_report(Some(&metrics));
    (doctor, report)
}

/// One streamed run on a sharded world at `shards` shards.
fn streamed_sharded(
    topo: &Topology,
    schedule: Option<&ChaosSchedule>,
    shards: usize,
) -> (StreamingDoctor, DoctorReport) {
    let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
    world.attach_streaming(StreamConfig::default());
    if let Some(s) = schedule {
        world.set_chaos(s.clone());
    }
    for (at, cab, send) in workload(topo) {
        world.schedule_send(at, cab, send.clone());
    }
    world.run_to_quiescence(DEADLINE);
    let metrics = world.metrics();
    let doctor = world.finish_streaming().expect("streaming doctor attached");
    let report = doctor.clone().into_report(Some(&metrics));
    (doctor, report)
}

/// Asserts a streamed report is bit-identical to the post-hoc
/// reference: findings render, flight counts, critical-path counters,
/// and every segment histogram's quantiles.
fn assert_equivalent(
    case: &str,
    doctor: &StreamingDoctor,
    got: &DoctorReport,
    want: &DoctorReport,
) {
    let s = doctor.summary();
    assert_eq!(s.late_events, 0, "{case}: events arrived for retired flights");
    assert_eq!(s.ring_dropped, 0, "{case}: streamed capture dropped events");
    assert_eq!(got.flights, want.flights, "{case}: flight counts diverged");
    assert_eq!(got.confident, want.confident, "{case}: confidence diverged");
    assert_eq!(
        got.critical_path.attributed, want.critical_path.attributed,
        "{case}: attributed flight counts diverged"
    );
    assert_eq!(
        got.critical_path.skipped, want.critical_path.skipped,
        "{case}: skipped flight counts diverged"
    );
    for seg in Segment::ALL {
        let (a, b) = (got.critical_path.segment_hist(seg), want.critical_path.segment_hist(seg));
        assert_eq!(a, b, "{case}: {} histogram diverged", seg.label());
    }
    let (a, b) = (got.critical_path.total_hist(), want.critical_path.total_hist());
    assert_eq!(a, b, "{case}: end-to-end histogram diverged");
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(a.quantile(q), b.quantile(q), "{case}: p{} diverged", (q * 100.0) as u32);
    }
    assert_eq!(
        got.findings.len(),
        want.findings.len(),
        "{case}: finding counts diverged\nstreamed:\n{}\npost-hoc:\n{}",
        got.render(),
        want.render()
    );
    assert_eq!(got.render(), want.render(), "{case}: rendered reports diverged");
}

/// Runs one topology through all four streamed variants (clean/chaos ×
/// sequential/4-shard) against the matching post-hoc reference.
fn differential_case(name: &str, topo: Topology) {
    let schedule = chaos();
    for (label, sched) in [("clean", None), ("chaos", Some(&schedule))] {
        let want = post_hoc(&topo, sched);
        assert!(want.flights > 0, "{name}/{label}: reference capture saw no flights — vacuous");
        let (doc, got) = streamed_sequential(&topo, sched);
        assert_equivalent(&format!("{name}/{label}/seq"), &doc, &got, &want);
        let (doc, got) = streamed_sharded(&topo, sched, 4);
        assert_equivalent(&format!("{name}/{label}/4shard"), &doc, &got, &want);
    }
}

#[test]
fn star_streaming_matches_post_hoc() {
    // A single HUB clamps to one shard — the "4-shard" leg exercises
    // the clamped ShardedWorld streaming path.
    differential_case("star", Topology::single_hub(6, 16));
}

#[test]
fn mesh_streaming_matches_post_hoc() {
    differential_case("mesh", Topology::mesh2d(2, 2, 3, 16));
}

#[test]
fn fat_star_streaming_matches_post_hoc() {
    differential_case("fat_star", Topology::fat_star(4, 3, 16));
}
