//! End-to-end tests pinning the paper's quantitative goals (§2.3) and
//! the behaviour of the assembled system.

use nectar_core::prelude::*;
use nectar_sim::time::{Dur, Time};

fn default_system(cabs: usize) -> NectarSystem {
    NectarSystem::single_hub(cabs, SystemConfig::default())
}

// ------------------------------------------------------------------
// §2.3 latency goals (E03)
// ------------------------------------------------------------------

#[test]
fn cab_to_cab_latency_under_30_microseconds() {
    let mut sys = default_system(4);
    let report = sys.measure_cab_to_cab(0, 1, 64);
    let us = report.latency.as_micros_f64();
    assert!(us < 30.0, "paper goal: <30 us CAB-to-CAB, measured {us:.2}");
    assert!(us > 5.0, "a sub-5 us result would mean costs are not being charged");
}

#[test]
fn node_to_node_latency_under_100_microseconds() {
    let mut sys = default_system(4);
    let report = sys.measure_node_to_node(0, 1, 64, NodeInterface::SharedMemory);
    let us = report.latency.as_micros_f64();
    assert!(us < 100.0, "paper goal: <100 us node-to-node, measured {us:.2}");
    assert!(us > 20.0, "node path must cost more than the bare CAB path");
}

#[test]
fn hub_connection_latency_under_1_microsecond() {
    // §2.3: "the latency to establish a connection through a single HUB
    // should be under 1 microsecond". Setup + first byte is 700 ns.
    let cfg = SystemConfig::default();
    let setup = cfg.hub.connect_latency() + cfg.hub.transit;
    assert!(setup < Dur::from_micros(1), "connection setup {setup}");
}

#[test]
fn interface_hierarchy_orders_latency() {
    let mut sys = default_system(4);
    let sm = sys.measure_node_to_node(0, 1, 256, NodeInterface::SharedMemory).latency;
    let so = sys.measure_node_to_node(2, 3, 256, NodeInterface::Socket).latency;
    let mut sys2 = default_system(4);
    let dr = sys2.measure_node_to_node(0, 1, 256, NodeInterface::Driver).latency;
    assert!(sm < so && so < dr, "§6.2.3 ordering: {sm} < {so} < {dr}");
}

// ------------------------------------------------------------------
// Throughput (E01 pipelining, E04 aggregate)
// ------------------------------------------------------------------

#[test]
fn bulk_stream_approaches_fiber_rate() {
    let mut sys = default_system(2);
    let report = sys.measure_stream_throughput(0, 1, 512 * 1024, 8192);
    let mbit = report.rate.as_mbit_per_sec_f64();
    assert!(mbit > 80.0, "bulk stream should approach 100 Mbit/s, got {mbit:.1}");
    assert!(mbit <= 100.0, "cannot beat the fiber, got {mbit:.1}");
}

#[test]
fn ring_traffic_aggregates_across_the_crossbar() {
    // 8 CABs each streaming to their neighbour: the crossbar carries
    // all streams concurrently, so aggregate delivered bandwidth is
    // roughly 8 x the single-stream rate.
    let mut sys = default_system(8);
    let report = sys.measure_ring_aggregate(128 * 1024, 8192);
    let mbit = report.rate.as_mbit_per_sec_f64();
    assert!(mbit > 8.0 * 80.0, "aggregate should scale with ports, got {mbit:.0} Mbit/s");
}

// ------------------------------------------------------------------
// RPC (E10)
// ------------------------------------------------------------------

#[test]
fn rpc_round_trip_is_roughly_twice_one_way() {
    let mut sys = default_system(2);
    let one_way = sys.measure_cab_to_cab(0, 1, 64).latency;
    let rtt = sys.measure_rpc_rtt(0, 1, 64, 64);
    assert!(rtt > one_way, "a round trip includes two crossings");
    assert!(rtt < one_way * 4, "rtt {rtt} should be near 2x one-way {one_way}");
}

// ------------------------------------------------------------------
// Multicast (E06)
// ------------------------------------------------------------------

#[test]
fn hardware_multicast_beats_sequential_unicast() {
    let mut sys = default_system(6);
    let (mc, uc) = sys.measure_multicast_vs_unicast(0, &[1, 2, 3, 4], 512);
    assert!(mc < uc, "one fan-out packet ({mc}) must beat four serialized unicasts ({uc})");
}

// ------------------------------------------------------------------
// Multi-HUB (E05, E14)
// ------------------------------------------------------------------

#[test]
fn mesh_latency_grows_gently_with_hops() {
    // 1x4 chain of clusters, 2 CABs each: distances 1..4 hubs.
    let mut sys = NectarSystem::mesh(1, 4, 2, SystemConfig::default());
    let mut last = Dur::ZERO;
    let mut lat = Vec::new();
    for dst_hub in 1..4 {
        let dst_cab = dst_hub * 2;
        let r = sys.measure_cab_to_cab(0, dst_cab, 64);
        assert!(r.latency >= last, "latency must not shrink with distance");
        last = r.latency;
        lat.push(r.latency);
    }
    // Each extra HUB adds ~wire+transit per hop (store-and-forward of a
    // small packet), far below the software cost: the paper's claim
    // that multi-HUB latency "is not significantly higher".
    let per_hop = lat[2].saturating_sub(lat[0]) / 2;
    assert!(
        per_hop < Dur::from_micros(12),
        "per-hop cost {per_hop} should be small vs the ~25 us software path"
    );
    assert!(lat[2].as_micros_f64() < 60.0, "4-hub latency stays low: {}", lat[2]);
}

#[test]
fn mesh_carries_cross_traffic() {
    let mut sys = NectarSystem::mesh(2, 2, 3, SystemConfig::default());
    let w = sys.world_mut();
    let n = w.topology().cab_count();
    for i in 0..n {
        let dst = (i + 5) % n;
        if dst != i {
            w.send_stream_now(i, dst, 1, 2, &vec![7u8; 900]);
        }
    }
    w.run_until(Time::from_millis(50));
    assert_eq!(w.deliveries.len(), n, "every cross-mesh message arrives");
}

// ------------------------------------------------------------------
// Switching modes (E07 + ablation)
// ------------------------------------------------------------------

#[test]
fn circuit_cached_mode_reuses_the_circuit() {
    let cfg = SystemConfig { switching: SwitchingMode::CircuitCached, ..SystemConfig::default() };
    let mut sys = NectarSystem::single_hub(4, cfg);
    for _ in 0..5 {
        sys.measure_cab_to_cab(0, 1, 64);
    }
    let opens = sys.world().cab_counters(0).circuit_opens;
    assert_eq!(opens, 1, "five messages to one destination open one circuit");
}

#[test]
fn circuit_cache_switches_destinations_cleanly() {
    let cfg = SystemConfig { switching: SwitchingMode::CircuitCached, ..SystemConfig::default() };
    let mut sys = NectarSystem::single_hub(4, cfg);
    sys.measure_cab_to_cab(0, 1, 64);
    sys.measure_cab_to_cab(0, 2, 64);
    sys.measure_cab_to_cab(0, 1, 64);
    assert_eq!(sys.world().cab_counters(0).circuit_opens, 3, "each switch reopens");
    // Nothing multicast: each message delivered exactly once.
    assert_eq!(sys.world().deliveries.len(), 3);
}

#[test]
fn both_switching_modes_deliver_identical_payloads() {
    for switching in [SwitchingMode::PacketSwitched, SwitchingMode::CircuitCached] {
        let cfg = SystemConfig { switching, ..SystemConfig::default() };
        let mut sys = NectarSystem::single_hub(2, cfg);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let w = sys.world_mut();
        w.send_stream_now(0, 1, 1, 2, &data);
        w.run_until(Time::from_millis(20));
        assert_eq!(w.deliveries.len(), 1, "{switching:?}");
        // Payload integrity is checked by the mailbox contents.
        let msg = w.mailbox_take(1, 2).expect("in mailbox");
        assert_eq!(msg.data(), &data[..], "{switching:?}");
    }
}

// ------------------------------------------------------------------
// Fault injection: the transports recover (E10)
// ------------------------------------------------------------------

#[test]
fn byte_stream_survives_packet_loss() {
    let mut sys = default_system(2);
    sys.world_mut().inject_faults(0.10, 0.0, 42);
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 253) as u8).collect();
    let w = sys.world_mut();
    w.send_stream_now(0, 1, 1, 2, &data);
    w.run_until(Time::from_millis(200));
    assert!(w.faults_injected > 0, "losses actually happened");
    let msg = w.mailbox_take(1, 2).expect("delivered despite loss");
    assert_eq!(msg.data(), &data[..], "payload intact after retransmissions");
    let stats = w.stream_stats(0, 1).unwrap();
    assert!(stats.retransmissions > 0);
}

#[test]
fn byte_stream_survives_corruption() {
    let mut sys = default_system(2);
    sys.world_mut().inject_faults(0.0, 0.15, 7);
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
    let w = sys.world_mut();
    w.send_stream_now(0, 1, 1, 2, &data);
    w.run_until(Time::from_millis(200));
    assert!(w.faults_injected > 0);
    assert!(w.cab_counters(1).corrupted_rx > 0, "checksum caught the corruption");
    let msg = w.mailbox_take(1, 2).expect("delivered despite corruption");
    assert_eq!(msg.data(), &data[..]);
}

#[test]
fn datagrams_are_lost_silently_under_loss() {
    let mut sys = default_system(2);
    sys.world_mut().inject_faults(1.0, 0.0, 3); // drop everything
    let w = sys.world_mut();
    w.send_datagram_now(0, 1, 1, 2, b"doomed");
    w.run_until(Time::from_millis(5));
    assert!(w.deliveries.is_empty(), "datagram protocol does not retransmit");
    assert_eq!(w.errors.len(), 0, "and reports nothing (§6.2.2)");
}

// ------------------------------------------------------------------
// Contention (E15)
// ------------------------------------------------------------------

#[test]
fn hotspot_contention_serializes_but_delivers() {
    // Four senders hammer one receiver: the crossbar serializes the
    // output port; everything still arrives.
    let mut sys = default_system(6);
    let w = sys.world_mut();
    for src in 1..=4 {
        w.send_stream_now(src, 0, 1, 2, &vec![src as u8; 2000]);
    }
    w.run_until(Time::from_millis(50));
    assert_eq!(w.deliveries.len(), 4);
    let retried = w.hub(0).counters().opens_retried;
    assert!(retried > 0, "competing opens must have blocked at the output port");
}

// ------------------------------------------------------------------
// Scheduler accounting
// ------------------------------------------------------------------

#[test]
fn lost_hub_commands_are_recovered_end_to_end() {
    // §6.2.1: the datalink "recovers from framing errors and lost HUB
    // commands". Drop 30% of all command items in flight: test-opens
    // vanish, packets get stuck at HUB queues and are discarded, the
    // CAB ready-timeout re-arms the fiber, and the byte-stream
    // retransmits until everything lands intact.
    let mut sys = default_system(2);
    sys.world_mut().inject_command_loss(0.3, 77);
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 249) as u8).collect();
    sys.world_mut().send_stream_now(0, 1, 1, 2, &data);
    sys.world_mut().run_until(Time::from_millis(2_000));
    assert!(sys.world().faults_injected > 0, "commands were actually lost");
    let msg = sys.world_mut().mailbox_take(1, 2).expect("delivered despite lost commands");
    assert_eq!(msg.data(), &data[..]);
    let recoveries =
        sys.world().cab_counters(0).ready_timeouts + sys.world().hub(0).counters().drops;
    assert!(recoveries > 0, "a recovery path must have fired");
}

#[test]
fn cabs_can_interrogate_the_hub_status_table() {
    // §4.1: "the status table is maintained by a central controller and
    // can be interrogated by the CABs".
    use nectar_hub::command::Reply;
    use nectar_hub::id::{HubId, PortId};
    use nectar_hub::status::PortStatus;
    let mut sys = default_system(4);
    // Open a connection 0 -> 1 by sending a message, then ask the HUB
    // about CAB1's port while the next transfer is in flight.
    sys.measure_cab_to_cab(0, 1, 64);
    sys.world_mut().query_hub_status(2, HubId::new(0), PortId::new(1));
    let deadline = sys.world().now() + Dur::from_millis(1);
    sys.world_mut().run_until(deadline);
    let status = sys
        .world()
        .replies()
        .iter()
        .find_map(|(cab, reply, _)| match reply {
            Reply::Status { bits, .. } if *cab == 2 => Some(PortStatus::unpack(*bits)),
            _ => None,
        })
        .expect("status reply reached the asking CAB");
    assert!(status.enabled);
    assert!(status.driven_by.is_none(), "packet-switched transfers close behind themselves");
}

#[test]
fn receive_path_pays_interrupts_and_thread_switches() {
    let mut sys = default_system(2);
    sys.measure_cab_to_cab(0, 1, 64);
    let rx = sys.world().cab_scheduler(1);
    assert!(rx.interrupts() > 0, "packet arrival raises an interrupt");
    assert!(rx.switches() > 0, "waking the application pays the switch");
}
