//! Differential determinism tests for conservative-parallel execution:
//! a plain sequential [`World`], a [`ShardedWorld`] with one shard, and
//! a [`ShardedWorld`] with four shards run the same scheduled workload
//! (optionally under chaos) and must agree on *everything observable*
//! — metrics registries, invariant verdicts, deliveries, completions,
//! and the canonically sorted telemetry stream.
//!
//! These are the acceptance tests of DESIGN.md §11: the parallel mode
//! is only admissible because it is bit-identical to the sequential
//! one, so any divergence here is a bug in the window protocol, the
//! keyed event ordering, or the per-component state split — never
//! "expected jitter".

use nectar_core::invariants::{InvariantChecker, Violation};
use nectar_core::prelude::*;
use nectar_sim::analysis::streaming::StreamConfig;
use nectar_sim::chaos::{ChaosSchedule, Clause, Fault};
use nectar_sim::profile::{Phase, VerdictKind};
use nectar_sim::telemetry::TelemetryEvent;
use nectar_sim::time::{Dur, Time};
use std::sync::Arc;

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Observed {
    events: u64,
    now: Time,
    outcome: nectar_core::world::QuiescenceOutcome,
    metrics: String,
    deliveries: Vec<Delivery>,
    completions: Vec<(usize, u32, Time)>,
    telemetry: Vec<TelemetryEvent>,
    violations: Vec<Violation>,
    faults: u64,
}

/// One scheduled application send.
type Send = (Time, usize, AppSend);

/// An expected stream delivery: `(src, dst, mailbox, payload)`.
type ExpectedStream = (usize, usize, u16, Vec<u8>);

/// A deterministic mixed workload over `topo`, scheduled entirely up
/// front (no mid-run interaction, so it runs identically on a
/// sequential world and on any shard count): a cross-cluster stream
/// wave, a neighbour datagram wave, a hardware multicast, and a second
/// stream wave from the other end of each flow.
fn workload(topo: &Topology) -> (Vec<Send>, Vec<ExpectedStream>) {
    let cabs = topo.cab_count();
    let mut sends: Vec<Send> = Vec::new();
    let mut expected: Vec<ExpectedStream> = Vec::new();
    let mut stream = |sends: &mut Vec<Send>, at: Time, src: usize, dst: usize, round: usize| {
        let mailbox = (100 + src * 4 + round) as u16;
        let payload = vec![(13 + 29 * src + 5 * round) as u8; 240 + 410 * round + 31 * src];
        let data: Arc<[u8]> = payload.clone().into();
        sends.push((at, src, AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: mailbox, data }));
        expected.push((src, dst, mailbox, payload));
    };
    // Wave 1: every CAB streams to the CAB "half a system" away, so on
    // any multi-HUB topology most flows cross HUB (and shard) edges.
    for src in 0..cabs {
        let dst = (src + cabs / 2) % cabs;
        if dst == src {
            continue;
        }
        stream(&mut sends, Time::from_micros(2 + src as u64), src, dst, 0);
    }
    // Wave 2: unreliable datagrams to the next CAB over.
    for src in 0..cabs {
        let dst = (src + 1) % cabs;
        if dst == src {
            continue;
        }
        let data: Arc<[u8]> = vec![(src * 7) as u8; 120].into();
        sends.push((
            Time::from_micros(150 + src as u64),
            src,
            AppSend::Datagram { dst, src_mailbox: 1, dst_mailbox: 70, data },
        ));
    }
    // Wave 3: one hardware multicast fanning out across the system.
    if cabs >= 4 {
        let dsts = vec![1, cabs / 2, cabs - 1];
        let data: Arc<[u8]> = vec![0xAB; 96].into();
        sends.push((
            Time::from_micros(300),
            0,
            AppSend::Multicast { dsts, src_mailbox: 1, dst_mailbox: 71, data },
        ));
    }
    // Wave 4: return streams, overlapping wave 2/3 traffic.
    for src in 0..cabs {
        let dst = (src + cabs / 2) % cabs;
        if dst == src {
            continue;
        }
        stream(&mut sends, Time::from_micros(200 + 3 * src as u64), dst, src, 1);
    }
    (sends, expected)
}

/// Runs one topology/schedule case on the sequential world and on
/// `shards` shards, returning both observations.
fn differential(
    topo: &Topology,
    schedule: Option<&ChaosSchedule>,
    shards: usize,
) -> (Observed, Observed) {
    differential_policy(topo, schedule, shards, RebalancePolicy::Off)
}

/// Like [`differential`], with a rebalancing policy on the sharded
/// side — the sequential reference never rebalances, so agreement
/// proves mid-run migration changes nothing observable.
fn differential_policy(
    topo: &Topology,
    schedule: Option<&ChaosSchedule>,
    shards: usize,
    policy: RebalancePolicy,
) -> (Observed, Observed) {
    let (sends, expected) = workload(topo);
    let deadline = Time::from_millis(400);

    // Sequential reference.
    let mut seq = World::new(topo.clone(), SystemConfig::default());
    seq.enable_observability();
    if let Some(s) = schedule {
        seq.set_chaos(s.clone());
    }
    for (at, cab, send) in &sends {
        seq.schedule_send(*at, *cab, send.clone());
    }
    let mut seq_checker = InvariantChecker::new();
    for (src, dst, mailbox, payload) in &expected {
        seq_checker.expect_stream(*src, *dst, *mailbox, payload);
    }
    let (events, outcome) = seq.run_to_quiescence(deadline);
    let metrics = seq.metrics().to_json();
    let mut deliveries = seq.deliveries.clone();
    canonical_delivery_sort(&mut deliveries);
    let mut completions = seq.completions.clone();
    completions.sort_unstable_by_key(|&(cab, id, at)| (at, cab, id));
    let mut telemetry = seq.telemetry_events();
    canonical_telemetry_sort(&mut telemetry);
    let faults = seq.faults_injected;
    let now = seq.now();
    let violations = seq_checker.check(&mut seq);
    let sequential = Observed {
        events,
        now,
        outcome,
        metrics,
        deliveries,
        completions,
        telemetry,
        violations,
        faults,
    };

    // Sharded run.
    let mut par = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
    par.set_rebalance(policy);
    par.enable_observability();
    if let Some(s) = schedule {
        par.set_chaos(s.clone());
    }
    for (at, cab, send) in &sends {
        par.schedule_send(*at, *cab, send.clone());
    }
    let mut par_checker = InvariantChecker::new();
    for (src, dst, mailbox, payload) in &expected {
        par_checker.expect_stream(*src, *dst, *mailbox, payload);
    }
    let (events, outcome) = par.run_to_quiescence(deadline);
    let metrics = par.metrics().to_json();
    let deliveries = par.deliveries();
    let completions = par.completions();
    let telemetry = par.telemetry_events();
    let faults = par.faults_injected();
    let now = par.now();
    let violations = par_checker.check(&mut par);
    let sharded = Observed {
        events,
        now,
        outcome,
        metrics,
        deliveries,
        completions,
        telemetry,
        violations,
        faults,
    };
    (sequential, sharded)
}

/// Asserts the two observations agree on everything, with targeted
/// messages so a divergence names the first observable that split.
fn assert_identical(case: &str, seq: &Observed, par: &Observed) {
    assert!(
        seq.metrics.contains("\"telemetry.dropped_events\": 0"),
        "{case}: sequential telemetry ring overflowed; the comparison would be truncated"
    );
    assert_eq!(seq.events, par.events, "{case}: events processed diverged");
    assert_eq!(seq.now, par.now, "{case}: final clock diverged");
    assert_eq!(seq.outcome, par.outcome, "{case}: quiescence outcome diverged");
    assert_eq!(seq.faults, par.faults, "{case}: injected fault count diverged");
    assert_eq!(seq.violations, par.violations, "{case}: invariant verdicts diverged");
    assert_eq!(seq.deliveries, par.deliveries, "{case}: deliveries diverged");
    assert_eq!(seq.completions, par.completions, "{case}: completions diverged");
    assert_eq!(seq.telemetry.len(), par.telemetry.len(), "{case}: telemetry event count diverged");
    for (i, (a, b)) in seq.telemetry.iter().zip(&par.telemetry).enumerate() {
        assert_eq!(a, b, "{case}: telemetry diverged at sorted index {i}");
    }
    if seq.metrics != par.metrics {
        for (a, b) in seq.metrics.lines().zip(par.metrics.lines()) {
            assert_eq!(a, b, "{case}: metrics diverged");
        }
        panic!("{case}: metrics diverged in length");
    }
}

/// The chaos schedule the sharded runs must survive bit-identically:
/// loss, corruption, duplication, and HUB command loss all at once.
fn chaos() -> ChaosSchedule {
    ChaosSchedule::new(0xD15EA5E)
        .with(Clause::new(Fault::Loss { rate: 0.03 }))
        .with(Clause::new(Fault::Corrupt { rate: 0.02 }))
        .with(Clause::new(Fault::Duplicate { rate: 0.02 }))
        .with(Clause::new(Fault::CommandLoss { rate: 0.01 }))
}

#[test]
fn star_clean_one_shard_matches_sequential() {
    let topo = Topology::single_hub(6, 16);
    let (seq, par) = differential(&topo, None, 1);
    assert_identical("star/clean/1", &seq, &par);
}

#[test]
fn star_chaos_matches_sequential() {
    // A single HUB clamps to one shard; the point is that the clamped
    // path is still audit-identical under chaos.
    let topo = Topology::single_hub(6, 16);
    let s = chaos();
    let (seq, par) = differential(&topo, Some(&s), 4);
    assert_identical("star/chaos/4", &seq, &par);
}

#[test]
fn mesh_clean_four_shards_matches_sequential() {
    let topo = Topology::mesh2d(2, 2, 3, 16);
    let (seq, par) = differential(&topo, None, 4);
    assert_identical("mesh/clean/4", &seq, &par);
}

#[test]
fn mesh_chaos_four_shards_matches_sequential() {
    let topo = Topology::mesh2d(2, 2, 3, 16);
    let s = chaos();
    let (seq, par) = differential(&topo, Some(&s), 4);
    assert_identical("mesh/chaos/4", &seq, &par);
}

#[test]
fn fat_star_clean_four_shards_matches_sequential() {
    let topo = Topology::fat_star(4, 4, 16);
    let (seq, par) = differential(&topo, None, 4);
    assert_identical("fat_star/clean/4", &seq, &par);
}

#[test]
fn fat_star_chaos_four_shards_matches_sequential() {
    let topo = Topology::fat_star(4, 4, 16);
    let s = chaos();
    let (seq, par) = differential(&topo, Some(&s), 4);
    assert_identical("fat_star/chaos/4", &seq, &par);
}

#[test]
fn fat_star_chaos_odd_shard_counts_match_sequential() {
    // 3 shards over 5 HUBs: uneven contiguous blocks, and a shard
    // count that does not divide the topology. Determinism must not
    // depend on a "nice" partition.
    let topo = Topology::fat_star(4, 4, 16);
    let s = chaos();
    let (seq, par) = differential(&topo, Some(&s), 3);
    assert_identical("fat_star/chaos/3", &seq, &par);
}

#[test]
fn shard_plan_is_contiguous_and_clamped() {
    let topo = Topology::fat_star(8, 2, 16); // 9 HUBs
    let plan = nectar_core::shard::ShardPlan::contiguous(&topo, 4);
    assert_eq!(plan.shards(), 4);
    let mut last = 0;
    for h in 0..topo.hub_count() {
        let s = plan.shard_of_hub(h);
        assert!(s >= last, "contiguous blocks");
        assert!(s < 4);
        last = s;
    }
    // Every CAB lives with its attachment HUB.
    for c in 0..topo.cab_count() {
        let hub = topo.cab_attachment(c).0;
        assert_eq!(plan.shard_of_cab(&topo, c), plan.shard_of_hub(hub));
    }
    // More shards than HUBs clamps.
    let tiny = Topology::single_hub(2, 16);
    assert_eq!(nectar_core::shard::ShardPlan::contiguous(&tiny, 64).shards(), 1);
}

/// A forced plan change at a fixed window epoch: hub 0 gets a huge
/// synthetic weight so the weighted plan differs from the contiguous
/// one the run started with, guaranteeing real cluster migrations.
fn skewed_plan(topo: &Topology, shards: usize) -> ShardPlan {
    let mut weights = vec![0u64; topo.hub_count()];
    weights[0] = 1_000_000;
    let plan = ShardPlan::weighted(topo, shards, &weights);
    assert_ne!(
        plan,
        ShardPlan::contiguous(topo, shards),
        "skewed plan must differ from the initial plan or the test forces nothing"
    );
    plan
}

/// Runs the forced-rebalance differential for one topology, clean and
/// under chaos: results must stay bit-identical to sequential even
/// though whole HUB clusters (state, pending events, timers, chaos RNG
/// streams) moved between shards mid-run.
fn forced_rebalance_case(name: &str, topo: &Topology, shards: usize) {
    let plan = skewed_plan(topo, shards);
    for (label, schedule) in [("clean", None), ("chaos", Some(chaos()))] {
        let policy = RebalancePolicy::ForceAt { window: 8, plan: plan.clone() };
        let (seq, par) = differential_policy(topo, schedule.as_ref(), shards, policy);
        assert_identical(&format!("{name}/{label}/forced-rebalance"), &seq, &par);
    }
}

#[test]
fn mesh_forced_rebalance_matches_sequential() {
    forced_rebalance_case("mesh", &Topology::mesh2d(2, 2, 3, 16), 3);
}

#[test]
fn fat_star_forced_rebalance_matches_sequential() {
    forced_rebalance_case("fat_star", &Topology::fat_star(4, 4, 16), 3);
}

#[test]
fn wide_star_forced_rebalance_matches_sequential() {
    forced_rebalance_case("wide_star", &Topology::fat_star(8, 2, 16), 4);
}

/// The forced plan is actually adopted (exactly one rebalance, and the
/// live plan is the forced one) — guards against a silently ignored
/// policy making the differential tests vacuous.
#[test]
fn forced_rebalance_adopts_the_plan() {
    let topo = Topology::fat_star(4, 4, 16);
    let plan = skewed_plan(&topo, 3);
    let (sends, _) = workload(&topo);
    let mut par = ShardedWorld::new(topo.clone(), SystemConfig::default(), 3);
    par.set_rebalance(RebalancePolicy::ForceAt { window: 8, plan: plan.clone() });
    for (at, cab, send) in sends {
        par.schedule_send(at, cab, send);
    }
    par.run_to_quiescence(Time::from_millis(400));
    assert_eq!(*par.plan(), plan, "forced plan not adopted");
    let runtime = par.runtime_metrics().to_json();
    assert!(runtime.contains("\"runner.rebalances\": 1"), "{runtime}");
}

/// Adaptive rebalancing under chaos stays bit-identical to sequential
/// — the load attribution is simulated-time only, so the epochs where
/// it repartitions (if any) are the same on every rerun.
#[test]
fn fat_star_adaptive_rebalance_matches_sequential() {
    let topo = Topology::fat_star(4, 4, 16);
    let s = chaos();
    let policy = RebalancePolicy::Adaptive { every_windows: 64 };
    let (seq, par) = differential_policy(&topo, Some(&s), 3, policy.clone());
    assert_identical("fat_star/chaos/adaptive", &seq, &par);
    // Run-to-run determinism of the adaptive path: same plan, same
    // window count, same rebalance count on a rerun.
    let (_, par2) = differential_policy(&topo, Some(&s), 3, policy);
    assert_eq!(par.metrics, par2.metrics, "adaptive rerun diverged");
}

/// `ShardPlan::weighted` invariants: contiguous, every shard
/// non-empty, equal weights reproduce near-equal blocks, and skew
/// shrinks the hot shard.
#[test]
fn weighted_plan_invariants() {
    let topo = Topology::fat_star(8, 2, 16); // 9 HUBs
    let hubs = topo.hub_count();
    for (weights, label) in [
        (vec![1u64; hubs], "uniform"),
        (vec![0u64; hubs], "all-zero"),
        (
            {
                let mut w = vec![1u64; hubs];
                w[0] = 1_000_000;
                w
            },
            "skewed",
        ),
    ] {
        for shards in 1..=hubs {
            let plan = ShardPlan::weighted(&topo, shards, &weights);
            assert_eq!(plan.shards(), shards, "{label}/{shards}");
            let mut seen = vec![0usize; shards];
            let mut last = 0;
            for h in 0..hubs {
                let s = plan.shard_of_hub(h);
                assert!(s == last || s == last + 1, "{label}/{shards}: contiguous blocks");
                seen[s] += 1;
                last = s;
            }
            assert!(seen.iter().all(|&c| c > 0), "{label}/{shards}: empty shard");
        }
    }
    // Skew isolates the hot HUB: with enough shards it sits alone.
    let mut w = vec![1u64; hubs];
    w[0] = 1_000_000;
    let plan = ShardPlan::weighted(&topo, 4, &w);
    assert_eq!(plan.shard_of_hub(0), 0);
    assert_ne!(plan.shard_of_hub(1), 0, "hot HUB should be isolated");
}

/// The host-time profiler is observation-only: simulated results are
/// bit-identical with the profiler off, on, and on under streaming —
/// the acceptance criterion that keeps `report --profile` admissible
/// in determinism-gated sweeps.
#[test]
fn profiler_on_off_and_stream_keep_results_bit_identical() {
    let topo = Topology::fat_star(4, 4, 16);
    let s = chaos();
    let (sends, _) = workload(&topo);
    let deadline = Time::from_millis(400);
    let run = |profile: bool, stream: bool| {
        let mut par = ShardedWorld::new(topo.clone(), SystemConfig::default(), 4);
        par.enable_observability();
        par.set_chaos(s.clone());
        if profile {
            par.enable_profiling();
        }
        if stream {
            par.attach_streaming(StreamConfig::default());
        }
        for (at, cab, send) in &sends {
            par.schedule_send(*at, *cab, send.clone());
        }
        par.run_to_quiescence(deadline);
        par
    };
    let off = run(false, false);
    let on = run(true, false);
    let streamed = run(true, true);

    assert_eq!(off.metrics().to_json(), on.metrics().to_json(), "profiler-on metrics diverged");
    assert_eq!(off.deliveries(), on.deliveries(), "profiler-on deliveries diverged");
    assert_eq!(off.completions(), on.completions(), "profiler-on completions diverged");
    assert_eq!(off.telemetry_events(), on.telemetry_events(), "profiler-on telemetry diverged");
    assert_eq!(
        off.metrics().to_json(),
        streamed.metrics().to_json(),
        "profiler+stream metrics diverged"
    );
    assert_eq!(off.deliveries(), streamed.deliveries(), "profiler+stream deliveries diverged");
    assert_eq!(off.completions(), streamed.completions(), "profiler+stream completions diverged");

    // Off: no profile is collected at all.
    assert!(off.host_profile().is_none());
    assert!(off.profile_analysis().is_none());

    // On: the scaling doctor produces a full report with exactly one
    // primary verdict over a ranked list.
    let analysis = on.profile_analysis().expect("profiling was enabled");
    assert_eq!(analysis.shards, 4);
    assert!(analysis.windows > 0, "windows were profiled");
    assert!(analysis.complete_windows > 0, "complete windows were attributed");
    let step = Phase::Step.index();
    assert!(
        analysis.per_shard.iter().all(|b| b.phase_ns[step] > 0),
        "every shard recorded step time"
    );
    assert!(!analysis.verdicts.is_empty());
    let primary = analysis.primary();
    assert!(
        analysis.verdicts.iter().filter(|v| v.score >= primary.score).count() == 1
            || analysis.verdicts[1].score < primary.score,
        "primary verdict is uniquely ranked first"
    );
    // This container may offer any core count; just check the verdict
    // is one of the defined kinds and carries a detail string.
    assert!(!primary.detail.is_empty());
    let _ = VerdictKind::Healthy; // all kinds reachable from the API

    // Streaming: the main-thread track records drain + fold spans.
    let hp = streamed.host_profile().expect("profiling was enabled");
    assert!(
        hp.main_track().iter().any(|sp| sp.phase == Phase::StreamFold),
        "stream folds were profiled on the main-thread track"
    );
    assert!(
        hp.main_track().iter().any(|sp| sp.phase == Phase::TelemetryDrain),
        "telemetry drains were profiled on the main-thread track"
    );
}

/// A sharded world audits through the same `Auditable` trait as a
/// sequential one — no parallel-mode carve-outs in the checker.
#[test]
fn sharded_world_is_auditable() {
    let topo = Topology::mesh2d(2, 2, 2, 16);
    let mut par = ShardedWorld::new(topo.clone(), SystemConfig::default(), 4);
    let payload = vec![9u8; 1500];
    let data: Arc<[u8]> = payload.clone().into();
    par.schedule_send(
        Time::from_micros(1),
        0,
        AppSend::Stream { dst: 5, src_mailbox: 1, dst_mailbox: 33, data },
    );
    let mut checker = InvariantChecker::new();
    checker.expect_stream(0, 5, 33, &payload);
    par.run_to_quiescence(Time::from_millis(100));
    let v = checker.check(&mut par);
    assert!(v.is_empty(), "{v:?}");
    assert!(par.transport_quiescent());
    let _ = Dur::ZERO; // keep the import used on all cfg paths
}
