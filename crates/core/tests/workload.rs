//! Differential tests for the workload generator: a spec-driven
//! scenario must be **bit-identical** across sequential vs sharded
//! execution, across `--stream` on/off, across same-seed reruns, and
//! across forced mid-run cluster migrations. The fingerprint is the
//! full metrics registry rendered to JSON — every counter, gauge, and
//! histogram bucket in the system.

use nectar_core::prelude::*;
use nectar_sim::analysis::streaming::StreamConfig;
use nectar_sim::time::Time;
use nectar_sim::workload::{preset, WorkloadSpec};

const DEADLINE: Time = Time::from_millis(60);

/// A reduced-scale mixed scenario exercising every moving part: a
/// closed datagram loop (token circulation), a closed RPC loop (the
/// auto-responder + reply re-arm), and an open bursty stream class.
fn mixed_spec() -> WorkloadSpec {
    WorkloadSpec::parse(
        0xC0FFEE,
        "closed(6,100ns,fixed(96),neighbor,datagram)[0ns..200us];\
         closed(3,500ns,uniform(32,256),hotspot(0.3,cab1),rpc)[0ns..200us];\
         open(bursty(20us,100us,300us),fixed(700),uniform,stream)[0ns..200us]",
    )
    .expect("mixed spec parses")
}

/// Runs `spec` on `topo`, sequentially (`shards == 1`) or sharded,
/// optionally with the streaming doctor attached, and returns the
/// `(metrics JSON, deliveries, flows-offered)` fingerprint.
fn run(topo: &Topology, spec: &WorkloadSpec, shards: usize, stream: bool) -> (String, usize, u64) {
    if shards == 1 {
        let mut world = World::new(topo.clone(), SystemConfig::default());
        // Observability on in every mode so the flight-latency histogram
        // is populated uniformly (streaming switches it on implicitly),
        // and enough ring capacity that a single sequential ring drops
        // nothing — sharded mode gets one ring per shard, so drop counts
        // would otherwise diverge at high event rates.
        world.enable_observability();
        world.set_telemetry_capacity(1 << 17);
        if stream {
            world.attach_streaming(StreamConfig::default());
        }
        world.set_workload(spec).expect("spec compiles on this topology");
        world.run_to_quiescence(DEADLINE);
        if stream {
            let doctor = world.finish_streaming().expect("attached");
            let report = doctor.into_report(Some(&world.metrics()));
            assert_eq!(report.dropped_events, 0, "streamed run dropped telemetry");
        }
        let flows = flows_offered(&world.metrics(), topo.cab_count());
        (world.metrics().to_json(), world.deliveries.len(), flows)
    } else {
        let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
        world.enable_observability();
        world.set_telemetry_capacity(1 << 17);
        if stream {
            world.attach_streaming(StreamConfig::default());
        }
        world.set_workload(spec).expect("spec compiles on this topology");
        world.run_to_quiescence(DEADLINE);
        if stream {
            let doctor = world.finish_streaming().expect("attached");
            let report = doctor.into_report(Some(&world.metrics()));
            assert_eq!(report.dropped_events, 0, "streamed run dropped telemetry");
        }
        let flows = flows_offered(&world.metrics(), topo.cab_count());
        (world.metrics().to_json(), world.deliveries().len(), flows)
    }
}

fn flows_offered(reg: &nectar_sim::metrics::MetricsRegistry, cabs: usize) -> u64 {
    (0..cabs).map(|c| reg.counter(&format!("cab{c}.workload.flows"))).sum()
}

/// Sequential, 4-shard, and streamed runs all produce the same
/// metrics registry, delivery count, and offered-flow count; and the
/// scenario actually offers traffic (the differential is not vacuous).
fn differential_case(name: &str, topo: Topology, spec: &WorkloadSpec) {
    let (seq, seq_deliv, seq_flows) = run(&topo, spec, 1, false);
    assert!(seq_flows > 0, "{name}: no flows offered — vacuous");
    assert!(seq_deliv > 0, "{name}: no deliveries — vacuous");

    let (rerun, rerun_deliv, _) = run(&topo, spec, 1, false);
    assert_eq!(seq, rerun, "{name}: same-seed rerun diverged");
    assert_eq!(seq_deliv, rerun_deliv, "{name}: same-seed delivery counts diverged");

    let (par, par_deliv, par_flows) = run(&topo, spec, 4, false);
    assert_eq!(seq, par, "{name}: sequential vs 4-shard metrics diverged");
    assert_eq!(seq_deliv, par_deliv, "{name}: delivery counts diverged");
    assert_eq!(seq_flows, par_flows, "{name}: offered-flow counts diverged");

    let (streamed, streamed_deliv, _) = run(&topo, spec, 1, true);
    assert_eq!(seq, streamed, "{name}: stream on/off metrics diverged");
    assert_eq!(seq_deliv, streamed_deliv, "{name}: stream on/off deliveries diverged");

    let (par_streamed, ..) = run(&topo, spec, 4, true);
    assert_eq!(seq, par_streamed, "{name}: sharded+streamed metrics diverged");
}

#[test]
fn mixed_scenario_mesh_bit_identical_across_modes() {
    differential_case("mesh/mixed", Topology::mesh2d(2, 2, 3, 16), &mixed_spec());
}

#[test]
fn mixed_scenario_fat_star_bit_identical_across_modes() {
    differential_case("fat_star/mixed", Topology::fat_star(4, 3, 16), &mixed_spec());
}

/// The spike preset (reduced: same spec shape, smaller population via
/// shrink-like truncation is NOT used — the preset itself must hold,
/// so run it on a smaller mesh where 12 CABs × 1600 tokens is still
/// a 19k-flow standing population).
#[test]
fn spike_preset_reduced_mesh_bit_identical() {
    let spec = preset("spike").expect("registered preset");
    let topo = Topology::mesh2d(2, 2, 3, 16);
    let (seq, seq_deliv, seq_flows) = run(&topo, &spec, 1, false);
    assert!(seq_flows >= 19_000, "spike must offer its standing population, got {seq_flows}");
    let (par, par_deliv, _) = run(&topo, &spec, 4, false);
    assert_eq!(seq, par, "spike: sequential vs 4-shard diverged");
    assert_eq!(seq_deliv, par_deliv, "spike: delivery counts diverged");
}

/// A forced mid-run plan change moves whole clusters — including the
/// workload generator's per-(class, CAB) RNG streams — between
/// shards; results must stay bit-identical to sequential.
#[test]
fn forced_migration_preserves_workload_streams() {
    let topo = Topology::mesh2d(2, 2, 3, 16);
    let spec = mixed_spec();
    let mut weights = vec![0u64; topo.hub_count()];
    weights[0] = 1_000_000;
    let plan = nectar_core::shard::ShardPlan::weighted(&topo, 3, &weights);
    assert_ne!(
        plan,
        nectar_core::shard::ShardPlan::contiguous(&topo, 3),
        "skewed plan must differ or the test forces nothing"
    );
    let (seq, seq_deliv, _) = run(&topo, &spec, 1, false);

    let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), 3);
    world.enable_observability();
    world.set_telemetry_capacity(1 << 17);
    world.set_rebalance(RebalancePolicy::ForceAt { window: 8, plan });
    world.set_workload(&spec).expect("spec compiles");
    world.run_to_quiescence(DEADLINE);
    assert_eq!(seq, world.metrics().to_json(), "forced migration diverged from sequential");
    assert_eq!(seq_deliv, world.deliveries().len(), "delivery counts diverged");
}

/// Every registered preset must attach cleanly on the e26-scale
/// topologies: the grammar caps sizes at `MAX_FLOW_BYTES`, but only
/// attach knows the single-fragment limit of datagram/RPC transports.
#[test]
fn every_preset_attaches_on_the_scale_topologies() {
    for topo in [Topology::fat_star(8, 8, 16), Topology::mesh2d(4, 4, 4, 16)] {
        for p in nectar_sim::workload::PRESETS {
            let spec = preset(p.name).expect("registered preset");
            let mut world = World::new(topo.clone(), SystemConfig::default());
            world.set_workload(&spec).unwrap_or_else(|e| panic!("preset `{}`: {e}", p.name));
        }
    }
}

/// Compile-time validation: single-packet transports reject specs
/// whose explicit sizes exceed one fragment.
#[test]
fn oversize_single_packet_flows_are_rejected() {
    let topo = Topology::mesh2d(2, 2, 3, 16);
    let mut world = World::new(topo, SystemConfig::default());
    for bad in [
        "closed(4,0ns,fixed(2048),uniform,datagram)",
        "closed(4,0ns,uniform(32,1200),uniform,rpc)",
        "open(poisson(10us),pareto(4096,1.4),uniform,datagram)",
    ] {
        let spec = WorkloadSpec::parse(1, bad).expect("grammar-valid");
        assert!(world.set_workload(&spec).is_err(), "`{bad}` must be rejected at attach");
    }
    // The same sizes are fine on the fragmenting byte stream.
    let ok = WorkloadSpec::parse(1, "closed(4,0ns,fixed(2048),uniform,stream)[0ns..50us]").unwrap();
    world.set_workload(&ok).expect("stream flows fragment");
}
