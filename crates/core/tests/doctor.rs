//! `nectar-doctor` integration tests: the storm detector fires on a
//! deterministic forced-loss scenario with exactly the retransmitted
//! flight ids, and critical-path segment sums reconcile with end-to-end
//! flight latency — exactly, not approximately — on real simulations.

use nectar_core::system::NectarSystem;
use nectar_core::topology::Topology;
use nectar_core::world::{SystemConfig, World};
use nectar_sim::analysis::critical_path::breakdown;
use nectar_sim::analysis::flights::FlightTable;
use nectar_sim::analysis::{diagnose, pathology::DoctorConfig};
use nectar_sim::telemetry::EventKind;
use nectar_sim::time::Time;
use proptest::prelude::*;

/// Forced loss on the bytestream transport produces a go-back-N
/// retransmit storm; the detector fires, names the stream, and lists
/// exactly the retransmitted flights the recorder saw (golden).
#[test]
fn storm_detector_fires_with_the_right_flight_ids() {
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    sys.world_mut().enable_observability();
    // Deterministic heavy loss: every drop decision comes from the
    // seeded RNG, so the set of retransmitted flights is reproducible.
    sys.world_mut().inject_faults(0.35, 0.0, 1989);
    for _ in 0..10 {
        sys.world_mut().send_stream_now(0, 1, 1, 2, &[0x5Au8; 600]);
    }
    sys.world_mut().run_until(Time::from_millis(500));
    assert!(!sys.world().deliveries.is_empty(), "transport must recover from loss");

    let events = sys.world_mut().telemetry_events();
    let metrics = sys.world_mut().metrics();

    // Golden evidence set, computed independently of the detector: the
    // data-carrying sends flagged as retransmissions by the recorder.
    let mut expected: Vec<u64> = events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::TransportSend { retransmit: true, bytes, .. } if bytes > 0)
        })
        .map(|e| e.flight.0)
        .collect();
    expected.sort_unstable();
    expected.dedup();
    assert!(expected.len() >= 3, "scenario must actually storm (saw {expected:?})");

    // Uncap the evidence list so the golden comparison is exact.
    let cfg = DoctorConfig { max_evidence: usize::MAX, ..DoctorConfig::default() };
    let report = nectar_sim::analysis::diagnose_with(&events, Some(&metrics), &cfg);
    assert!(report.confident, "no ring overflow expected in this scenario");
    let storm = report
        .findings
        .iter()
        .find(|f| f.detector == "retransmit_storm")
        .expect("storm detector fires under 35% loss");
    assert_eq!(storm.subject, "stream 0->1");
    let mut got = storm.flights.clone();
    got.sort_unstable();
    assert_eq!(got, expected, "finding lists exactly the retransmitted flights");
    // The retransmission metrics agree with the event stream.
    assert_eq!(metrics.counter("cab0.transport.retransmissions"), expected.len() as u64);
    assert!(metrics.counter("cab0.transport.timeouts") > 0);
}

/// A clean run has no findings at all.
#[test]
fn clean_run_has_no_findings() {
    let mut sys = NectarSystem::single_hub(3, SystemConfig::default());
    sys.world_mut().enable_observability();
    sys.world_mut().send_stream_now(0, 2, 1, 2, &[1u8; 300]);
    sys.world_mut().send_stream_now(1, 2, 1, 2, &[2u8; 300]);
    sys.world_mut().run_until(Time::from_millis(100));
    let events = sys.world_mut().telemetry_events();
    let metrics = sys.world_mut().metrics();
    let report = diagnose(&events, Some(&metrics));
    assert!(report.confident);
    assert_eq!(metrics.counter("telemetry.dropped_events"), 0);
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert!(report.critical_path.attributed > 0);
}

/// Checks the reconciliation invariant over one finished world: every
/// delivered unicast data flight gets a breakdown whose segment sum
/// equals the flight's end-to-end latency *exactly*, measured
/// independently from the raw events.
fn assert_segments_reconcile(world: &mut World) -> usize {
    let events = world.telemetry_events();
    let table = FlightTable::from_events(&events);
    let mut checked = 0;
    for flight in table.flights() {
        let first = flight.stream_key().and_then(|k| table.first_send_of(k));
        let Some(b) = breakdown(flight, first) else { continue };
        // Independent end-to-end: slot's first transmission to delivery.
        let recv_at = flight.recv().expect("attributed flights were delivered").at;
        let send_at = flight.send().expect("attributed flights have a send").at;
        let origin = first.unwrap_or(send_at).min(send_at);
        assert_eq!(
            b.segment_sum(),
            b.total,
            "segments must sum exactly to the breakdown total (flight {})",
            flight.id
        );
        assert_eq!(
            b.total,
            recv_at - origin,
            "breakdown total must equal send-to-delivery latency (flight {})",
            flight.id
        );
        checked += 1;
    }
    checked
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random unicast traffic on a single HUB: segment sums equal
    /// end-to-end flight latency exactly, for every delivered flight.
    #[test]
    fn segment_sums_equal_latency_single_hub(
        sends in prop::collection::vec((0usize..4, 0usize..4, 1usize..1200), 1..8)
    ) {
        let mut world = World::new(Topology::single_hub(4, 16), SystemConfig::default());
        world.enable_observability();
        let mut expected = 0;
        for &(src, dst, len) in &sends {
            if src == dst { continue; }
            world.send_stream_now(src, dst, 1, 2, &vec![0x42u8; len]);
            expected += 1;
        }
        world.run_until(Time::from_millis(200));
        prop_assert_eq!(world.deliveries.len(), expected);
        let checked = assert_segments_reconcile(&mut world);
        // Every delivered message's final fragment is attributable.
        prop_assert!(expected == 0 || checked >= expected);
    }

    /// The same invariant holds across multi-HUB meshes, where flights
    /// accumulate per-HUB queueing segments.
    #[test]
    fn segment_sums_equal_latency_on_meshes(
        rows in 1usize..3,
        cols in 1usize..3,
        len in 1usize..900,
    ) {
        let mut sys = NectarSystem::mesh(rows, cols, 1, SystemConfig::default());
        sys.world_mut().enable_observability();
        let cabs = rows * cols;
        if cabs > 1 {
            sys.world_mut().send_stream_now(0, cabs - 1, 1, 2, &vec![9u8; len]);
        }
        sys.world_mut().run_until(Time::from_millis(200));
        prop_assert!(!sys.world().deliveries.is_empty() || cabs == 1);
        let checked = assert_segments_reconcile(sys.world_mut());
        prop_assert!(cabs == 1 || checked > 0);
    }
}
