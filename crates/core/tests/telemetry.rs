//! Flight-recorder integration tests: causal ordering of telemetry
//! events along a packet's flight, from the sending transport through
//! every HUB crossbar to the receiving application.

use nectar_core::system::NectarSystem;
use nectar_core::world::SystemConfig;
use nectar_sim::telemetry::{EventKind, FlightId, TelemetryEvent};
use nectar_sim::time::{Dur, Time};

fn events_for(events: &[TelemetryEvent], flight: FlightId) -> Vec<&TelemetryEvent> {
    events.iter().filter(|e| e.flight == flight).collect()
}

/// Every crossbar forward of a flight happens between that flight's
/// transport send and its application delivery.
#[test]
fn forwards_sit_between_send_and_delivery() {
    let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
    sys.world_mut().enable_observability();
    sys.world_mut().send_stream_now(0, 2, 1, 2, &[7u8; 400]);
    sys.world_mut().run_until(Time::ZERO + Dur::from_millis(50));
    assert!(!sys.world().deliveries.is_empty(), "message must arrive");

    let events = sys.world_mut().telemetry_events();
    // Find a flight that was both sent and delivered.
    let delivered: Vec<FlightId> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::AppRecv { .. }) && e.flight.is_some())
        .map(|e| e.flight)
        .collect();
    assert!(!delivered.is_empty(), "at least one flight reaches an application");

    for flight in delivered {
        let fe = events_for(&events, flight);
        let sent = fe
            .iter()
            .find(|e| matches!(e.kind, EventKind::TransportSend { .. }))
            .expect("delivered flight has a send");
        let recv = fe
            .iter()
            .find(|e| matches!(e.kind, EventKind::AppRecv { .. }))
            .expect("delivered flight has a delivery");
        assert!(sent.at <= recv.at, "send precedes delivery");
        let forwards: Vec<_> =
            fe.iter().filter(|e| matches!(e.kind, EventKind::CrossbarForward { .. })).collect();
        assert!(!forwards.is_empty(), "the packet crossed at least one crossbar");
        for f in &forwards {
            assert!(
                sent.at <= f.at && f.at <= recv.at,
                "forward at {} outside [{}, {}]",
                f.at,
                sent.at,
                recv.at
            );
        }
        // DMA events bracket the receive side of the same flight.
        let dma_start = fe.iter().find(|e| matches!(e.kind, EventKind::DmaStart { .. }));
        let dma_done = fe.iter().find(|e| matches!(e.kind, EventKind::DmaComplete { .. }));
        let (Some(s), Some(d)) = (dma_start, dma_done) else {
            panic!("delivered flight has both DMA events");
        };
        assert!(s.at <= d.at && d.at <= recv.at);
    }
}

/// On a multi-HUB mesh, some flight is forwarded by at least two
/// distinct HUBs, and the hops appear in increasing timestamp order.
#[test]
fn a_flight_spans_multiple_hubs_on_a_mesh() {
    let mut sys = NectarSystem::mesh(1, 3, 1, SystemConfig::default());
    sys.world_mut().enable_observability();
    // CAB 0 hangs off HUB 0, CAB 2 off HUB 2: the route crosses HUBs.
    sys.world_mut().send_stream_now(0, 2, 1, 2, &[3u8; 200]);
    sys.world_mut().run_until(Time::ZERO + Dur::from_millis(50));
    assert!(!sys.world().deliveries.is_empty(), "message must arrive");

    let events = sys.world_mut().telemetry_events();
    let mut best: Option<(FlightId, Vec<(Time, u8)>)> = None;
    for e in &events {
        if !e.flight.is_some() {
            continue;
        }
        if let EventKind::CrossbarForward { hub, .. } = e.kind {
            match &mut best {
                Some((f, hops)) if *f == e.flight => hops.push((e.at, hub)),
                Some(_) => {}
                None => best = Some((e.flight, vec![(e.at, hub)])),
            }
        }
    }
    let (_, hops) = best.expect("some flight crossed a crossbar");
    let mut hubs: Vec<u8> = hops.iter().map(|&(_, h)| h).collect();
    hubs.dedup();
    hubs.sort_unstable();
    hubs.dedup();
    assert!(hubs.len() >= 2, "flight should traverse >= 2 HUBs, saw {hubs:?}");
    for w in hops.windows(2) {
        assert!(w[0].0 <= w[1].0, "hops in causal order");
    }
}

/// With observability off (the default), nothing is recorded and no
/// flight latency accumulates.
#[test]
fn disabled_recorder_stays_empty() {
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    sys.world_mut().send_stream_now(0, 1, 1, 2, &[1u8; 100]);
    sys.world_mut().run_until(Time::ZERO + Dur::from_millis(10));
    assert!(!sys.world().deliveries.is_empty());
    assert!(sys.world().telemetry_events().is_empty());
    assert!(!sys.world().observability_enabled());
}

/// The metrics registry carries the former ad-hoc counters: per-HUB
/// crossbar counters, per-CAB datalink counters, and the flight-latency
/// histogram when observability is on.
#[test]
fn metrics_registry_subsumes_counters() {
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    sys.world_mut().enable_observability();
    sys.world_mut().send_stream_now(0, 1, 1, 2, &[9u8; 1000]);
    sys.world_mut().run_until(Time::ZERO + Dur::from_millis(50));
    assert!(!sys.world().deliveries.is_empty());

    let reg = sys.world_mut().metrics();
    assert_eq!(
        reg.counter("cab0.packets_tx"),
        sys.world().cab_counters(0).packets_tx,
        "registry mirrors CabCounters"
    );
    assert!(reg.counter("hub0.packets_forwarded") > 0);
    assert!(reg.counter("cab0.checksum_ops") > 0);
    assert!(reg.counter("cab1.kernel.interrupts") > 0);
    let h = reg.histogram("latency.flight_ns").expect("flight latency recorded");
    assert!(h.count() > 0);
    assert!(h.quantile(0.5) > 0.0);
}
