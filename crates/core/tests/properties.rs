//! Property-based tests for the assembled system: random topologies
//! route correctly, random traffic is conserved, and loss never breaks
//! payload integrity.

use nectar_core::prelude::*;
use nectar_hub::id::PortId;
use nectar_sim::time::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn meshes_route_all_pairs_with_manhattan_hops(
        rows in 1usize..4,
        cols in 1usize..4,
        cabs in 1usize..3,
    ) {
        let topo = Topology::mesh2d(rows, cols, cabs, 16);
        for a in 0..topo.cab_count() {
            for b in 0..topo.cab_count() {
                if a == b { continue; }
                let route = topo.route(a, b).expect("mesh is connected");
                // Hop count = Manhattan distance between hubs + 1.
                let (ha, _) = topo.cab_attachment(a);
                let (hb, _) = topo.cab_attachment(b);
                let (ra, ca) = (ha / cols, ha % cols);
                let (rb, cb) = (hb / cols, hb % cols);
                let manhattan = ra.abs_diff(rb) + ca.abs_diff(cb);
                prop_assert_eq!(route.len(), manhattan + 1, "route {} -> {}", a, b);
                // The final hop lands on the destination's port.
                let last = route.hops().last().unwrap();
                prop_assert_eq!(last.hub.index(), hb);
                prop_assert_eq!(topo.peer(hb, last.out), Peer::Cab(b));
            }
        }
    }

    #[test]
    fn random_chains_stay_connected(links in prop::collection::vec(0u8..12, 1..6)) {
        // Build a chain of hubs with one CAB each; every consecutive
        // pair linked on deterministic ports derived from the input.
        let hubs = links.len() + 1;
        let mut b = TopologyBuilder::new(hubs, 16);
        let mut cabs = Vec::new();
        for h in 0..hubs {
            cabs.push(b.add_cab(h, PortId::new(0)).unwrap());
        }
        for (i, &salt) in links.iter().enumerate() {
            let pa = PortId::new(2 + (salt % 12));
            let pb = PortId::new(15 - (salt % 2));
            b.link_hubs(i, pa, i + 1, pb).unwrap();
        }
        let topo = b.build().unwrap();
        for &a in &cabs {
            for &c in &cabs {
                if a != c {
                    let route = topo.route(a, c).expect("chain connects everything");
                    prop_assert_eq!(route.len(), a.abs_diff(c) + 1);
                }
            }
        }
    }

    #[test]
    fn traffic_is_conserved_on_a_clean_net(
        sends in prop::collection::vec((0usize..6, 0usize..6, 1usize..2500), 1..12)
    ) {
        let mut world = World::new(Topology::single_hub(6, 16), SystemConfig::default());
        let mut expected = 0usize;
        let mut expected_bytes = 0usize;
        for &(src, dst, len) in &sends {
            if src == dst { continue; }
            world.send_stream_now(src, dst, 1, 2, &vec![0xAAu8; len]);
            expected += 1;
            expected_bytes += len;
        }
        world.run_until(Time::from_millis(200));
        prop_assert_eq!(world.deliveries.len(), expected);
        let got_bytes: usize = world.deliveries.iter().map(|d| d.len).sum();
        prop_assert_eq!(got_bytes, expected_bytes);
        for cab in 0..6 {
            let c = world.cab_counters(cab);
            prop_assert_eq!(c.overruns, 0);
            prop_assert_eq!(c.corrupted_rx, 0);
        }
    }

    #[test]
    fn loss_and_corruption_never_break_integrity(
        payload in prop::collection::vec(any::<u8>(), 1..6000),
        drop_pct in 0u32..20,
        corrupt_pct in 0u32..20,
        seed in any::<u64>(),
    ) {
        let mut world = World::new(Topology::single_hub(2, 16), SystemConfig::default());
        world.inject_faults(drop_pct as f64 / 100.0, corrupt_pct as f64 / 100.0, seed);
        world.send_stream_now(0, 1, 1, 2, &payload);
        world.run_until(Time::from_millis(800));
        let msg = world.mailbox_take(1, 2);
        prop_assert!(msg.is_some(), "message lost despite reliable transport");
        let msg = msg.unwrap();
        prop_assert_eq!(msg.data(), &payload[..]);
    }
}
