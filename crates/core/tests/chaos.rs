//! The chaos campaign: random fault schedules against the transport
//! invariants.
//!
//! Each case builds a mixed stream + RPC workload, arms a
//! [`ChaosSchedule`], runs to quiescence, and audits with the
//! [`InvariantChecker`]. A violation is shrunk to a locally minimal
//! fault program and printed as a replayable
//! `--chaos-seed`/`--chaos-spec` pair for the `report` binary.

use nectar_core::invariants::{replay_line, InvariantChecker, Violation};
use nectar_core::prelude::*;
use nectar_sim::chaos::{self, ChaosSchedule, Clause, Fault};
use nectar_sim::time::Dur;
use proptest::prelude::*;

/// What one campaign run produced: the audit verdicts plus a digest
/// of every delivery, for determinism comparisons.
#[derive(Debug, PartialEq)]
struct Outcome {
    violations: Vec<Violation>,
    deliveries: Vec<Delivery>,
    /// Total faults the injector applied (drops + dups + reorders +
    /// corruptions + ...): proof the campaign exercised the wire.
    faults_applied: u64,
}

/// Runs the standard workload on `topo` under `schedule`: four
/// byte-stream flows (two on a two-CAB topology) and five RPC calls,
/// then a generous run to quiescence and the invariant audit.
fn run_campaign(topo: &Topology, schedule: &ChaosSchedule) -> Outcome {
    let mut world = World::new(topo.clone(), SystemConfig::default());
    world.set_chaos(schedule.clone());
    let mut checker = InvariantChecker::new();

    // Byte streams: each flow gets its own destination mailbox so the
    // checker can demand exact in-order content per flow.
    let cabs = topo.cab_count();
    let mut flows = vec![(0usize, 1usize, 2u16), (1, 0, 3)];
    if cabs >= 4 {
        flows.push((2, 3, 4));
        flows.push((3, 2, 6));
    }
    for &(src, dst, mailbox) in &flows {
        for i in 0..4usize {
            let fill = (17 + 31 * src + 7 * i) as u8;
            let payload = vec![fill; 200 + 650 * i];
            world.send_stream_now(src, dst, 1, mailbox, &payload);
            checker.expect_stream(src, dst, mailbox, &payload);
        }
    }

    // RPC: client 0 calls server 1 five times, one call outstanding at
    // a time. The drive loop plays the server application: it answers
    // a request when it lands in the service mailbox. Client timeouts
    // are legal under chaos; double execution is not.
    for i in 0..5usize {
        let t0 = world.now();
        let before = world.deliveries.len();
        let tx = world.send_rpc_now(0, 1, 5, 80, &[i as u8; 48]);
        checker.expect_rpc(1);
        let deadline = t0 + Dur::from_millis(20);
        let mut responded = false;
        while let Some(next) = world.next_event_time() {
            if next > deadline {
                break;
            }
            world.run_until(next);
            if !responded
                && world.deliveries[before..].iter().any(|d| d.cab == 1 && d.mailbox == 80)
            {
                world.rpc_respond_now(1, 0, tx, &[0xA5; 32]);
                responded = true;
            }
            if world.deliveries[before..].iter().any(|d| d.cab == 0 && d.mailbox == 5) {
                break;
            }
        }
        while world.mailbox_take(1, 80).is_some() {}
        while world.mailbox_take(0, 5).is_some() {}
    }

    // Let retransmissions, persist probes, and flap windows play out.
    let deadline = world.now() + Dur::from_millis(400);
    world.run_to_quiescence(deadline);
    let s = world.chaos_stats().unwrap_or_default();
    let faults_applied = s.total_drops() + s.duplicates + s.reorders + s.corruptions + s.cmd_drops;
    Outcome {
        violations: checker.check(&mut world),
        deliveries: world.deliveries.clone(),
        faults_applied,
    }
}

/// Shrinks a violating schedule and renders the failure report the
/// campaign prints: the original and minimal programs, both as
/// replayable `report` flags.
fn shrink_report(topo: &Topology, schedule: &ChaosSchedule, violations: &[Violation]) -> String {
    let minimal = chaos::shrink(schedule, |cand| !run_campaign(topo, cand).violations.is_empty());
    let mut msg = String::new();
    for v in violations {
        msg.push_str(&format!("  violation: {v}\n"));
    }
    msg.push_str(&format!("  replay:  {}\n", replay_line(schedule)));
    msg.push_str(&format!("  minimal: {}\n", replay_line(&minimal)));
    msg
}

/// Acceptance: the same seed produces a byte-identical fault schedule
/// and identical invariant verdicts (and deliveries) across two runs.
#[test]
fn same_seed_same_schedule_same_verdicts() {
    let topo = Topology::single_hub(4, 16);
    for seed in [3u64, 0xDEAD_BEEF, 9_182_736_455] {
        let a = ChaosSchedule::random(seed, 4);
        let b = ChaosSchedule::random(seed, 4);
        assert_eq!(a.spec(), b.spec(), "schedule generation must be deterministic");
        assert_eq!(a.seed, b.seed);
        let run1 = run_campaign(&topo, &a);
        let run2 = run_campaign(&topo, &b);
        assert_eq!(run1.violations, run2.violations, "verdicts diverged for seed {seed}");
        assert_eq!(run1.deliveries, run2.deliveries, "deliveries diverged for seed {seed}");
    }
}

/// The full clause crop — loss, burst, duplication, reordering,
/// corruption, and a link flap at once — on the single-HUB star.
#[test]
fn full_campaign_single_hub() {
    let topo = Topology::single_hub(4, 16);
    let schedule = full_schedule(11);
    let out = run_campaign(&topo, &schedule);
    assert!(
        out.violations.is_empty(),
        "invariants violated on single hub:\n{}",
        shrink_report(&topo, &schedule, &out.violations)
    );
    assert!(out.faults_applied > 10, "campaign barely exercised chaos: {}", out.faults_applied);
}

/// The same crop on a 2x2 mesh (multi-hop routes, trunk links).
#[test]
fn full_campaign_mesh() {
    let topo = Topology::mesh2d(2, 2, 1, 16);
    let schedule = full_schedule(23);
    let out = run_campaign(&topo, &schedule);
    assert!(
        out.violations.is_empty(),
        "invariants violated on mesh:\n{}",
        shrink_report(&topo, &schedule, &out.violations)
    );
    assert!(out.faults_applied > 10, "campaign barely exercised chaos: {}", out.faults_applied);
}

/// Regression for a campaign find: `loss(0.1);flap(200us,1ms)` at seed
/// 42 eats a `close all` on the way into a HUB, the crossbar keeps the
/// old circuit member, and the next forward drives *two* outputs — the
/// intended path plus a CAB the packet was never addressed to. Before
/// the fix the stray was fed straight into the wrong CAB's transport
/// state and the buffer-pool audit tripped (one acquisition, two
/// returns). Now the HUB counts the extra copy (`fanout_copies`, which
/// joins the conservation ledger), the receiving CAB refuses the
/// misaddressed packet (`misrouted_rx`), and a retransmission rebuilds
/// the sender's cached circuit from scratch.
#[test]
fn stale_circuit_member_is_counted_and_contained() {
    let topo = Topology::mesh2d(2, 2, 1, 16);
    let schedule = ChaosSchedule::parse(42, "loss(0.1);flap(200us,1ms)").unwrap();
    let mut world = World::new(topo, SystemConfig::default());
    world.set_chaos(schedule);
    let mut checker = InvariantChecker::new();
    let flows = [(0usize, 3usize, 2u16), (3, 0, 3), (1, 2, 4)];
    for &(src, dst, mailbox) in &flows {
        for i in 0..3usize {
            let payload = vec![(11 + 29 * src + 5 * i) as u8; 300 + 500 * i];
            world.send_stream_now(src, dst, 1, mailbox, &payload);
            checker.expect_stream(src, dst, mailbox, &payload);
        }
    }
    // The RPC phase is part of the repro: its circuit switches between
    // CAB 0's two peers are what give the lost close-all its window.
    for i in 0..4usize {
        let t0 = world.now();
        let before = world.deliveries.len();
        let tx = world.send_rpc_now(0, 1, 5, 80, &[i as u8; 40]);
        checker.expect_rpc(1);
        let deadline = t0 + Dur::from_millis(20);
        let mut responded = false;
        while let Some(next) = world.next_event_time() {
            if next > deadline {
                break;
            }
            world.run_until(next);
            if !responded
                && world.deliveries[before..].iter().any(|d| d.cab == 1 && d.mailbox == 80)
            {
                world.rpc_respond_now(1, 0, tx, &[0x5A; 24]);
                responded = true;
            }
            if world.deliveries[before..].iter().any(|d| d.cab == 0 && d.mailbox == 5) {
                break;
            }
        }
        while world.mailbox_take(1, 80).is_some() {}
        while world.mailbox_take(0, 5).is_some() {}
    }
    world.run_to_quiescence(world.now() + Dur::from_secs(2));
    let violations = checker.check(&mut world);
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
    // The schedule deterministically manufactures exactly one stale
    // member; its copy lands on CAB 3 with a foreign destination.
    assert_eq!(world.hub_fanout_copies(), 1, "expected the stale-circuit fan-out");
    let metrics = world.metrics();
    let misrouted: u64 = (0..4).map(|c| metrics.counter(&format!("cab{c}.misrouted_rx"))).sum();
    assert_eq!(misrouted, 1, "the stray copy must be refused at the CAB, not consumed");
}

/// Loss + burst + dup + reorder + corrupt + flap, all live at once.
fn full_schedule(seed: u64) -> ChaosSchedule {
    ChaosSchedule::new(seed)
        .with(Clause::new(Fault::Loss { rate: 0.08 }))
        .with(Clause::new(Fault::Burst { loss: 0.6, p_bad: 0.01, p_recover: 0.3 }))
        .with(Clause::new(Fault::Duplicate { rate: 0.08 }))
        .with(Clause::new(Fault::Reorder { rate: 0.10, max_delay: Dur::from_micros(80) }))
        .with(Clause::new(Fault::Corrupt { rate: 0.05 }))
        .with(Clause::new(Fault::Flap { down: Dur::from_micros(300), up: Dur::from_millis(2) }))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The campaign proper: random schedules, shrunk on violation to a
    /// minimal replayable fault program.
    #[test]
    fn random_schedules_preserve_transport_invariants(seed in any::<u64>()) {
        let topo = Topology::single_hub(4, 16);
        let schedule = ChaosSchedule::random(seed, 4);
        let out = run_campaign(&topo, &schedule);
        prop_assert!(
            out.violations.is_empty(),
            "invariants violated under seed {seed}:\n{}",
            shrink_report(&topo, &schedule, &out.violations)
        );
    }

    /// Same campaign over the mesh: multi-hop routes under chaos.
    #[test]
    fn random_schedules_hold_on_meshes(seed in any::<u64>()) {
        let topo = Topology::mesh2d(2, 2, 1, 16);
        let schedule = ChaosSchedule::random(seed, 4);
        let out = run_campaign(&topo, &schedule);
        prop_assert!(
            out.violations.is_empty(),
            "invariants violated under seed {seed}:\n{}",
            shrink_report(&topo, &schedule, &out.violations)
        );
    }
}
