//! Lightweight threads and the non-preemptive CAB scheduler.
//!
//! "We built the CAB kernel around lightweight processes similar to
//! Mach threads. [...] Threads execute as a set of coroutines, using a
//! simple, non-preemptive scheduler. [...] a thread will be awakened by
//! an event (such as the arrival of a packet), will take some action
//! (such as processing transport protocol headers), and will
//! voluntarily go back to waiting for another event" (§6.1).
//!
//! In the discrete-event simulation a thread's *logic* lives in the
//! protocol layers; [`Scheduler`] is the CPU-time arbiter. It
//! serializes bursts of work on the single SPARC, charges the 10–15 µs
//! register-window switch cost whenever the running thread changes, and
//! lets interrupt handlers preempt ("the datalink code is executed
//! entirely by interrupt handlers", §6.2.1) at the cheaper trap cost.
//!
//! # Examples
//!
//! ```
//! use nectar_kernel::thread::Scheduler;
//! use nectar_cab::timings::CabTimings;
//! use nectar_sim::time::{Dur, Time};
//!
//! let mut sched = Scheduler::new(CabTimings::prototype());
//! let a = sched.spawn("transport");
//! let b = sched.spawn("application");
//! let (_, end_a) = sched.run(Time::ZERO, a, Dur::from_micros(2));
//! // Running a different thread pays the register-window switch.
//! let (start_b, _) = sched.run(end_a, b, Dur::from_micros(1));
//! assert_eq!((start_b - end_a), sched.timings().thread_switch);
//! ```

use core::fmt;
use nectar_cab::timings::CabTimings;
use nectar_sim::telemetry::{EventKind, FlightId, Telemetry};
use nectar_sim::time::{Dur, Time};

/// Handle to one kernel thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The index form, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct ThreadInfo {
    name: String,
    cpu_used: Dur,
}

/// The CAB CPU-time arbiter.
#[derive(Clone, Debug)]
pub struct Scheduler {
    timings: CabTimings,
    threads: Vec<ThreadInfo>,
    current: Option<ThreadId>,
    cpu_free: Time,
    switches: u64,
    interrupts: u64,
    thread_busy: Dur,
    interrupt_busy: Dur,
    telemetry: Telemetry,
}

impl Scheduler {
    /// A scheduler with no threads and an idle CPU.
    pub fn new(timings: CabTimings) -> Scheduler {
        Scheduler {
            timings,
            threads: Vec::new(),
            current: None,
            cpu_free: Time::ZERO,
            switches: 0,
            interrupts: 0,
            thread_busy: Dur::ZERO,
            interrupt_busy: Dur::ZERO,
            telemetry: Telemetry::default(),
        }
    }

    /// The flight recorder (disabled by default). Its *subject* should
    /// be set to the owning CAB's number so switch events name it.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the flight recorder, e.g. to enable it.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The timing model in force.
    pub fn timings(&self) -> &CabTimings {
        &self.timings
    }

    /// Creates a thread.
    pub fn spawn(&mut self, name: impl Into<String>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadInfo { name: name.into(), cpu_used: Dur::ZERO });
        id
    }

    /// The thread's name.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not spawned by this scheduler.
    pub fn name(&self, tid: ThreadId) -> &str {
        &self.threads[tid.index()].name
    }

    /// The thread currently holding the CPU (None before any run).
    pub fn current(&self) -> Option<ThreadId> {
        self.current
    }

    /// When the CPU next goes idle.
    pub fn cpu_free_at(&self) -> Time {
        self.cpu_free
    }

    /// Thread switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Interrupts taken so far.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Total CPU time charged to `tid`.
    pub fn cpu_used(&self, tid: ThreadId) -> Dur {
        self.threads[tid.index()].cpu_used
    }

    /// Total CPU time spent in thread context (bursts plus coroutine
    /// switch costs), across all threads.
    pub fn thread_busy(&self) -> Dur {
        self.thread_busy
    }

    /// Total CPU time spent in interrupt context (handler bodies plus
    /// trap entries).
    pub fn interrupt_busy(&self) -> Dur {
        self.interrupt_busy
    }

    /// Charges a burst of `work` to thread `tid`, ready to run at
    /// `now`. The burst starts when the CPU is free; if the CPU was
    /// last running a different thread, the coroutine switch cost
    /// (10–15 µs of SPARC register-window save/restore) is paid first.
    ///
    /// Returns `(start, end)` of the burst itself (after any switch).
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not spawned by this scheduler.
    pub fn run(&mut self, now: Time, tid: ThreadId, work: Dur) -> (Time, Time) {
        assert!(tid.index() < self.threads.len(), "unknown thread {tid}");
        let mut start = now.max(self.cpu_free);
        if self.current != Some(tid) {
            if let Some(prev) = self.current {
                start += self.timings.thread_switch;
                self.switches += 1;
                self.thread_busy += self.timings.thread_switch;
                let cab = self.telemetry.subject();
                self.telemetry.record(
                    start,
                    FlightId::NONE,
                    EventKind::ThreadSwitch { cab, from: prev.0, to: tid.0 },
                );
            }
            self.current = Some(tid);
        }
        let end = start + work;
        self.cpu_free = end;
        self.threads[tid.index()].cpu_used += work;
        self.thread_busy += work;
        (start, end)
    }

    /// Marks `tid` as the thread already holding the CPU without
    /// charging a switch — used when modelling a thread that has been
    /// running all along (e.g. the application thread that is about to
    /// call `send`), so the first charged burst does not pay a
    /// fictitious switch.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not spawned by this scheduler.
    pub fn assume_running(&mut self, tid: ThreadId) {
        assert!(tid.index() < self.threads.len(), "unknown thread {tid}");
        self.current = Some(tid);
    }

    /// Runs an interrupt handler raised at `now` for `work`. Interrupt
    /// handlers preempt the running coroutine (entering via the
    /// reserved SPARC trap register window) instead of waiting for it
    /// to yield; the preempted thread's remaining work is pushed back.
    ///
    /// Returns `(start, end)` of the handler body (after trap entry).
    pub fn run_interrupt(&mut self, now: Time, work: Dur) -> (Time, Time) {
        self.interrupts += 1;
        self.interrupt_busy += self.timings.interrupt_entry + work;
        let start = now + self.timings.interrupt_entry;
        let end = start + work;
        // Steal the CPU: whatever was scheduled is delayed by the
        // handler's occupancy.
        self.cpu_free = self.cpu_free.max(now) + self.timings.interrupt_entry + work;
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(CabTimings::prototype())
    }

    #[test]
    fn same_thread_runs_without_switch_cost() {
        let mut s = sched();
        let t = s.spawn("worker");
        let (s1, e1) = s.run(Time::ZERO, t, Dur::from_micros(5));
        assert_eq!(s1, Time::ZERO);
        let (s2, _) = s.run(e1, t, Dur::from_micros(5));
        assert_eq!(s2, e1, "no switch cost when the same thread continues");
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn switching_threads_costs_ten_to_fifteen_microseconds() {
        let mut s = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        let (_, e) = s.run(Time::ZERO, a, Dur::from_micros(1));
        let (start_b, _) = s.run(e, b, Dur::from_micros(1));
        let switch = start_b - e;
        assert!(switch >= Dur::from_micros(10) && switch <= Dur::from_micros(15), "{switch}");
        assert_eq!(s.switches(), 1);
    }

    #[test]
    fn first_dispatch_pays_no_switch() {
        let mut s = sched();
        let a = s.spawn("a");
        let (start, _) = s.run(Time::from_micros(3), a, Dur::from_micros(1));
        assert_eq!(start, Time::from_micros(3));
    }

    #[test]
    fn cpu_serializes_bursts() {
        let mut s = sched();
        let a = s.spawn("a");
        let (_, e1) = s.run(Time::ZERO, a, Dur::from_micros(10));
        // A burst requested at t=0 for the same thread still waits.
        let (s2, _) = s.run(Time::ZERO, a, Dur::from_micros(1));
        assert_eq!(s2, e1);
    }

    #[test]
    fn interrupts_preempt_instead_of_waiting() {
        let mut s = sched();
        let a = s.spawn("a");
        // A long application burst holds the CPU.
        s.run(Time::ZERO, a, Dur::from_millis(1));
        // The packet interrupt at 100 us does not wait for it.
        let (start, end) = s.run_interrupt(Time::from_micros(100), Dur::from_micros(3));
        assert_eq!(start, Time::from_micros(100) + CabTimings::prototype().interrupt_entry);
        assert_eq!(end - start, Dur::from_micros(3));
        // The preempted work finishes later.
        assert!(s.cpu_free_at() > Time::from_millis(1));
        assert_eq!(s.interrupts(), 1);
    }

    #[test]
    fn per_thread_cpu_accounting() {
        let mut s = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        s.run(Time::ZERO, a, Dur::from_micros(7));
        s.run(Time::from_millis(1), b, Dur::from_micros(3));
        s.run(Time::from_millis(2), a, Dur::from_micros(1));
        assert_eq!(s.cpu_used(a), Dur::from_micros(8));
        assert_eq!(s.cpu_used(b), Dur::from_micros(3));
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn switches_reach_the_flight_recorder() {
        let mut s = sched();
        s.telemetry_mut().set_enabled(true);
        s.telemetry_mut().set_subject(3);
        let a = s.spawn("a");
        let b = s.spawn("b");
        let (_, e) = s.run(Time::ZERO, a, Dur::from_micros(1));
        s.run(e, b, Dur::from_micros(1));
        let evs: Vec<_> = s.telemetry().events().collect();
        assert_eq!(evs.len(), 1);
        match evs[0].kind {
            EventKind::ThreadSwitch { cab, from, to } => {
                assert_eq!(cab, 3);
                assert_eq!((from, to), (0, 1));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn busy_time_accounting() {
        let mut s = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        s.run(Time::ZERO, a, Dur::from_micros(5));
        s.run(Time::from_millis(1), b, Dur::from_micros(5));
        let t = CabTimings::prototype();
        assert_eq!(s.thread_busy(), Dur::from_micros(10) + t.thread_switch);
        s.run_interrupt(Time::from_millis(2), Dur::from_micros(3));
        assert_eq!(s.interrupt_busy(), Dur::from_micros(3) + t.interrupt_entry);
    }

    #[test]
    fn names_are_kept() {
        let mut s = sched();
        let t = s.spawn("byte-stream");
        assert_eq!(s.name(t), "byte-stream");
    }

    #[test]
    #[should_panic]
    fn foreign_thread_rejected() {
        let mut s1 = sched();
        let mut s2 = sched();
        let foreign = s2.spawn("other");
        let _ = s2; // silence unused warnings in release configs
        s1.run(Time::ZERO, foreign, Dur::from_micros(1));
    }
}
