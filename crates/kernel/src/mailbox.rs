//! Mailboxes: the CAB's message buffering mechanism.
//!
//! "Another CAB function is to provide temporary buffer space for
//! messages in an efficient way. This is achieved using mailboxes in
//! CAB memory. In the common single-reader, single-writer case,
//! allocating and reclaiming space is simple because mailboxes behave
//! like FIFOs. Mailboxes also support multiple readers, multiple
//! writers, and out-of-order reads" (§6.1).
//!
//! # Examples
//!
//! ```
//! use nectar_kernel::mailbox::{Mailbox, Message};
//!
//! let mut mb = Mailbox::new("requests", 64 * 1024);
//! mb.append(Message::new(1, 0, vec![1, 2, 3])).unwrap();
//! mb.append(Message::new(2, 7, vec![4])).unwrap();
//! // FIFO fast path:
//! assert_eq!(mb.take_next().unwrap().id(), 1);
//! // Out-of-order read by tag (e.g. an RPC response matcher):
//! assert!(mb.take_by_tag(7).is_some());
//! assert!(mb.is_empty());
//! ```

use core::fmt;
use std::collections::VecDeque;
use std::sync::Arc;

/// One message held in a mailbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    id: u64,
    tag: u32,
    data: Arc<[u8]>,
}

impl Message {
    /// Creates a message. `id` is unique per sender; `tag` is a
    /// protocol-defined matching key (e.g. an RPC transaction id).
    pub fn new(id: u64, tag: u32, data: impl Into<Arc<[u8]>>) -> Message {
        Message { id, tag, data: data.into() }
    }

    /// The message id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The protocol matching tag.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// The payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{} tag={} ({} B)", self.id, self.tag, self.len())
    }
}

/// Why an append was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MailboxFull {
    /// Bytes the message needed.
    pub needed: usize,
    /// Bytes currently free.
    pub free: usize,
}

impl fmt::Display for MailboxFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mailbox full: needed {} bytes, {} free", self.needed, self.free)
    }
}

impl std::error::Error for MailboxFull {}

/// A bounded message queue in CAB data memory.
#[derive(Clone, Debug)]
pub struct Mailbox {
    name: String,
    capacity: usize,
    used: usize,
    messages: VecDeque<Message>,
    appended: u64,
    taken: u64,
    rejected: u64,
    peak_used: usize,
    peak_len: usize,
}

impl Mailbox {
    /// Creates an empty mailbox holding at most `capacity` payload
    /// bytes (its reservation in the 1 MB CAB data memory).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Mailbox {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            name: name.into(),
            capacity,
            used: 0,
            messages: VecDeque::new(),
            appended: 0,
            taken: 0,
            rejected: 0,
            peak_used: 0,
            peak_len: 0,
        }
    }

    /// The mailbox name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in payload bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Payload bytes currently buffered.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Free payload bytes.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` if no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Appends a message (any writer).
    ///
    /// # Errors
    ///
    /// [`MailboxFull`] if the payload does not fit; the message is not
    /// stored (the transport layer's flow control should prevent this,
    /// and counts it when it happens).
    pub fn append(&mut self, msg: Message) -> Result<(), MailboxFull> {
        let needed = msg.len().max(1); // zero-length messages still take a slot
        if needed > self.free() {
            self.rejected += 1;
            return Err(MailboxFull { needed, free: self.free() });
        }
        self.used += needed;
        self.appended += 1;
        self.messages.push_back(msg);
        self.peak_used = self.peak_used.max(self.used);
        self.peak_len = self.peak_len.max(self.messages.len());
        Ok(())
    }

    fn account_take(&mut self, msg: &Message) {
        self.used -= msg.len().max(1);
        self.taken += 1;
    }

    /// Removes and returns the oldest message (the single-reader FIFO
    /// fast path).
    pub fn take_next(&mut self) -> Option<Message> {
        let msg = self.messages.pop_front()?;
        self.account_take(&msg);
        Some(msg)
    }

    /// Peeks at the oldest message without removing it (polling
    /// receive, §6.2.3 shared-memory interface).
    pub fn peek(&self) -> Option<&Message> {
        self.messages.front()
    }

    /// Removes and returns the oldest message with the given tag
    /// (out-of-order read; "multiple servers operate on different
    /// messages in the same mailbox", §6.1).
    pub fn take_by_tag(&mut self, tag: u32) -> Option<Message> {
        let idx = self.messages.iter().position(|m| m.tag() == tag)?;
        let msg = self.messages.remove(idx).expect("index in range");
        self.account_take(&msg);
        Some(msg)
    }

    /// Removes and returns the oldest message satisfying `pred`.
    pub fn take_matching<F: FnMut(&Message) -> bool>(&mut self, pred: F) -> Option<Message> {
        let idx = self.messages.iter().position(pred)?;
        let msg = self.messages.remove(idx).expect("index in range");
        self.account_take(&msg);
        Some(msg)
    }

    /// Lifetime counters: `(appended, taken, rejected)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.appended, self.taken, self.rejected)
    }

    /// High-water mark of buffered payload bytes.
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// High-water mark of buffered message count.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, tag: u32, len: usize) -> Message {
        Message::new(id, tag, vec![0u8; len])
    }

    #[test]
    fn fifo_order() {
        let mut mb = Mailbox::new("m", 1024);
        for i in 0..5 {
            mb.append(msg(i, 0, 10)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(mb.take_next().unwrap().id(), i);
        }
        assert!(mb.take_next().is_none());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut mb = Mailbox::new("m", 100);
        mb.append(msg(1, 0, 60)).unwrap();
        let err = mb.append(msg(2, 0, 60)).unwrap_err();
        assert_eq!(err, MailboxFull { needed: 60, free: 40 });
        assert_eq!(mb.stats().2, 1, "rejection counted");
        // Draining frees space.
        mb.take_next();
        assert!(mb.append(msg(2, 0, 60)).is_ok());
    }

    #[test]
    fn out_of_order_reads_by_tag() {
        let mut mb = Mailbox::new("m", 1024);
        mb.append(msg(1, 10, 4)).unwrap();
        mb.append(msg(2, 20, 4)).unwrap();
        mb.append(msg(3, 10, 4)).unwrap();
        assert_eq!(mb.take_by_tag(20).unwrap().id(), 2);
        // FIFO among equal tags.
        assert_eq!(mb.take_by_tag(10).unwrap().id(), 1);
        assert_eq!(mb.take_by_tag(10).unwrap().id(), 3);
        assert!(mb.take_by_tag(10).is_none());
    }

    #[test]
    fn take_matching_predicate() {
        let mut mb = Mailbox::new("m", 1024);
        mb.append(msg(1, 0, 4)).unwrap();
        mb.append(msg(2, 0, 100)).unwrap();
        let big = mb.take_matching(|m| m.len() > 50).unwrap();
        assert_eq!(big.id(), 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut mb = Mailbox::new("m", 64);
        mb.append(msg(9, 0, 8)).unwrap();
        assert_eq!(mb.peek().unwrap().id(), 9);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut mb = Mailbox::new("m", 1000);
        mb.append(msg(1, 0, 100)).unwrap();
        mb.append(msg(2, 1, 200)).unwrap();
        assert_eq!(mb.used(), 300);
        mb.take_by_tag(1).unwrap();
        assert_eq!(mb.used(), 100);
        mb.take_next().unwrap();
        assert_eq!(mb.used(), 0);
        assert_eq!(mb.stats(), (2, 2, 0));
    }

    #[test]
    fn high_water_marks_survive_draining() {
        let mut mb = Mailbox::new("m", 1000);
        mb.append(msg(1, 0, 100)).unwrap();
        mb.append(msg(2, 0, 250)).unwrap();
        mb.take_next().unwrap();
        mb.take_next().unwrap();
        mb.append(msg(3, 0, 10)).unwrap();
        assert_eq!(mb.peak_used(), 350);
        assert_eq!(mb.peak_len(), 2);
    }

    #[test]
    fn zero_length_messages_take_a_slot() {
        let mut mb = Mailbox::new("m", 2);
        mb.append(msg(1, 0, 0)).unwrap();
        mb.append(msg(2, 0, 0)).unwrap();
        assert!(mb.append(msg(3, 0, 0)).is_err());
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let mut mb = Mailbox::new("m", 1024);
        let m = msg(1, 0, 512);
        let data_ptr = m.data().as_ptr();
        mb.append(m).unwrap();
        let out = mb.take_next().unwrap();
        assert_eq!(out.data().as_ptr(), data_ptr, "messages pass by reference (§6.2.1)");
    }
}
