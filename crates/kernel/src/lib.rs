//! # nectar-kernel — the CAB software kernel
//!
//! "To provide the required efficiency and flexibility, we built the
//! CAB kernel around lightweight processes similar to Mach threads"
//! (paper §6.1). This crate models that kernel:
//!
//! * [`thread`] — [`Scheduler`](thread::Scheduler): non-preemptive
//!   coroutine threads with the measured 10–15 µs switch cost, plus
//!   preemptive interrupt handlers.
//! * [`mailbox`] — [`Mailbox`](mailbox::Mailbox): FIFO fast path,
//!   multi-reader/multi-writer, and out-of-order reads.
//! * [`services`] — the VME proxy for heavyweight node OS services
//!   (file I/O and friends stay on the node, §6.1).
//!
//! Hardware timers ([`nectar_cab::timer`]) serve as the kernel timer
//! facility; file I/O and other heavyweight services are delegated to
//! the node OS (§6.1) and modelled in the node cost model of
//! `nectar-core`.
//!
//! # Examples
//!
//! The §6.1 receive pattern — a thread awakened by a packet event:
//!
//! ```
//! use nectar_kernel::prelude::*;
//! use nectar_cab::timings::CabTimings;
//! use nectar_sim::time::{Dur, Time};
//!
//! let mut sched = Scheduler::new(CabTimings::prototype());
//! let mut inbox = Mailbox::new("inbox", 8 * 1024);
//! let app = sched.spawn("application");
//!
//! // Interrupt handler deposits the message...
//! let (_, handler_done) = sched.run_interrupt(Time::ZERO, Dur::from_micros(3));
//! inbox.append(Message::new(1, 0, vec![0u8; 128])).unwrap();
//! // ...and the application thread wakes to consume it.
//! let (_, end) = sched.run(handler_done, app, Dur::from_micros(1));
//! assert_eq!(inbox.take_next().unwrap().len(), 128);
//! assert!(end > handler_done);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mailbox;
pub mod services;
pub mod thread;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::mailbox::{Mailbox, MailboxFull, Message};
    pub use crate::services::{NodeService, ServiceCosts, ServiceProxy};
    pub use crate::thread::{Scheduler, ThreadId};
}
