//! Node-service proxy: heavyweight OS services stay on the node.
//!
//! "The CAB kernel provides support for simple, time-critical
//! operations such as memory management and timers, but it relies on
//! the node operating system for more complicated operations such as
//! file I/O. The CAB invokes these services by interrupting the node
//! over the VME bus" (§6.1).
//!
//! [`ServiceProxy`] models that path: each request costs a VME
//! interrupt, a node-side dispatch, the service itself (disk transfer,
//! console output, a clock read), and the VME transfer of any payload.
//! The node services requests serially — the CAB-side caller blocks
//! (its thread waits), which is exactly why only non-critical
//! operations take this path.

use core::fmt;
use nectar_sim::time::{Dur, Time};
use nectar_sim::units::Bandwidth;

/// A service request to the node operating system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeService {
    /// Read `bytes` from a file on the node's disk.
    FileRead {
        /// Bytes to read.
        bytes: usize,
    },
    /// Write `bytes` to a file on the node's disk.
    FileWrite {
        /// Bytes to write.
        bytes: usize,
    },
    /// Read the node's time-of-day clock.
    GetTimeOfDay,
    /// Write `bytes` to the node console (diagnostics).
    ConsoleWrite {
        /// Bytes to print.
        bytes: usize,
    },
}

impl fmt::Display for NodeService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeService::FileRead { bytes } => write!(f, "file read {bytes} B"),
            NodeService::FileWrite { bytes } => write!(f, "file write {bytes} B"),
            NodeService::GetTimeOfDay => f.write_str("gettimeofday"),
            NodeService::ConsoleWrite { bytes } => write!(f, "console {bytes} B"),
        }
    }
}

/// Cost constants of the node-service path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceCosts {
    /// Raising the VME interrupt and the node taking it.
    pub vme_interrupt: Dur,
    /// Node-side dispatch (wake the service daemon, decode the request).
    pub dispatch: Dur,
    /// Disk access latency (1989 SCSI: ~20 ms seek+rotate).
    pub disk_latency: Dur,
    /// Disk streaming bandwidth (~1 MB/s).
    pub disk_bw: Bandwidth,
    /// VME transfer bandwidth for request/response payloads.
    pub vme_bw: Bandwidth,
    /// Console output rate (terminal-bound).
    pub console_bw: Bandwidth,
}

impl ServiceCosts {
    /// A 1989 Sun-class node.
    pub fn sun_1989() -> ServiceCosts {
        ServiceCosts {
            vme_interrupt: Dur::from_micros(50),
            dispatch: Dur::from_micros(150),
            disk_latency: Dur::from_millis(20),
            disk_bw: Bandwidth::from_mbyte_per_sec(1),
            vme_bw: Bandwidth::from_mbyte_per_sec(10),
            console_bw: Bandwidth::from_bits_per_sec(9_600),
        }
    }

    /// Node-side time to perform `service` once dispatched.
    fn service_time(&self, service: NodeService) -> Dur {
        match service {
            NodeService::FileRead { bytes } | NodeService::FileWrite { bytes } => {
                self.disk_latency
                    + self.disk_bw.transfer_time(bytes)
                    + self.vme_bw.transfer_time(bytes)
            }
            NodeService::GetTimeOfDay => Dur::from_micros(5),
            NodeService::ConsoleWrite { bytes } => self.console_bw.transfer_time(bytes),
        }
    }
}

impl Default for ServiceCosts {
    fn default() -> ServiceCosts {
        ServiceCosts::sun_1989()
    }
}

/// The CAB's window onto node services. The node handles one request
/// at a time; concurrent requests queue.
///
/// # Examples
///
/// ```
/// use nectar_kernel::services::{NodeService, ServiceProxy};
/// use nectar_sim::time::Time;
///
/// let mut proxy = ServiceProxy::new(Default::default());
/// let done = proxy.request(Time::ZERO, NodeService::GetTimeOfDay);
/// // Interrupt + dispatch + a trivial service: fraction of a millisecond.
/// assert!(done.as_micros_f64() < 1_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceProxy {
    costs: ServiceCosts,
    node_busy_until: Time,
    requests: u64,
}

impl ServiceProxy {
    /// A proxy with an idle node.
    pub fn new(costs: ServiceCosts) -> ServiceProxy {
        ServiceProxy { costs, node_busy_until: Time::ZERO, requests: 0 }
    }

    /// Issues `service` at `now`; returns when the result is back in
    /// CAB memory. The calling CAB thread blocks until then — which is
    /// why the paper keeps this path off the fast path.
    pub fn request(&mut self, now: Time, service: NodeService) -> Time {
        self.requests += 1;
        let at_node = now + self.costs.vme_interrupt;
        let start = at_node.max(self.node_busy_until) + self.costs.dispatch;
        let done = start + self.costs.service_time(service);
        self.node_busy_until = done;
        done + self.costs.vme_interrupt
    }

    /// Requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// When the node is next free.
    pub fn node_free_at(&self) -> Time {
        self.node_busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_io_is_disk_dominated() {
        let mut p = ServiceProxy::new(ServiceCosts::sun_1989());
        let done = p.request(Time::ZERO, NodeService::FileRead { bytes: 8192 });
        // ~20 ms of disk latency dwarfs everything else.
        let ms = done.as_micros_f64() / 1e3;
        assert!((20.0..40.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn cheap_services_are_cheap() {
        let mut p = ServiceProxy::new(ServiceCosts::sun_1989());
        let t = p.request(Time::ZERO, NodeService::GetTimeOfDay);
        assert!(t.as_micros_f64() < 500.0);
    }

    #[test]
    fn node_serializes_requests() {
        let mut p = ServiceProxy::new(ServiceCosts::sun_1989());
        let first = p.request(Time::ZERO, NodeService::FileRead { bytes: 1024 });
        let second = p.request(Time::ZERO, NodeService::FileRead { bytes: 1024 });
        assert!(second > first, "the node's service loop is sequential");
        assert_eq!(p.requests(), 2);
    }

    #[test]
    fn console_is_terminal_bound() {
        let mut p = ServiceProxy::new(ServiceCosts::sun_1989());
        // 960 bytes at 9600 baud = 800 ms.
        let t = p.request(Time::ZERO, NodeService::ConsoleWrite { bytes: 960 });
        assert!(t.as_secs_f64() > 0.7, "{t}");
    }

    #[test]
    fn service_path_vs_fast_path_contrast() {
        // The whole point of §6.1: even the *cheapest* node service
        // costs several times the CAB's thread switch — the kernel is
        // right to keep time-critical work local.
        let mut p = ServiceProxy::new(ServiceCosts::sun_1989());
        let svc = p.request(Time::ZERO, NodeService::GetTimeOfDay);
        let switch = nectar_cab::timings::CabTimings::prototype().thread_switch;
        assert!(svc.saturating_since(Time::ZERO) > switch * 10);
    }
}
