//! Property-based tests for the CAB kernel: mailboxes against a
//! reference model and scheduler time-accounting invariants.

use nectar_cab::timings::CabTimings;
use nectar_kernel::mailbox::{Mailbox, Message};
use nectar_kernel::thread::Scheduler;
use nectar_sim::time::{Dur, Time};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum MbOp {
    Append { tag: u32, len: usize },
    TakeNext,
    TakeByTag(u32),
}

fn mb_op() -> impl Strategy<Value = MbOp> {
    prop_oneof![
        (0u32..4, 0usize..300).prop_map(|(tag, len)| MbOp::Append { tag, len }),
        Just(MbOp::TakeNext),
        (0u32..4).prop_map(MbOp::TakeByTag),
    ]
}

proptest! {
    #[test]
    fn mailbox_matches_reference_model(ops in prop::collection::vec(mb_op(), 1..200)) {
        let capacity = 4096usize;
        let mut mb = Mailbox::new("m", capacity);
        let mut model: VecDeque<(u64, u32, usize)> = VecDeque::new(); // (id, tag, len)
        let mut model_used = 0usize;
        let mut next_id = 0u64;
        for op in ops {
            match op {
                MbOp::Append { tag, len } => {
                    let id = next_id;
                    next_id += 1;
                    let result = mb.append(Message::new(id, tag, vec![0u8; len]));
                    let charge = len.max(1);
                    if model_used + charge <= capacity {
                        prop_assert!(result.is_ok());
                        model.push_back((id, tag, len));
                        model_used += charge;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                MbOp::TakeNext => {
                    let got = mb.take_next();
                    let want = model.pop_front();
                    match (got, want) {
                        (Some(g), Some((id, tag, len))) => {
                            prop_assert_eq!(g.id(), id);
                            prop_assert_eq!(g.tag(), tag);
                            prop_assert_eq!(g.len(), len);
                            model_used -= len.max(1);
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "divergence: {other:?}"),
                    }
                }
                MbOp::TakeByTag(tag) => {
                    let got = mb.take_by_tag(tag);
                    let pos = model.iter().position(|&(_, t, _)| t == tag);
                    match (got, pos) {
                        (Some(g), Some(p)) => {
                            let (id, t, len) = model.remove(p).unwrap();
                            prop_assert_eq!(g.id(), id);
                            prop_assert_eq!(g.tag(), t);
                            model_used -= len.max(1);
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "divergence: {other:?}"),
                    }
                }
            }
            prop_assert_eq!(mb.len(), model.len());
            prop_assert_eq!(mb.used(), model_used);
        }
    }

    #[test]
    fn scheduler_time_never_runs_backwards(
        bursts in prop::collection::vec((0usize..4, 0u64..50, 0u64..100), 1..100)
    ) {
        let mut sched = Scheduler::new(CabTimings::prototype());
        let threads: Vec<_> = (0..4).map(|i| sched.spawn(format!("t{i}"))).collect();
        let mut last_end = Time::ZERO;
        let mut expected_switches = 0u64;
        let mut prev_thread: Option<usize> = None;
        for (tid, at_us, work_us) in bursts {
            let now = Time::from_micros(at_us);
            let (start, end) = sched.run(now, threads[tid], Dur::from_micros(work_us));
            // Bursts serialize on the one CPU.
            prop_assert!(start >= last_end.min(start));
            prop_assert!(end >= start);
            prop_assert!(start >= now);
            prop_assert!(end >= last_end, "CPU time ran backwards");
            last_end = end;
            if let Some(p) = prev_thread {
                if p != tid {
                    expected_switches += 1;
                }
            }
            prev_thread = Some(tid);
        }
        prop_assert_eq!(sched.switches(), expected_switches);
        prop_assert_eq!(sched.cpu_free_at(), last_end);
    }

    #[test]
    fn scheduler_accounts_every_microsecond(
        bursts in prop::collection::vec((0usize..3, 1u64..60), 1..80)
    ) {
        let mut sched = Scheduler::new(CabTimings::prototype());
        let threads: Vec<_> = (0..3).map(|i| sched.spawn(format!("t{i}"))).collect();
        let mut per_thread = [0u64; 3];
        for (tid, work_us) in bursts {
            sched.run(Time::ZERO, threads[tid], Dur::from_micros(work_us));
            per_thread[tid] += work_us;
        }
        for (i, t) in threads.iter().enumerate() {
            prop_assert_eq!(sched.cpu_used(*t), Dur::from_micros(per_thread[i]));
        }
    }
}
