//! Microbenchmarks for the CAB checksum unit's software model: the
//! word-at-a-time (SWAR) Fletcher-16 against a bytewise reference, at
//! the packet sizes the simulator actually checksums (one op per
//! packet encode and per packet decode, so this sits on the hot path
//! of every data packet in every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nectar_cab::checksum::fletcher16;
use std::hint::black_box;

/// The textbook byte-at-a-time loop the SWAR version replaced, kept
/// here so every run reports the speedup ratio alongside the absolute
/// numbers.
fn fletcher16_bytewise(data: &[u8]) -> u16 {
    let mut s1: u32 = 0;
    let mut s2: u32 = 0;
    for chunk in data.chunks(5802) {
        for &b in chunk {
            s1 += b as u32;
            s2 += s1;
        }
        s1 %= 255;
        s2 %= 255;
    }
    ((s2 as u16) << 8) | s1 as u16
}

fn bench_fletcher16(c: &mut Criterion) {
    // 64 B: a command-sized packet; 990 B: the default max payload
    // under the 1 KB HUB queue; 8 KiB: a full stream segment burst.
    for size in [64usize, 990, 8192] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut g = c.benchmark_group("fletcher16");
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("swar", size), &data, |b, d| {
            b.iter(|| black_box(fletcher16(d)))
        });
        g.bench_with_input(BenchmarkId::new("bytewise", size), &data, |b, d| {
            b.iter(|| black_box(fletcher16_bytewise(d)))
        });
        g.finish();
    }
}

/// The two implementations must agree before the numbers mean
/// anything; `cargo test --benches` runs this once as a smoke test.
fn bench_agreement_guard(c: &mut Criterion) {
    c.bench_function("fletcher16_agreement", |b| {
        b.iter(|| {
            let data: Vec<u8> = (0..4096).map(|i| (i * 131 + 17) as u8).collect();
            for len in [0, 1, 7, 8, 9, 63, 990, 4096] {
                assert_eq!(fletcher16(&data[..len]), fletcher16_bytewise(&data[..len]));
            }
        })
    });
}

criterion_group!(benches, bench_fletcher16, bench_agreement_guard);
criterion_main!(benches);
