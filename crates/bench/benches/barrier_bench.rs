//! Criterion benches for the sharded runner's hot path: the batched
//! barrier exchange (a full windowed run, whose per-window cost is the
//! barrier crossing plus the outbox swap) and the SoA engine feeding
//! it. The sharded numbers on a single-core CI host measure protocol
//! *overhead*, not speedup — which is exactly what a microbench of the
//! exchange should measure: how much a window costs when it buys no
//! parallelism.

use criterion::{criterion_group, criterion_main, Criterion};
use nectar_core::prelude::*;
use nectar_sim::time::Time;
use std::hint::black_box;
use std::sync::Arc;

/// A small cross-shard-heavy workload: every CAB streams to its
/// counterpart half the system away, so every flow crosses the root
/// HUB and (under sharding) the exchange grid carries real batches.
fn cross_traffic(topo: &Topology) -> Vec<(Time, usize, AppSend)> {
    let cabs = topo.cab_count();
    let mut sends = Vec::new();
    for round in 0..4u64 {
        for src in 0..cabs {
            let dst = (src + cabs / 2) % cabs;
            if dst == src {
                continue;
            }
            let data: Arc<[u8]> = vec![(src as u64 + round) as u8; 512].into();
            sends.push((
                Time::from_micros(2 + 11 * round),
                src,
                AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 50, data },
            ));
        }
    }
    sends
}

/// End-to-end cost of the windowed run at 1 vs 4 shards on a fixed
/// workload. The 1-shard run never enters the window protocol, so the
/// ratio is the all-in price of barriers + batched exchange.
fn bench_windowed_run(c: &mut Criterion) {
    let topo = Topology::fat_star(4, 4, 16);
    let sends = cross_traffic(&topo);
    let mut g = c.benchmark_group("barrier_exchange");
    g.sample_size(10);
    for shards in [1usize, 4] {
        g.bench_function(format!("fat_star_4x4_{shards}_shards"), |b| {
            b.iter(|| {
                let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
                for (at, cab, send) in &sends {
                    world.schedule_send(*at, *cab, send.clone());
                }
                let (events, _) = world.run_to_quiescence(Time::from_millis(50));
                black_box(events)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_windowed_run);
criterion_main!(benches);
