//! Criterion benches for whole-system simulations (E03, E04, E07,
//! E12, E14): wall-clock cost of regenerating each experiment's core
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nectar_core::prelude::*;
use nectar_sim::time::Time;
use std::hint::black_box;

/// E03: one CAB-to-CAB message through a fresh single-HUB system.
fn bench_e03_cab_to_cab(c: &mut Criterion) {
    c.bench_function("e03_cab_to_cab_64b", |b| {
        b.iter(|| {
            let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
            black_box(sys.measure_cab_to_cab(0, 1, 64).latency)
        })
    });
}

/// E04: a 4-CAB ring moving 64 KB each.
fn bench_e04_ring(c: &mut Criterion) {
    c.bench_function("e04_ring_4x64kb", |b| {
        b.iter(|| {
            let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
            black_box(sys.measure_ring_aggregate(64 * 1024, 8192).rate)
        })
    });
}

/// E07: switching-mode comparison at one size.
fn bench_e07_switching_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_switching");
    for (label, mode) in
        [("packet", SwitchingMode::PacketSwitched), ("circuit", SwitchingMode::CircuitCached)]
    {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let cfg = SystemConfig { switching: mode, ..SystemConfig::default() };
                let mut sys = NectarSystem::single_hub(2, cfg);
                black_box(sys.measure_cab_to_cab(0, 1, 4096).latency)
            })
        });
    }
    g.finish();
}

/// E12: the three node interfaces.
fn bench_e12_interfaces(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_interfaces");
    for iface in NodeInterface::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(iface), &iface, |b, &iface| {
            b.iter(|| {
                let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
                black_box(sys.measure_node_to_node(0, 1, 1024, iface).latency)
            })
        });
    }
    g.finish();
}

/// E14: a message across a 1x4 mesh.
fn bench_e14_mesh(c: &mut Criterion) {
    c.bench_function("e14_mesh_4_hops", |b| {
        b.iter(|| {
            let mut sys = NectarSystem::mesh(1, 4, 2, SystemConfig::default());
            black_box(sys.measure_cab_to_cab(0, 6, 64).latency)
        })
    });
}

/// E10b: a lossy 20 KB transfer with recovery.
fn bench_e10b_loss_recovery(c: &mut Criterion) {
    c.bench_function("e10b_lossy_20kb", |b| {
        b.iter(|| {
            let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
            sys.world_mut().inject_faults(0.1, 0.0, 7);
            let data = vec![1u8; 20_000];
            sys.world_mut().send_stream_now(0, 1, 1, 2, &data);
            sys.world_mut().run_until(Time::from_millis(400));
            black_box(sys.world().deliveries.len())
        })
    });
}

criterion_group!(
    benches,
    bench_e03_cab_to_cab,
    bench_e04_ring,
    bench_e07_switching_modes,
    bench_e12_interfaces,
    bench_e14_mesh,
    bench_e10b_loss_recovery
);
criterion_main!(benches);
