//! Criterion benches for the protocol layer (E10): header codec,
//! hardware checksum, and the byte-stream state machine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nectar_cab::board::CabId;
use nectar_cab::checksum::fletcher16;
use nectar_proto::header::{Header, PacketKind};
use nectar_proto::transport::bytestream::{ByteStream, ByteStreamConfig};
use nectar_proto::transport::Action;
use nectar_sim::time::Time;
use std::hint::black_box;

fn bench_header_codec(c: &mut Criterion) {
    let payload = vec![0xA5u8; 990];
    let header = Header {
        payload_len: payload.len() as u16,
        ..Header::new(PacketKind::Data, CabId::new(0), CabId::new(1))
    };
    let wire = header.encode_with(&payload);
    let mut g = c.benchmark_group("header_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_1kb", |b| b.iter(|| black_box(header.encode_with(&payload))));
    g.bench_function("decode_1kb", |b| b.iter(|| black_box(Header::decode(&wire).unwrap())));
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0x5Au8; 1024];
    let mut g = c.benchmark_group("checksum");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("fletcher16_1kb", |b| b.iter(|| black_box(fletcher16(&data))));
    g.finish();
}

/// A full in-memory byte-stream message exchange (no world, just the
/// state machines passing packets back and forth).
fn bench_bytestream_roundtrip(c: &mut Criterion) {
    c.bench_function("bytestream_8kb_message", |b| {
        b.iter(|| {
            let cfg = ByteStreamConfig::default();
            let mut tx = ByteStream::new(CabId::new(0), CabId::new(1), cfg);
            let mut rx = ByteStream::new(CabId::new(1), CabId::new(0), cfg);
            let data = vec![7u8; 8192];
            let mut pending = Vec::new();
            tx.send_message(Time::ZERO, 1, 2, &data, &mut pending);
            let mut delivered = 0usize;
            let mut guard = 0;
            while !pending.is_empty() {
                guard += 1;
                assert!(guard < 1000);
                let mut next = Vec::new();
                for action in pending.drain(..) {
                    if let Action::Send { header, payload, .. } = action {
                        let target =
                            if header.dst_cab == CabId::new(1) { &mut rx } else { &mut tx };
                        let mut out = Vec::new();
                        target.on_packet(Time::ZERO, &header, &payload, &mut out);
                        for a in out {
                            match a {
                                Action::Deliver { .. } => delivered += 1,
                                other => next.push(other),
                            }
                        }
                    }
                }
                pending = next.into_iter().filter(|a| matches!(a, Action::Send { .. })).collect();
            }
            black_box(delivered)
        })
    });
}

criterion_group!(benches, bench_header_codec, bench_checksum, bench_bytestream_roundtrip);
criterion_main!(benches);
