//! Criterion benches for the LAN baseline (E08, E15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nectar_lan::prelude::*;
use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;
use std::hint::black_box;

/// E08: one small-message latency measurement on the LAN.
fn bench_e08_lan_latency(c: &mut Criterion) {
    c.bench_function("e08_lan_latency_64b", |b| {
        b.iter(|| {
            let mut lan = LanSystem::new(4, LanConfig::default());
            black_box(lan.measure_latency(0, 1, 64))
        })
    });
}

/// E15: a short offered-load run at two operating points.
fn bench_e15_offered_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_offered_load");
    g.sample_size(10);
    for mbps in [2u64, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(mbps), &mbps, |b, &mbps| {
            b.iter(|| {
                let mut lan = LanSystem::new(16, LanConfig::default());
                black_box(lan.offered_load_run(
                    Bandwidth::from_mbit_per_sec(mbps),
                    512,
                    Dur::from_millis(100),
                ))
            })
        });
    }
    g.finish();
}

/// Raw CSMA/CD machinery: a contention burst.
fn bench_csma_contention(c: &mut Criterion) {
    c.bench_function("csma_8_station_burst", |b| {
        b.iter(|| {
            let mut eth = Ethernet::new(8, EthernetConfig::default(), 5);
            for s in 0..8 {
                eth.enqueue(Frame { src: s, dst: (s + 1) % 8, bytes: 512, tag: 0 });
            }
            eth.run_until(nectar_sim::time::Time::from_millis(50));
            black_box(eth.stats().delivered)
        })
    });
}

criterion_group!(benches, bench_e08_lan_latency, bench_e15_offered_load, bench_csma_contention);
criterion_main!(benches);
