//! Criterion benches for the application workloads (E16, E16b, E17).

use criterion::{criterion_group, criterion_main, Criterion};
use nectar_apps::prelude::*;
use nectar_core::world::SystemConfig;
use std::hint::black_box;

/// E16: a reduced vision pipeline (2 frames of 64 KB).
fn bench_e16_vision(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_vision");
    g.sample_size(10);
    g.bench_function("2_frames_64kb", |b| {
        b.iter(|| {
            let cfg = VisionConfig {
                frames: 2,
                image_bytes: 64 * 1024,
                queries_per_frame: 4,
                ..VisionConfig::default()
            };
            black_box(run_vision(&cfg, SystemConfig::default()).frames)
        })
    });
    g.finish();
}

/// E17: a 100-token production-system run.
fn bench_e17_production(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_production");
    g.sample_size(10);
    g.bench_function("100_tokens", |b| {
        b.iter(|| {
            let cfg = ProductionConfig { max_tokens: 100, ..ProductionConfig::default() };
            black_box(run_production(&cfg, SystemConfig::default()).tokens_matched)
        })
    });
    g.finish();
}

/// E16b: Jacobi halo exchanges and the annealing ring.
fn bench_e16b_scientific(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16b_scientific");
    g.sample_size(10);
    g.bench_function("jacobi_5_iters", |b| {
        b.iter(|| {
            let cfg = JacobiConfig { nodes: 4, points_per_node: 256, iterations: 5 };
            black_box(run_jacobi(&cfg, SystemConfig::default()).comm_per_iteration.len())
        })
    });
    g.bench_function("annealing_2_rounds", |b| {
        b.iter(|| {
            let cfg =
                AnnealingConfig { rounds: 2, steps_per_round: 50, ..AnnealingConfig::default() };
            black_box(run_annealing(&cfg, SystemConfig::default()).best_cost)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_e16_vision, bench_e17_production, bench_e16b_scientific);
criterion_main!(benches);
