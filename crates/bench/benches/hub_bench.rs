//! Criterion benches for the HUB model (experiments E01/E02/E06):
//! wall-clock cost of simulating the switching fabric.

use criterion::{criterion_group, criterion_main, Criterion};
use nectar_bench::hubdriver::drive_hub;
use nectar_hub::prelude::*;
use nectar_sim::time::Time;
use std::hint::black_box;

/// E01: one connection setup + packet through a single HUB.
fn bench_e01_setup_and_transfer(c: &mut Criterion) {
    c.bench_function("e01_hub_setup_and_packet", |b| {
        b.iter(|| {
            let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
            let open = Command::open(false, false, false, HubId::new(0), PortId::new(8));
            let emissions = drive_hub(
                &mut hub,
                vec![
                    (Time::ZERO, PortId::new(4), open.into()),
                    (Time::from_nanos(240), PortId::new(4), Packet::new(1, vec![0u8; 64]).into()),
                ],
            );
            black_box(emissions.len())
        })
    });
}

/// E02: a batch of serialized controller commands.
fn bench_e02_controller_batch(c: &mut Criterion) {
    c.bench_function("e02_controller_16_opens", |b| {
        b.iter(|| {
            let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
            let arrivals = (0..8u8)
                .map(|p| {
                    let cmd = Command::open(false, false, false, HubId::new(0), PortId::new(8 + p));
                    (Time::ZERO, PortId::new(p), Item::from(cmd))
                })
                .collect();
            black_box(drive_hub(&mut hub, arrivals).len())
        })
    });
}

/// E06: a multicast fan-out through the crossbar.
fn bench_e06_multicast_fanout(c: &mut Criterion) {
    c.bench_function("e06_multicast_4way", |b| {
        b.iter(|| {
            let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
            let mut arrivals: Vec<(Time, PortId, Item)> = (0..4u8)
                .map(|i| {
                    let cmd = Command::open(false, false, false, HubId::new(0), PortId::new(4 + i));
                    (Time::from_nanos(i as u64 * 240), PortId::new(0), Item::from(cmd))
                })
                .collect();
            arrivals.push((
                Time::from_micros(2),
                PortId::new(0),
                Packet::new(1, vec![0u8; 512]).into(),
            ));
            black_box(drive_hub(&mut hub, arrivals).len())
        })
    });
}

/// Crossbar primitive operations.
fn bench_crossbar_ops(c: &mut Criterion) {
    c.bench_function("crossbar_connect_disconnect", |b| {
        let mut xb = Crossbar::new(16);
        b.iter(|| {
            for i in 0..8u8 {
                xb.connect(PortId::new(i), PortId::new(15 - i)).unwrap();
            }
            for i in 0..8u8 {
                xb.disconnect_output(PortId::new(15 - i));
            }
            black_box(xb.connection_count())
        })
    });
}

criterion_group!(
    benches,
    bench_e01_setup_and_transfer,
    bench_e02_controller_batch,
    bench_e06_multicast_fanout,
    bench_crossbar_ops
);
criterion_main!(benches);
