//! Scheduler microbenchmarks: the slab-indexed engine against the
//! repository's original `BinaryHeap` + tombstone-set engine.
//!
//! `mod seed` below is a trimmed copy of the engine this repository
//! seeded with (BinaryHeap of entries, `live`/`cancelled` HashSets,
//! tombstone GC on cancel) so the before/after ratio stays measurable
//! after the rewrite. The workloads mirror what the world actually
//! does: schedule/step churn at mixed horizons, a schedule/cancel mix
//! (transport timers are armed and nearly always cancelled by the ack
//! before they fire), and same-instant batch drains (HUB cycles).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nectar_sim::engine::Engine;
use nectar_sim::time::Dur;

/// The seed scheduler, verbatim in structure: max-heap of inverted
/// entries plus hash-set liveness tracking and tombstone GC.
mod seed {
    use nectar_sim::time::{Dur, Time};
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct EventId(u64);

    struct Entry<E> {
        at: Time,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct Engine<E> {
        now: Time,
        heap: BinaryHeap<Entry<E>>,
        live: HashSet<u64>,
        cancelled: HashSet<u64>,
        next_seq: u64,
    }

    impl<E> Engine<E> {
        pub fn new() -> Engine<E> {
            Engine {
                now: Time::ZERO,
                heap: BinaryHeap::new(),
                live: HashSet::new(),
                cancelled: HashSet::new(),
                next_seq: 0,
            }
        }

        pub fn schedule(&mut self, delay: Dur, payload: E) -> EventId {
            let at = self.now + delay;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, payload });
            self.live.insert(seq);
            EventId(seq)
        }

        fn gc_top(&mut self) {
            while let Some(top) = self.heap.peek() {
                if self.cancelled.contains(&top.seq) {
                    let dead = self.heap.pop().expect("peeked");
                    self.cancelled.remove(&dead.seq);
                } else {
                    break;
                }
            }
        }

        pub fn cancel(&mut self, id: EventId) -> bool {
            if !self.live.remove(&id.0) {
                return false;
            }
            self.cancelled.insert(id.0);
            self.gc_top();
            true
        }

        pub fn step(&mut self) -> Option<E> {
            let entry = self.heap.pop()?;
            self.live.remove(&entry.seq);
            self.gc_top();
            self.now = entry.at;
            Some(entry.payload)
        }

        pub fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|e| e.at)
        }
    }
}

/// Pseudo-random but deterministic delays spanning three decades, like
/// a live world (70 ns HUB cycles to millisecond transport timers).
fn delay(i: u64) -> Dur {
    Dur::from_nanos(70 + (i.wrapping_mul(0x9E37_79B9)) % 100_000)
}

const CHURN: u64 = 10_000;
const BACKLOG: u64 = 256;

/// schedule/step churn over a standing backlog of `BACKLOG` events.
fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_churn");
    g.throughput(Throughput::Elements(CHURN * 2));
    g.bench_function("slab", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..BACKLOG {
                eng.schedule(delay(i), i);
            }
            for i in 0..CHURN {
                let v = eng.step().unwrap();
                eng.schedule(delay(i.wrapping_add(v)), i);
            }
            black_box(eng.pending())
        })
    });
    g.bench_function("seed", |b| {
        b.iter(|| {
            let mut eng: seed::Engine<u64> = seed::Engine::new();
            for i in 0..BACKLOG {
                eng.schedule(delay(i), i);
            }
            for i in 0..CHURN {
                let v = eng.step().unwrap();
                eng.schedule(delay(i.wrapping_add(v)), i);
            }
            black_box(eng.peek_time())
        })
    });
    g.finish();
}

/// Transport-timer pattern: schedule a far-out timer, cancel it almost
/// always (the ack arrived), occasionally let one fire.
fn bench_cancel_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_cancel_mix");
    g.throughput(Throughput::Elements(CHURN * 2));
    g.bench_function("slab", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..BACKLOG {
                eng.schedule(delay(i), i);
            }
            for i in 0..CHURN {
                let id = eng.schedule(Dur::from_micros(500), i);
                if i % 16 != 0 {
                    eng.cancel(id);
                } else {
                    eng.step();
                }
            }
            black_box(eng.pending())
        })
    });
    g.bench_function("seed", |b| {
        b.iter(|| {
            let mut eng: seed::Engine<u64> = seed::Engine::new();
            for i in 0..BACKLOG {
                eng.schedule(delay(i), i);
            }
            for i in 0..CHURN {
                let id = eng.schedule(Dur::from_micros(500), i);
                if i % 16 != 0 {
                    eng.cancel(id);
                } else {
                    eng.step();
                }
            }
            black_box(eng.peek_time())
        })
    });
    g.finish();
}

/// HUB-cycle pattern: many events per 70 ns instant, drained per
/// instant — batched on the slab engine, peek/step on the seed.
fn bench_batch_drain(c: &mut Criterion) {
    const INSTANTS: u64 = 500;
    const PER_INSTANT: u64 = 16;
    let mut g = c.benchmark_group("sched_batch_drain");
    g.throughput(Throughput::Elements(INSTANTS * PER_INSTANT));
    g.bench_function("slab_step_batch", |b| {
        let mut buf: Vec<u64> = Vec::new();
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for t in 0..INSTANTS {
                for i in 0..PER_INSTANT {
                    eng.schedule(Dur::from_nanos(70 * (t + 1)), t * PER_INSTANT + i);
                }
            }
            let mut sum = 0u64;
            while let Some(at) = eng.step_batch(&mut buf) {
                sum = sum.wrapping_add(at.nanos());
                sum = sum.wrapping_add(buf.drain(..).sum::<u64>());
            }
            black_box(sum)
        })
    });
    g.bench_function("seed_peek_step", |b| {
        b.iter(|| {
            let mut eng: seed::Engine<u64> = seed::Engine::new();
            for t in 0..INSTANTS {
                for i in 0..PER_INSTANT {
                    eng.schedule(Dur::from_nanos(70 * (t + 1)), t * PER_INSTANT + i);
                }
            }
            let mut sum = 0u64;
            while let Some(at) = eng.peek_time() {
                sum = sum.wrapping_add(at.nanos());
                while eng.peek_time() == Some(at) {
                    sum = sum.wrapping_add(eng.step().unwrap());
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

/// End-of-run report: the acceptance ratio (slab must be >= 2x seed on
/// scheduler-op throughput) printed from the same measurements.
fn bench_summary(c: &mut Criterion) {
    let pairs = [
        ("sched_churn/slab", "sched_churn/seed"),
        ("sched_cancel_mix/slab", "sched_cancel_mix/seed"),
        ("sched_batch_drain/slab_step_batch", "sched_batch_drain/seed_peek_step"),
    ];
    let mut log_sum = 0.0f64;
    let mut counted = 0u32;
    for (new, old) in pairs {
        if let (Some(n), Some(o)) = (c.mean_of(new), c.mean_of(old)) {
            if !n.is_zero() {
                let ratio = o.as_secs_f64() / n.as_secs_f64();
                log_sum += ratio.ln();
                counted += 1;
                println!("speedup {new} vs {old}: {ratio:.2}x");
            }
        }
    }
    if counted > 0 {
        println!(
            "scheduler-op throughput, geometric mean over {counted} workloads: {:.2}x vs seed",
            (log_sum / counted as f64).exp()
        );
    }
}

criterion_group!(benches, bench_churn, bench_cancel_mix, bench_batch_drain, bench_summary);
criterion_main!(benches);
