//! A minimal single-HUB driver for the hardware-level experiments
//! (E01/E02): feeds timed items into one [`Hub`] and collects timed
//! emissions, with no CAB software in the path.

use nectar_hub::prelude::*;
use nectar_sim::prelude::*;

enum Ev {
    Arrive(PortId, Item),
    Internal(InternalEv),
}

/// Runs `hub` against timed arrivals; returns all emissions.
pub fn drive_hub(hub: &mut Hub, arrivals: Vec<(Time, PortId, Item)>) -> Vec<Emission> {
    let mut eng: Engine<Ev> = Engine::new();
    for (at, port, item) in arrivals {
        eng.schedule_at(at, Ev::Arrive(port, item));
    }
    let mut emissions = Vec::new();
    let mut fx = Effects::new();
    while let Some(ev) = eng.step() {
        let now = eng.now();
        fx.clear();
        match ev {
            Ev::Arrive(port, item) => hub.item_arrives(now, port, item, &mut fx),
            Ev::Internal(ie) => hub.internal(now, ie, &mut fx),
        }
        emissions.append(&mut fx.emissions);
        for i in fx.internal.drain(..) {
            eng.schedule_at(i.at, Ev::Internal(i.ev));
        }
    }
    emissions
}

/// The data-packet emissions among `emissions`, in time order.
pub fn packet_emissions(emissions: &[Emission]) -> Vec<&Emission> {
    let mut out: Vec<&Emission> =
        emissions.iter().filter(|e| matches!(e.item, Item::Packet(_))).collect();
    out.sort_by_key(|e| e.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_reproduces_the_700ns_figure() {
        let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
        let open = Command::open(false, false, false, HubId::new(0), PortId::new(8));
        let emissions = drive_hub(
            &mut hub,
            vec![
                (Time::ZERO, PortId::new(4), open.into()),
                (Time::from_nanos(240), PortId::new(4), Packet::new(1, vec![0u8; 64]).into()),
            ],
        );
        let data = packet_emissions(&emissions);
        assert_eq!(data[0].at, Time::from_nanos(700));
    }
}
