//! `nectar-doctor`, standalone: runs experiments with the flight
//! recorder armed and prints the critical-path attribution and
//! pathology findings for each — without the full report tables.
//!
//! Usage:
//!
//! ```text
//! doctor [--strict] [ids...]
//! ```
//!
//! With no ids, every experiment that supports telemetry capture (see
//! `TRACEABLE`) is analyzed. `--strict` exits non-zero when any
//! critical finding fires, so the doctor can gate a CI lane on
//! "no pathologies" in addition to the perf-compare gate.

use nectar_bench::experiments::{ExpCtx, TRACEABLE};
use nectar_bench::registry;
use nectar_sim::analysis::{diagnose, pathology::Severity};

fn main() {
    let mut strict = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            other if other.starts_with('-') => {
                eprintln!("usage: doctor [--strict] [ids...]");
                std::process::exit(2);
            }
            other => ids.push(other.to_lowercase()),
        }
    }
    let reg = registry();
    let selected: Vec<&str> =
        if ids.is_empty() { TRACEABLE.to_vec() } else { ids.iter().map(String::as_str).collect() };
    let ctx = ExpCtx { metrics: true, trace: true, ..ExpCtx::off() };
    let mut criticals = 0usize;
    for id in &selected {
        let Some((_, desc, run)) = reg.iter().find(|(rid, _, _)| rid == id) else {
            eprintln!("unknown experiment {id}; traceable ids: {}", TRACEABLE.join(", "));
            std::process::exit(2);
        };
        if !TRACEABLE.contains(id) {
            println!("{id} — no telemetry capture; skipping");
            continue;
        }
        let table = run(&ctx);
        let report = diagnose(&table.trace, table.metrics.as_ref());
        println!("{id} — {desc} ({} telemetry events)", table.trace.len());
        print!("{}", report.render());
        println!();
        criticals += report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Critical && f.confident)
            .count();
    }
    if strict && criticals > 0 {
        eprintln!("doctor --strict: {criticals} critical finding(s)");
        std::process::exit(1);
    }
}
